//! Integration tests for the workload-cloning pipeline, spanning
//! codegen → sim → power → workloads → core.

use micrograd::core::tuner::{GaParams, GdParams, GeneticTuner, GradientDescentTuner};
use micrograd::core::usecase::CloningTask;
use micrograd::core::{ExecutionPlatform, KnobSpace, MetricKind, SimPlatform};
use micrograd::sim::CoreConfig;
use micrograd::workloads::{ApplicationTraceGenerator, Benchmark};

fn small_platform(seed: u64) -> SimPlatform {
    SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(10_000)
        .with_seed(seed)
}

fn cloning_space() -> KnobSpace {
    let mut space = KnobSpace::full();
    space.loop_size = 150;
    space
}

#[test]
fn cloning_a_spec_like_benchmark_beats_an_untuned_guess() {
    let platform = small_platform(17);
    let space = cloning_space();

    // Characterize the reference application.
    let trace = ApplicationTraceGenerator::new(20_000, 17).generate(&Benchmark::Bzip2.profile());
    let target = platform.measure_trace(&trace);

    // Accuracy of an untuned midpoint configuration.
    let midpoint_input = space.resolve(&space.midpoint_config(), 17).unwrap();
    let midpoint_metrics = platform.evaluate(&midpoint_input).unwrap();
    let untuned_accuracy = midpoint_metrics.mean_accuracy(&target, &MetricKind::CLONING);

    // Accuracy after gradient-descent cloning.
    let task = CloningTask {
        max_epochs: 12,
        ..CloningTask::default()
    };
    let warm = CloningTask::warm_start_config(&space, &target);
    let mut tuner = GradientDescentTuner::new(GdParams {
        seed: 4,
        ..GdParams::default()
    })
    .with_initial_config(warm);
    let report = task
        .run(&platform, &space, "bzip2", &target, &mut tuner)
        .unwrap();

    assert!(
        report.mean_accuracy > untuned_accuracy,
        "tuned accuracy {:.3} should beat untuned accuracy {:.3}",
        report.mean_accuracy,
        untuned_accuracy
    );
    assert!(
        report.mean_accuracy > 0.80,
        "tuned accuracy {:.3} unexpectedly low",
        report.mean_accuracy
    );
    // Every cloning metric is present in the report.
    for kind in MetricKind::CLONING {
        assert!(report.ratios.contains_key(&kind));
        assert!(report.clone_metrics.get(kind).is_some());
    }
}

#[test]
fn gradient_descent_beats_the_ga_baseline_at_equal_epoch_budgets() {
    // The core quantitative claim of the paper's Fig. 2 vs Fig. 4
    // comparison: at the same number of epochs, GD clones are considerably
    // more accurate than GA clones (and each GA epoch costs more
    // evaluations on top of that).
    let platform = small_platform(23);
    let space = cloning_space();
    let trace = ApplicationTraceGenerator::new(20_000, 23).generate(&Benchmark::Astar.profile());
    let target = platform.measure_trace(&trace);

    let epochs = 8;
    let task = CloningTask {
        max_epochs: epochs,
        ..CloningTask::default()
    };

    let warm = CloningTask::warm_start_config(&space, &target);
    let mut gd = GradientDescentTuner::new(GdParams {
        seed: 5,
        ..GdParams::default()
    })
    .with_initial_config(warm);
    let gd_report = task
        .run(&platform, &space, "astar", &target, &mut gd)
        .unwrap();

    // Table I parameters: a GA epoch costs 50 evaluations, a GD epoch
    // costs at most 2 × knobs + 1.
    let mut ga = GeneticTuner::new(GaParams {
        seed: 5,
        ..GaParams::paper()
    });
    let ga_report = task
        .run(&platform, &space, "astar", &target, &mut ga)
        .unwrap();

    assert!(
        gd_report.mean_accuracy >= ga_report.mean_accuracy - 0.02,
        "GD accuracy {:.3} should be at least as good as GA accuracy {:.3}",
        gd_report.mean_accuracy,
        ga_report.mean_accuracy
    );
    assert!(
        gd_report.evaluations < ga_report.evaluations,
        "GD should use fewer evaluations ({} vs {})",
        gd_report.evaluations,
        ga_report.evaluations
    );
}

#[test]
fn clones_of_different_benchmarks_differ() {
    // Clones are workload-specific: the knob configuration cloned for a
    // memory-bound benchmark must differ from the one cloned for a
    // compute-friendly benchmark.
    let platform = small_platform(29);
    let space = cloning_space();
    let task = CloningTask {
        max_epochs: 6,
        ..CloningTask::default()
    };

    let mut reports = Vec::new();
    for benchmark in [Benchmark::Mcf, Benchmark::Hmmer] {
        let trace = ApplicationTraceGenerator::new(15_000, 29).generate(&benchmark.profile());
        let target = platform.measure_trace(&trace);
        let warm = CloningTask::warm_start_config(&space, &target);
        let mut tuner = GradientDescentTuner::new(GdParams {
            seed: 6,
            ..GdParams::default()
        })
        .with_initial_config(warm);
        reports.push(
            task.run(&platform, &space, benchmark.name(), &target, &mut tuner)
                .unwrap(),
        );
    }
    let mcf = &reports[0];
    let hmmer = &reports[1];
    assert_ne!(mcf.knob_config, hmmer.knob_config);
    // mcf's clone should see a lower data-cache hit rate than hmmer's clone
    let mcf_dc = mcf.clone_metrics.value_or_zero(MetricKind::L1dHitRate);
    let hmmer_dc = hmmer.clone_metrics.value_or_zero(MetricKind::L1dHitRate);
    assert!(
        mcf_dc < hmmer_dc + 0.02,
        "mcf clone DC hit rate {mcf_dc:.3} should not exceed hmmer clone {hmmer_dc:.3}"
    );
}

#[test]
fn epoch_progression_is_recorded_and_monotone() {
    let platform = small_platform(31);
    let space = cloning_space();
    let trace = ApplicationTraceGenerator::new(15_000, 31).generate(&Benchmark::Sjeng.profile());
    let target = platform.measure_trace(&trace);
    let task = CloningTask {
        max_epochs: 5,
        ..CloningTask::default()
    };
    let mut tuner = GradientDescentTuner::new(GdParams {
        seed: 8,
        ..GdParams::default()
    });
    let report = task
        .run(&platform, &space, "sjeng", &target, &mut tuner)
        .unwrap();
    assert!(!report.epochs.is_empty());
    assert!(report.epochs.len() <= 5);
    for pair in report.epochs.windows(2) {
        assert!(pair[1].best_loss <= pair[0].best_loss + 1e-12);
        assert!(pair[1].evaluations > pair[0].evaluations);
        assert_eq!(pair[1].epoch, pair[0].epoch + 1);
    }
}
