//! Integration tests for the stress-testing pipeline.

use micrograd::core::tuner::{
    BruteForceTuner, GdParams, GradientDescentTuner, RandomSearchTuner, Tuner, TuningBudget,
};
use micrograd::core::usecase::StressTask;
use micrograd::core::{
    KnobSpace, KnobSpec, KnobTarget, MetricKind, SimPlatform, StressGoal, StressLoss,
};
use micrograd::isa::{InstrClass, Opcode};
use micrograd::sim::CoreConfig;

fn platform(core: CoreConfig, seed: u64) -> SimPlatform {
    SimPlatform::new(core)
        .with_dynamic_len(10_000)
        .with_seed(seed)
}

fn compute_space() -> KnobSpace {
    let mut space = KnobSpace::instruction_fractions();
    space.loop_size = 150;
    space
}

#[test]
fn performance_virus_found_by_gd_is_close_to_the_coarse_brute_force_optimum() {
    // The Fig. 5 structure: brute force establishes the worst-case
    // performance over a coarse grid; gradient descent should get close to
    // it with far fewer evaluations.
    let platform = platform(CoreConfig::large(), 41);
    // Keep the space tiny so the brute-force grid is genuinely exhaustive.
    let mut space = KnobSpace::new(vec![
        KnobSpec::new(
            "ADD",
            KnobTarget::InstructionWeight(Opcode::Add),
            vec![1.0, 5.0, 10.0],
        ),
        KnobSpec::new(
            "FMULD",
            KnobTarget::InstructionWeight(Opcode::FmulD),
            vec![1.0, 5.0, 10.0],
        ),
        KnobSpec::new(
            "LD",
            KnobTarget::InstructionWeight(Opcode::Ld),
            vec![1.0, 5.0, 10.0],
        ),
        KnobSpec::new(
            "REG_DIST",
            KnobTarget::DependencyDistance,
            vec![1.0, 5.0, 10.0],
        ),
    ]);
    space.loop_size = 150;
    let loss = StressLoss::new(MetricKind::Ipc, StressGoal::Minimize);

    let mut brute = BruteForceTuner::new(3, 200);
    let brute_result = brute
        .tune(&platform, &space, &loss, &TuningBudget::epochs(100))
        .unwrap();
    assert!(brute_result.converged, "grid should be exhausted");

    let mut gd = GradientDescentTuner::new(GdParams {
        seed: 2,
        ..GdParams::default()
    });
    let gd_result = gd
        .tune(&platform, &space, &loss, &TuningBudget::epochs(12))
        .unwrap();

    let optimum = brute_result.best_metrics.value_or_zero(MetricKind::Ipc);
    let gd_ipc = gd_result.best_metrics.value_or_zero(MetricKind::Ipc);
    assert!(
        gd_ipc <= optimum * 1.25,
        "GD worst-case IPC {gd_ipc:.3} should be within 25% of the brute-force optimum {optimum:.3}"
    );
    assert!(gd_result.total_evaluations < brute_result.total_evaluations * 2);
}

#[test]
fn gd_stress_beats_random_search_at_equal_evaluation_budgets() {
    let platform = platform(CoreConfig::small(), 43);
    let space = compute_space();
    let epochs = 25;
    let task = StressTask::performance_virus(epochs);

    let mut gd = GradientDescentTuner::new(GdParams {
        seed: 3,
        ..GdParams::default()
    });
    let gd_report = task.run(&platform, &space, &mut gd).unwrap();

    // Random search with the same number of total evaluations.
    let evals_per_epoch = (gd_report.evaluations / epochs).max(1);
    let mut random = RandomSearchTuner::new(evals_per_epoch, 77);
    let random_report = task.run(&platform, &space, &mut random).unwrap();

    assert!(
        gd_report.best_value <= random_report.best_value * 1.35,
        "GD virus IPC {:.3} should be roughly as stressful as random search {:.3}",
        gd_report.best_value,
        random_report.best_value
    );
}

#[test]
fn power_virus_prefers_memory_and_fp_over_integer_ops() {
    // Table III of the paper: the power virus is dominated by memory and
    // floating point operations, with integer ops in the single digits.
    let platform = platform(CoreConfig::large(), 47);
    let mut space = KnobSpace::full();
    space.loop_size = 150;
    let task = StressTask::power_virus(10);
    let mut gd = GradientDescentTuner::new(GdParams {
        seed: 9,
        ..GdParams::default()
    });
    let report = task.run(&platform, &space, &mut gd).unwrap();

    let int = report.instruction_mix[&InstrClass::Integer];
    let float = report.instruction_mix[&InstrClass::Float];
    let memory =
        report.instruction_mix[&InstrClass::Load] + report.instruction_mix[&InstrClass::Store];
    assert!(
        float + memory > int,
        "power virus should favour FP+memory ({:.2}) over integer ({:.2})",
        float + memory,
        int
    );
    assert!(
        report.best_value > 0.5,
        "dynamic power {:.2} W implausibly low",
        report.best_value
    );
}

#[test]
fn stress_on_large_core_draws_more_power_than_on_small_core() {
    let space = {
        let mut s = KnobSpace::full();
        s.loop_size = 120;
        s
    };
    let task = StressTask::power_virus(5);

    let mut results = Vec::new();
    for core in [CoreConfig::small(), CoreConfig::large()] {
        let platform = platform(core, 53);
        let mut gd = GradientDescentTuner::new(GdParams {
            seed: 4,
            ..GdParams::default()
        });
        results.push(task.run(&platform, &space, &mut gd).unwrap().best_value);
    }
    assert!(
        results[1] > results[0],
        "large-core virus ({:.2} W) should draw more power than small-core virus ({:.2} W)",
        results[1],
        results[0]
    );
}
