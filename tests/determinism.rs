//! Determinism invariants of the evaluation pipeline.
//!
//! Two families of invariants live here:
//!
//! 1. **Parallel-evaluation determinism** — tuning results must be
//!    bit-identical whatever the batch worker count: the platform may
//!    schedule a batch on any number of workers, but results are
//!    post-processed strictly in submission order, every evaluation is a
//!    pure seeded function of its input, and best-so-far tie-breaking
//!    follows input order — so `parallelism: Some(n)` must reproduce the
//!    `parallelism: None` run exactly, epoch by epoch.
//! 2. **Streaming-evaluation determinism** — the fused single-pass
//!    `Simulator::run_source` over streaming trace sources must produce
//!    bit-identical `SimStats` to the two-pass materialized `run`, for both
//!    knob-driven test cases and all eight application models, so switching
//!    the hot path to streaming changes nothing but the memory footprint.
//!    The same holds one layer up: `simpoint::analyze_source` (the one-pass
//!    streaming BBV profiler) must produce a bit-identical `PhaseAnalysis`
//!    to the materialized `simpoint::analyze`, and the clone-per-SimPoint
//!    facade run must be bit-identical whatever the batch worker count.

use micrograd::codegen::{Generator, GeneratorInput, TraceExpander};
use micrograd::core::tuner::{
    BruteForceTuner, GaParams, GdParams, GeneticTuner, GradientDescentTuner, RandomSearchTuner,
    Tuner, TuningBudget, TuningResult,
};
use micrograd::core::{
    CoreKind, FrameworkConfig, KnobSpace, KnobSpaceKind, MetricKind, MicroGrad, SimPlatform,
    StressGoal, StressLoss, TunerKind, UseCaseConfig,
};
use micrograd::sim::{CoreConfig, Simulator};
use micrograd::workloads::{simpoint, ApplicationTraceGenerator, Benchmark};

fn space() -> KnobSpace {
    let mut space = KnobSpace::instruction_fractions();
    space.loop_size = 100;
    space
}

fn run(tuner: &mut dyn Tuner, parallelism: Option<usize>, epochs: usize) -> TuningResult {
    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(5_000)
        .with_seed(9)
        .with_parallelism(parallelism);
    let loss = StressLoss::new(MetricKind::Ipc, StressGoal::Minimize);
    tuner
        .tune(&platform, &space(), &loss, &TuningBudget::epochs(epochs))
        .expect("tuning run succeeds")
}

fn assert_identical(sequential: &TuningResult, parallel: &TuningResult, label: &str) {
    assert_eq!(
        sequential.best_config, parallel.best_config,
        "{label}: best_config diverged"
    );
    assert_eq!(
        sequential.best_metrics, parallel.best_metrics,
        "{label}: best_metrics diverged"
    );
    assert!(
        (sequential.best_loss - parallel.best_loss).abs() == 0.0,
        "{label}: best_loss diverged"
    );
    assert_eq!(
        sequential.total_evaluations, parallel.total_evaluations,
        "{label}: evaluation counts diverged"
    );
    assert_eq!(
        sequential.epochs, parallel.epochs,
        "{label}: epoch records diverged"
    );
    assert_eq!(
        sequential.converged, parallel.converged,
        "{label}: convergence diverged"
    );
}

/// Runs a freshly constructed tuner at every parallelism setting — a single
/// worker thread, a 4-thread pool and the host-sized `Some(0)` pool — and
/// asserts each run reproduces the sequential (`None`) baseline exactly.
fn assert_deterministic_across_parallelism(
    label: &str,
    epochs: usize,
    mut make_tuner: impl FnMut() -> Box<dyn Tuner>,
) {
    let sequential = run(make_tuner().as_mut(), None, epochs);
    for parallelism in [Some(1), Some(4), Some(0)] {
        let parallel = run(make_tuner().as_mut(), parallelism, epochs);
        assert_identical(
            &sequential,
            &parallel,
            &format!("{label} (parallelism {parallelism:?})"),
        );
    }
}

#[test]
fn gradient_descent_is_deterministic_under_parallelism() {
    assert_deterministic_across_parallelism("gradient-descent", 5, || {
        Box::new(GradientDescentTuner::new(GdParams {
            seed: 5,
            ..GdParams::default()
        }))
    });
}

#[test]
fn genetic_algorithm_is_deterministic_under_parallelism() {
    assert_deterministic_across_parallelism("genetic-algorithm", 3, || {
        Box::new(GeneticTuner::new(GaParams::tiny()))
    });
}

#[test]
fn brute_force_is_deterministic_under_parallelism() {
    assert_deterministic_across_parallelism("brute-force", 4, || {
        Box::new(BruteForceTuner::new(2, 256))
    });
}

#[test]
fn random_search_is_deterministic_under_parallelism() {
    assert_deterministic_across_parallelism("random-search", 3, || {
        Box::new(RandomSearchTuner::new(6, 17))
    });
}

#[test]
fn streaming_expansion_matches_materialized_simulation() {
    // The streaming cursor must drive the simulator to bit-identical
    // statistics for knob-driven test cases across seeds and knob settings.
    for (seed, dependency, footprint) in [(1u64, 2u32, 64u64), (9, 6, 512), (23, 1, 4096)] {
        let input = GeneratorInput {
            loop_size: 150,
            reg_dependency_distance: dependency,
            mem_footprint_kb: footprint,
            seed,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).expect("generate");
        let expander = TraceExpander::new(30_000, seed);
        let trace = expander.expand(&tc);
        for core in [CoreConfig::small(), CoreConfig::large()] {
            let mut sim = Simulator::new(core);
            let materialized = sim.run(&trace);
            let streamed = sim.run_source(&mut expander.stream(&tc));
            assert_eq!(materialized, streamed, "seed {seed} diverged");
        }
    }
}

#[test]
fn streaming_application_traces_match_for_all_benchmarks() {
    // Every one of the paper's eight application models, at several seeds,
    // must simulate identically whether its trace is materialized first or
    // streamed straight into the core model.
    let mut sim = Simulator::new(CoreConfig::small());
    for benchmark in Benchmark::ALL {
        for seed in [3u64, 17] {
            let generator = ApplicationTraceGenerator::new(12_000, seed);
            let profile = benchmark.profile();
            let materialized = sim.run(&generator.generate(&profile));
            let streamed = sim.run_source(&mut generator.stream(&profile));
            assert_eq!(materialized, streamed, "{benchmark:?} seed {seed} diverged");
        }
    }
}

#[test]
fn streaming_phase_analysis_matches_materialized_for_all_benchmarks() {
    // The one-pass streaming BBV profiler must produce a bit-identical
    // `PhaseAnalysis` to the materialized path for every one of the paper's
    // eight application models, at several seeds, including a length that
    // exercises the folded-tail interval (50_000 % 4_000 = 2_000 >= half).
    for benchmark in Benchmark::ALL {
        for seed in [3u64, 17, 29] {
            let generator = ApplicationTraceGenerator::new(50_000, seed);
            let profile = benchmark.profile();
            let materialized = simpoint::analyze(&generator.generate(&profile), 4_000, 5, seed);
            let streamed =
                simpoint::analyze_source(&mut generator.stream(&profile), 4_000, 5, seed);
            assert_eq!(materialized, streamed, "{benchmark:?} seed {seed} diverged");
            let analysis = streamed.expect("stream long enough");
            assert_eq!(analysis.profiled_instructions(), 50_000);
            let total: f64 = analysis.simpoints.iter().map(|s| s.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{benchmark:?} seed {seed}");
        }
    }
}

#[test]
fn clone_simpoints_is_deterministic_under_parallelism() {
    // End to end through the clone-per-SimPoint facade entry: per-phase
    // tuning submits its probes through `evaluate_batch`, so the whole
    // report — phase analysis, per-phase clones, composite validation —
    // must be bit-identical whatever the worker count.
    let base = FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::CloneSimpoints {
            benchmark: "gcc".into(),
            accuracy_target: 0.99,
            interval_len: 5_000,
            max_phases: 3,
        },
        max_epochs: 2,
        dynamic_len: 4_000,
        reference_len: 20_000,
        seed: 3,
        parallelism: None,
    };
    let sequential = MicroGrad::new(base.clone()).run().expect("sequential run");
    let parallel = MicroGrad::new(FrameworkConfig {
        parallelism: Some(4),
        ..base
    })
    .run()
    .expect("parallel run");
    assert_eq!(sequential, parallel);
    let report = sequential.as_simpoint_clone().expect("simpoint output");
    assert!(report.num_phases() >= 1);
    assert!(report.evaluations > 0);
}

#[test]
fn framework_runs_are_deterministic_under_parallelism() {
    // End to end through the configuration-file facade: a parallel stress
    // run reproduces the sequential report exactly.
    let base = FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 3,
        dynamic_len: 4_000,
        reference_len: 4_000,
        seed: 3,
        parallelism: None,
    };
    let sequential = MicroGrad::new(base.clone()).run().expect("sequential run");
    let parallel = MicroGrad::new(FrameworkConfig {
        parallelism: Some(4),
        ..base
    })
    .run()
    .expect("parallel run");
    assert_eq!(sequential, parallel);
}
