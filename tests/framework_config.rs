//! Integration tests of the configuration-file driven framework facade.

use micrograd::core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, MicroGrad, StressGoal, TunerKind,
    UseCaseConfig,
};

#[test]
fn a_json_configuration_drives_a_full_stress_run() {
    let json = r#"{
        "core": "small",
        "tuner": "gradient-descent",
        "knob_space": "instruction-fractions",
        "use_case": { "kind": "stress", "metric": "Ipc", "goal": "Minimize" },
        "max_epochs": 3,
        "dynamic_len": 5000,
        "reference_len": 5000,
        "seed": 3
    }"#;
    let config = FrameworkConfig::from_json(json).expect("valid config");
    assert_eq!(config.core, CoreKind::Small);
    assert_eq!(config.tuner, TunerKind::GradientDescent);
    assert_eq!(config.knob_space, KnobSpaceKind::InstructionFractions);

    let output = MicroGrad::new(config).run().expect("run succeeds");
    let report = output.as_stress().expect("stress report");
    assert_eq!(report.metric, MetricKind::Ipc);
    assert_eq!(report.goal, StressGoal::Minimize);
    assert!(report.best_value > 0.0);
    assert!(report.epochs_used <= 3);
}

#[test]
fn a_json_configuration_drives_a_benchmark_cloning_run() {
    let json = r#"{
        "core": "small",
        "tuner": "gradient-descent",
        "knob_space": "full",
        "use_case": { "kind": "clone-benchmark", "benchmark": "hmmer", "accuracy_target": 0.95 },
        "max_epochs": 4,
        "dynamic_len": 6000,
        "reference_len": 8000,
        "seed": 11
    }"#;
    let config = FrameworkConfig::from_json(json).expect("valid config");
    let framework = MicroGrad::new(config);

    // the benchmark can be characterized stand-alone, as the paper's
    // "application binary + inputs" mode would do
    let target = framework.characterize_benchmark("hmmer").unwrap();
    assert!(target.value_or_zero(MetricKind::Ipc) > 0.0);

    let output = framework.run().expect("run succeeds");
    let report = output.as_clone().expect("clone report");
    assert_eq!(report.workload, "hmmer");
    assert!(report.mean_accuracy > 0.5);
    assert!(report.epochs_used <= 4);
}

#[test]
fn all_tuner_kinds_run_the_same_use_case() {
    for tuner in [
        TunerKind::GradientDescent,
        TunerKind::Genetic,
        TunerKind::RandomSearch,
    ] {
        let config = FrameworkConfig {
            core: CoreKind::Small,
            tuner,
            knob_space: KnobSpaceKind::InstructionFractions,
            use_case: UseCaseConfig::Stress {
                metric: MetricKind::Ipc,
                goal: StressGoal::Minimize,
            },
            max_epochs: 2,
            dynamic_len: 4_000,
            reference_len: 4_000,
            seed: 5,
            // Exercise the batch-parallel evaluation path for every tuner.
            parallelism: Some(2),
        };
        let output = MicroGrad::new(config).run().expect("run succeeds");
        let report = output.as_stress().expect("stress report");
        assert!(
            report.best_value > 0.0,
            "{tuner:?} produced no stress value"
        );
    }
}

#[test]
fn malformed_configurations_name_what_to_fix() {
    // A wrong-typed field is attributed to its path, not to "the config".
    let bad_field = r#"{
        "core": "small",
        "tuner": "gradient-descent",
        "knob_space": "instruction-fractions",
        "use_case": { "kind": "stress", "metric": "Ipc", "goal": "Minimize" },
        "max_epochs": 3,
        "dynamic_len": "plenty",
        "reference_len": 5000,
        "seed": 3
    }"#;
    let message = FrameworkConfig::from_json(bad_field)
        .unwrap_err()
        .to_string();
    assert!(
        message.contains("FrameworkConfig.dynamic_len"),
        "got: {message}"
    );

    // An unknown enum variant is named in the message.
    let bad_variant = r#"{
        "core": "medium",
        "tuner": "gradient-descent",
        "knob_space": "instruction-fractions",
        "use_case": { "kind": "stress", "metric": "Ipc", "goal": "Minimize" },
        "max_epochs": 3,
        "dynamic_len": 5000,
        "reference_len": 5000,
        "seed": 3
    }"#;
    let message = FrameworkConfig::from_json(bad_variant)
        .unwrap_err()
        .to_string();
    assert!(message.contains("medium"), "got: {message}");
}

#[test]
fn default_configuration_serializes_with_documented_fields() {
    let json = FrameworkConfig::default().to_json();
    for field in [
        "core",
        "tuner",
        "knob_space",
        "use_case",
        "max_epochs",
        "dynamic_len",
        "reference_len",
        "seed",
        "parallelism",
    ] {
        assert!(json.contains(field), "field `{field}` missing from {json}");
    }
    let back = FrameworkConfig::from_json(&json).unwrap();
    assert_eq!(back, FrameworkConfig::default());
}
