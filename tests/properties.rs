//! Property-style tests on cross-crate invariants.
//!
//! The original version of this file used `proptest`; the offline build
//! environment cannot vendor it, so each property is exercised over a
//! seeded random sample of its input domain instead — same invariants, a
//! deterministic and dependency-free driver.

use micrograd::codegen::{Generator, GeneratorInput, TraceExpander};
use micrograd::core::{ExecutionPlatform, KnobConfig, KnobSpace, MetricKind, Metrics, SimPlatform};
use micrograd::isa::Opcode;
use micrograd::sim::{CoreConfig, Simulator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 16;

/// A random valid knob configuration of `space`.
fn random_config(space: &KnobSpace, rng: &mut ChaCha8Rng) -> KnobConfig {
    KnobConfig::new(
        (0..space.len())
            .map(|k| rng.gen_range(0..=space.max_index(k)))
            .collect(),
    )
}

/// Every knob configuration of the full space resolves, generates and
/// simulates into metrics that respect their physical bounds.
#[test]
fn any_knob_config_yields_bounded_metrics() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let mut space = KnobSpace::full();
    space.loop_size = 64;
    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(3_000)
        .with_seed(1);
    for _ in 0..CASES {
        let config = random_config(&space, &mut rng);
        let input = space.resolve(&config, 1).unwrap();
        let metrics = platform.evaluate(&input).unwrap();

        for kind in [
            MetricKind::IntegerFraction,
            MetricKind::FloatFraction,
            MetricKind::LoadFraction,
            MetricKind::StoreFraction,
            MetricKind::BranchFraction,
            MetricKind::BranchMispredictRate,
            MetricKind::L1iHitRate,
            MetricKind::L1dHitRate,
            MetricKind::L2HitRate,
        ] {
            let v = metrics.value_or_zero(kind);
            assert!((0.0..=1.0).contains(&v), "{kind} = {v} out of [0,1]");
        }
        let fraction_sum: f64 = [
            MetricKind::IntegerFraction,
            MetricKind::FloatFraction,
            MetricKind::LoadFraction,
            MetricKind::StoreFraction,
            MetricKind::BranchFraction,
        ]
        .iter()
        .map(|k| metrics.value_or_zero(*k))
        .sum();
        assert!((fraction_sum - 1.0).abs() < 1e-9);

        let ipc = metrics.value_or_zero(MetricKind::Ipc);
        assert!(ipc > 0.0);
        assert!(ipc <= CoreConfig::small().frontend_width as f64 + 1e-9);
        assert!(metrics.value_or_zero(MetricKind::DynamicPower) >= 0.0);
    }
}

/// The dynamic instruction mix of an expanded trace tracks the static mix
/// of its test case.
#[test]
fn trace_mix_tracks_testcase_mix() {
    let mut rng = ChaCha8Rng::seed_from_u64(202);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..1000);
        let loop_size = rng.gen_range(16usize..200);
        let input = GeneratorInput {
            loop_size,
            seed,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).unwrap();
        let trace = TraceExpander::new(20_000, seed).expand(&tc);
        let static_mix = tc.class_distribution();
        let dynamic_mix = trace.class_distribution();
        for (class, frac) in static_mix {
            let d = dynamic_mix.get(&class).copied().unwrap_or(0.0);
            assert!(
                (frac - d).abs() < 0.05,
                "{class:?}: static {frac} dynamic {d}"
            );
        }
    }
}

/// Simulation is deterministic: the same trace yields identical stats.
#[test]
fn simulation_is_deterministic() {
    let mut rng = ChaCha8Rng::seed_from_u64(303);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..500);
        let input = GeneratorInput {
            loop_size: 80,
            seed,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).unwrap();
        let trace = TraceExpander::new(5_000, seed).expand(&tc);
        let a = Simulator::new(CoreConfig::large()).run(&trace);
        let b = Simulator::new(CoreConfig::large()).run(&trace);
        assert_eq!(a, b);
    }
}

/// The large core never executes a trace slower than the small core by
/// more than a small tolerance (it has strictly more of every resource).
#[test]
fn large_core_is_not_slower_than_small_core() {
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..200);
        let input = GeneratorInput {
            loop_size: 100,
            seed,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).unwrap();
        let trace = TraceExpander::new(8_000, seed).expand(&tc);
        let small = Simulator::new(CoreConfig::small()).run(&trace).ipc();
        let large = Simulator::new(CoreConfig::large()).run(&trace).ipc();
        assert!(large >= small * 0.9, "large {large} vs small {small}");
    }
}

/// Metric accuracy always stays within [0, 1] and is exactly 1.0 against
/// itself.
#[test]
fn accuracy_is_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(505);
    for _ in 0..CASES * 4 {
        let target = 0.01 + rng.gen::<f64>() * 9.99;
        let measured = 0.01 + rng.gen::<f64>() * 9.99;
        let t: Metrics = [(MetricKind::Ipc, target)].into_iter().collect();
        let m: Metrics = [(MetricKind::Ipc, measured)].into_iter().collect();
        let acc = m.accuracy_to(&t, MetricKind::Ipc);
        assert!((0.0..=1.0).contains(&acc));
        let self_acc = t.accuracy_to(&t, MetricKind::Ipc);
        assert!((self_acc - 1.0).abs() < 1e-12);
    }
}

/// Knob stepping never leaves the ladder and distance is consistent.
#[test]
fn knob_stepping_stays_in_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(606);
    let space = KnobSpace::full();
    for _ in 0..CASES * 4 {
        let knob = rng.gen_range(0..space.len());
        let delta = rng.gen_range(-20isize..20);
        let start = rng.gen_range(0usize..10).min(space.max_index(knob));
        let mut indices = space.midpoint_config().indices().to_vec();
        indices[knob] = start;
        let config = KnobConfig::new(indices);
        let stepped = config.stepped(knob, delta, space.max_index(knob));
        assert!(stepped.index(knob) <= space.max_index(knob));
        assert!(stepped.distance(&config) <= delta.unsigned_abs());
    }
}

/// The instruction-weight knobs dominate the generated static mix: an
/// all-FP configuration produces a float-heavy test case.
#[test]
fn fp_only_weights_produce_fp_heavy_testcases() {
    let mut rng = ChaCha8Rng::seed_from_u64(707);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..100);
        let mut input = GeneratorInput {
            loop_size: 200,
            seed,
            ..GeneratorInput::default()
        };
        for w in input.instr_weights.values_mut() {
            *w = 0.0;
        }
        input.set_weight(Opcode::FaddD, 5.0);
        input.set_weight(Opcode::FmulD, 5.0);
        let tc = Generator::new().generate(&input).unwrap();
        let dist = tc.class_distribution();
        let float = dist
            .get(&micrograd::isa::InstrClass::Float)
            .copied()
            .unwrap_or(0.0);
        assert!(float > 0.9, "float fraction {float}");
    }
}

/// Batch evaluation through the platform is equivalent to one-by-one
/// evaluation, with any worker count.
#[test]
fn batch_evaluation_is_order_preserving_and_parallel_safe() {
    let mut rng = ChaCha8Rng::seed_from_u64(808);
    let mut space = KnobSpace::full();
    space.loop_size = 64;
    let sequential = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(3_000)
        .with_seed(1);
    let inputs: Vec<GeneratorInput> = (0..CASES)
        .map(|_| space.resolve(&random_config(&space, &mut rng), 1).unwrap())
        .collect();
    let reference: Vec<_> = inputs.iter().map(|i| sequential.evaluate(i)).collect();
    for workers in [1usize, 2, 4, 8] {
        let parallel = SimPlatform::new(CoreConfig::small())
            .with_dynamic_len(3_000)
            .with_seed(1)
            .with_parallelism(Some(workers));
        assert_eq!(
            parallel.evaluate_batch(&inputs),
            reference,
            "workers={workers}"
        );
    }
}
