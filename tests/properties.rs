//! Property-based tests on cross-crate invariants.

use micrograd::codegen::{Generator, GeneratorInput, TraceExpander};
use micrograd::core::{ExecutionPlatform, KnobConfig, KnobSpace, MetricKind, Metrics, SimPlatform};
use micrograd::isa::Opcode;
use micrograd::sim::{CoreConfig, Simulator};
use proptest::prelude::*;

/// Strategy for a valid knob configuration of the full space.
fn knob_config_strategy(space: &KnobSpace) -> impl Strategy<Value = KnobConfig> {
    let lens: Vec<usize> = (0..space.len()).map(|k| space.max_index(k) + 1).collect();
    lens.into_iter()
        .map(|len| (0..len).boxed())
        .collect::<Vec<_>>()
        .prop_map(KnobConfig::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every knob configuration of the full space resolves, generates and
    /// simulates into metrics that respect their physical bounds.
    #[test]
    fn any_knob_config_yields_bounded_metrics(config in knob_config_strategy(&KnobSpace::full())) {
        let mut space = KnobSpace::full();
        space.loop_size = 64;
        let platform = SimPlatform::new(CoreConfig::small())
            .with_dynamic_len(3_000)
            .with_seed(1);
        let input = space.resolve(&config, 1).unwrap();
        let metrics = platform.evaluate(&input).unwrap();

        for kind in [
            MetricKind::IntegerFraction,
            MetricKind::FloatFraction,
            MetricKind::LoadFraction,
            MetricKind::StoreFraction,
            MetricKind::BranchFraction,
            MetricKind::BranchMispredictRate,
            MetricKind::L1iHitRate,
            MetricKind::L1dHitRate,
            MetricKind::L2HitRate,
        ] {
            let v = metrics.value_or_zero(kind);
            prop_assert!((0.0..=1.0).contains(&v), "{kind} = {v} out of [0,1]");
        }
        let fraction_sum: f64 = [
            MetricKind::IntegerFraction,
            MetricKind::FloatFraction,
            MetricKind::LoadFraction,
            MetricKind::StoreFraction,
            MetricKind::BranchFraction,
        ]
        .iter()
        .map(|k| metrics.value_or_zero(*k))
        .sum();
        prop_assert!((fraction_sum - 1.0).abs() < 1e-9);

        let ipc = metrics.value_or_zero(MetricKind::Ipc);
        prop_assert!(ipc > 0.0);
        prop_assert!(ipc <= CoreConfig::small().frontend_width as f64 + 1e-9);
        prop_assert!(metrics.value_or_zero(MetricKind::DynamicPower) >= 0.0);
    }

    /// The dynamic instruction mix of an expanded trace tracks the static
    /// mix of its test case.
    #[test]
    fn trace_mix_tracks_testcase_mix(seed in 0u64..1000, loop_size in 16usize..200) {
        let input = GeneratorInput { loop_size, seed, ..GeneratorInput::default() };
        let tc = Generator::new().generate(&input).unwrap();
        let trace = TraceExpander::new(20_000, seed).expand(&tc);
        let static_mix = tc.class_distribution();
        let dynamic_mix = trace.class_distribution();
        for (class, frac) in static_mix {
            let d = dynamic_mix.get(&class).copied().unwrap_or(0.0);
            prop_assert!((frac - d).abs() < 0.05, "{class:?}: static {frac} dynamic {d}");
        }
    }

    /// Simulation is deterministic: the same trace yields identical stats.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..500) {
        let input = GeneratorInput { loop_size: 80, seed, ..GeneratorInput::default() };
        let tc = Generator::new().generate(&input).unwrap();
        let trace = TraceExpander::new(5_000, seed).expand(&tc);
        let a = Simulator::new(CoreConfig::large()).run(&trace);
        let b = Simulator::new(CoreConfig::large()).run(&trace);
        prop_assert_eq!(a, b);
    }

    /// The large core never executes a trace slower than the small core by
    /// more than a small tolerance (it has strictly more of every resource).
    #[test]
    fn large_core_is_not_slower_than_small_core(seed in 0u64..200) {
        let input = GeneratorInput { loop_size: 100, seed, ..GeneratorInput::default() };
        let tc = Generator::new().generate(&input).unwrap();
        let trace = TraceExpander::new(8_000, seed).expand(&tc);
        let small = Simulator::new(CoreConfig::small()).run(&trace).ipc();
        let large = Simulator::new(CoreConfig::large()).run(&trace).ipc();
        prop_assert!(large >= small * 0.9, "large {large} vs small {small}");
    }

    /// Metric accuracy is symmetric in its arguments' roles only at 1.0 and
    /// always stays within [0, 1].
    #[test]
    fn accuracy_is_bounded(target in 0.01f64..10.0, measured in 0.01f64..10.0) {
        let t: Metrics = [(MetricKind::Ipc, target)].into_iter().collect();
        let m: Metrics = [(MetricKind::Ipc, measured)].into_iter().collect();
        let acc = m.accuracy_to(&t, MetricKind::Ipc);
        prop_assert!((0.0..=1.0).contains(&acc));
        let self_acc = t.accuracy_to(&t, MetricKind::Ipc);
        prop_assert!((self_acc - 1.0).abs() < 1e-12);
    }

    /// Knob stepping never leaves the ladder and distance is consistent.
    #[test]
    fn knob_stepping_stays_in_bounds(
        knob in 0usize..16,
        delta in -20isize..20,
        start in 0usize..10,
    ) {
        let space = KnobSpace::full();
        let knob = knob % space.len();
        let start = start.min(space.max_index(knob));
        let mut indices = space.midpoint_config().indices().to_vec();
        indices[knob] = start;
        let config = KnobConfig::new(indices);
        let stepped = config.stepped(knob, delta, space.max_index(knob));
        prop_assert!(stepped.index(knob) <= space.max_index(knob));
        prop_assert!(stepped.distance(&config) <= delta.unsigned_abs());
    }

    /// The instruction-weight knobs dominate the generated static mix: an
    /// all-FP configuration produces a float-heavy test case.
    #[test]
    fn fp_only_weights_produce_fp_heavy_testcases(seed in 0u64..100) {
        let mut input = GeneratorInput { loop_size: 200, seed, ..GeneratorInput::default() };
        for w in input.instr_weights.values_mut() {
            *w = 0.0;
        }
        input.set_weight(Opcode::FaddD, 5.0);
        input.set_weight(Opcode::FmulD, 5.0);
        let tc = Generator::new().generate(&input).unwrap();
        let dist = tc.class_distribution();
        let float = dist.get(&micrograd::isa::InstrClass::Float).copied().unwrap_or(0.0);
        prop_assert!(float > 0.9, "float fraction {float}");
    }
}
