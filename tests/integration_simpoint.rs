//! Integration test of the SimPoint workflow: phase analysis of an
//! application model followed by per-phase characterization, mirroring the
//! "Application Simpoints can be provided, so as to generate a clone for
//! each simpoint individually" input mode of the paper.

use micrograd::codegen::Trace;
use micrograd::core::{ExecutionPlatform, MetricKind, SimPlatform};
use micrograd::sim::CoreConfig;
use micrograd::workloads::{simpoint, ApplicationTraceGenerator, Benchmark};

#[test]
fn simpoints_partition_execution_and_characterize_distinct_phases() {
    let trace = ApplicationTraceGenerator::new(60_000, 3).generate(&Benchmark::Gcc.profile());
    let analysis = simpoint::analyze(&trace, 5_000, 5, 3).expect("trace long enough");

    // weights form a distribution over phases
    let total: f64 = analysis.simpoints.iter().map(|s| s.weight).sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(analysis.num_phases() >= 1);

    // characterize each simpoint interval on the platform
    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(5_000)
        .with_seed(3);
    let mut per_phase_ipc = Vec::new();
    for sp in &analysis.simpoints {
        let start = sp.start_instruction;
        let slice: Vec<_> = trace.dynamics()[start..start + analysis.interval_len].to_vec();
        let sub_trace = Trace::new(trace.statics().to_vec(), slice);
        let metrics = platform.measure_trace(&sub_trace);
        let ipc = metrics.value_or_zero(MetricKind::Ipc);
        assert!(ipc > 0.0);
        per_phase_ipc.push(ipc);
    }
    assert_eq!(per_phase_ipc.len(), analysis.num_phases());
}

#[test]
fn whole_program_metrics_are_approximated_by_the_weighted_simpoints() {
    // The point of SimPoint: the weighted combination of per-simpoint
    // metrics approximates the whole-program metrics.
    let trace =
        ApplicationTraceGenerator::new(80_000, 5).generate(&Benchmark::Libquantum.profile());
    let analysis = simpoint::analyze(&trace, 8_000, 4, 5).expect("trace long enough");

    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(8_000)
        .with_seed(5);
    let full = platform.measure_trace(&trace);

    let mut weighted_ipc = 0.0;
    for sp in &analysis.simpoints {
        let start = sp.start_instruction;
        let slice: Vec<_> = trace.dynamics()[start..start + analysis.interval_len].to_vec();
        let sub_trace = Trace::new(trace.statics().to_vec(), slice);
        let metrics = platform.measure_trace(&sub_trace);
        weighted_ipc += sp.weight * metrics.value_or_zero(MetricKind::Ipc);
    }
    let full_ipc = full.value_or_zero(MetricKind::Ipc);
    let relative_error = (weighted_ipc - full_ipc).abs() / full_ipc;
    assert!(
        relative_error < 0.25,
        "weighted simpoint IPC {weighted_ipc:.3} should approximate full IPC {full_ipc:.3} \
         (relative error {relative_error:.2})"
    );
}
