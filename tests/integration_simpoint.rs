//! Integration test of the SimPoint workflow: streaming phase analysis of
//! an application model followed by per-phase characterization on
//! interval-windowed sources, mirroring the "Application Simpoints can be
//! provided, so as to generate a clone for each simpoint individually"
//! input mode of the paper.
//!
//! No trace is materialized anywhere in this file: analysis is a single
//! `analyze_source` pass and every per-simpoint measurement windows a fresh
//! stream onto the representative interval (`TraceSource::window`), which
//! replaced the old `trace.dynamics()` slicing.

use micrograd::codegen::TraceSource;
use micrograd::core::{ExecutionPlatform, MetricKind, SimPlatform};
use micrograd::sim::CoreConfig;
use micrograd::workloads::{simpoint, ApplicationTraceGenerator, Benchmark};

#[test]
fn simpoints_partition_execution_and_characterize_distinct_phases() {
    let generator = ApplicationTraceGenerator::new(60_000, 3);
    let profile = Benchmark::Gcc.profile();
    let analysis = simpoint::analyze_source(&mut generator.stream(&profile), 5_000, 5, 3)
        .expect("stream long enough");

    // weights form a distribution over phases
    let total: f64 = analysis.simpoints.iter().map(|s| s.weight).sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(analysis.num_phases() >= 1);
    assert_eq!(analysis.profiled_instructions(), 60_000);

    // characterize each simpoint on an interval-windowed stream
    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(5_000)
        .with_seed(3);
    let mut per_phase_ipc = Vec::new();
    for sp in &analysis.simpoints {
        let len = analysis.interval_length(sp.interval_index);
        let mut window = generator.stream(&profile).window(sp.start_instruction, len);
        let metrics = platform.measure_source(&mut window);
        let ipc = metrics.value_or_zero(MetricKind::Ipc);
        assert!(ipc > 0.0);
        per_phase_ipc.push(ipc);
    }
    assert_eq!(per_phase_ipc.len(), analysis.num_phases());
}

#[test]
fn whole_program_metrics_are_approximated_by_the_weighted_simpoints() {
    // The point of SimPoint: the weighted combination of per-simpoint
    // metrics approximates the whole-program metrics.
    let generator = ApplicationTraceGenerator::new(80_000, 5);
    let profile = Benchmark::Libquantum.profile();
    let analysis = simpoint::analyze_source(&mut generator.stream(&profile), 8_000, 4, 5)
        .expect("stream long enough");

    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(8_000)
        .with_seed(5);
    let full = platform.measure_source(&mut generator.stream(&profile));

    let mut weighted_ipc = 0.0;
    for sp in &analysis.simpoints {
        let len = analysis.interval_length(sp.interval_index);
        let mut window = generator.stream(&profile).window(sp.start_instruction, len);
        let metrics = platform.measure_source(&mut window);
        weighted_ipc += sp.weight * metrics.value_or_zero(MetricKind::Ipc);
    }
    let full_ipc = full.value_or_zero(MetricKind::Ipc);
    let relative_error = (weighted_ipc - full_ipc).abs() / full_ipc;
    assert!(
        relative_error < 0.25,
        "weighted simpoint IPC {weighted_ipc:.3} should approximate full IPC {full_ipc:.3} \
         (relative error {relative_error:.2})"
    );
}

#[test]
fn windowed_interval_measurement_matches_materialized_slicing() {
    // The windowed replay path must measure exactly what the old
    // `trace.dynamics()` slicing measured: the skipped prefix advances the
    // stream state, so the window is bit-identical to the slice.
    let generator = ApplicationTraceGenerator::new(40_000, 9);
    let profile = Benchmark::Bzip2.profile();
    let trace = generator.generate(&profile);
    let analysis = simpoint::analyze(&trace, 5_000, 4, 9).expect("trace long enough");

    let platform = SimPlatform::new(CoreConfig::small())
        .with_dynamic_len(5_000)
        .with_seed(9);
    for sp in &analysis.simpoints {
        let len = analysis.interval_length(sp.interval_index);
        let slice: Vec<_> =
            trace.dynamics()[sp.start_instruction..sp.start_instruction + len].to_vec();
        let sub_trace = micrograd::codegen::Trace::new(trace.statics().to_vec(), slice);
        let sliced = platform.measure_trace(&sub_trace);

        let mut window = generator.stream(&profile).window(sp.start_instruction, len);
        let windowed = platform.measure_source(&mut window);
        assert_eq!(sliced, windowed, "cluster {}", sp.cluster);
    }
}
