//! Clone one of the bundled SPEC-like benchmarks (the Fig. 2 workflow).
//!
//! The benchmark is characterized on the Large core, then the
//! gradient-descent tuner evolves a ~500-instruction synthetic clone until
//! its instruction mix, cache hit rates, branch misprediction rate and IPC
//! match the original.  The printed table is one "radar chart" of Fig. 2 in
//! tabular form.
//!
//! Run with (benchmark name optional, default `mcf`):
//!
//! ```text
//! cargo run --release --example clone_spec -- sjeng
//! ```

use micrograd::core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MicroGrad, MicroGradError, TunerKind, UseCaseConfig,
};
use micrograd::workloads::Benchmark;

fn main() -> Result<(), MicroGradError> {
    let benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mcf".to_owned())
        .to_lowercase();
    if benchmark.parse::<Benchmark>().is_err() {
        eprintln!(
            "unknown benchmark `{benchmark}`; choose one of: {}",
            Benchmark::ALL
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }

    let config = FrameworkConfig {
        core: CoreKind::Large,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::Full,
        use_case: UseCaseConfig::CloneBenchmark {
            benchmark: benchmark.clone(),
            accuracy_target: 0.99,
        },
        max_epochs: 40,
        dynamic_len: 50_000,
        reference_len: 100_000,
        seed: 7,
        // Ladder probes of each epoch are evaluated on all available cores.
        parallelism: Some(0),
    };

    println!("cloning `{benchmark}` on the Large core (Table II) ...");
    let output = MicroGrad::new(config).run()?;
    let report = output.as_clone().expect("cloning run");

    println!();
    println!(
        "clone ready after {} epochs / {} evaluations (converged: {})",
        report.epochs_used, report.evaluations, report.converged
    );
    println!();
    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "metric", "original", "clone", "ratio"
    );
    for (kind, ratio) in &report.ratios {
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>8.3}",
            kind.label(),
            report.target.value_or_zero(*kind),
            report.clone_metrics.value_or_zero(*kind),
            ratio
        );
    }
    println!();
    println!("mean accuracy: {:.2}%", report.mean_accuracy * 100.0);
    if let Some((worst, acc)) = report.worst_metric() {
        println!("worst metric:  {} at {:.2}%", worst.label(), acc * 100.0);
    }
    println!();
    println!("epoch progression (best loss):");
    for record in &report.epochs {
        println!(
            "  epoch {:>3}: loss {:>9.5}  (evaluations so far: {})",
            record.epoch, record.best_loss, record.evaluations
        );
    }
    Ok(())
}
