//! Phased workload: a two-phase streaming scenario the materialized trace
//! design could not afford at realistic lengths.
//!
//! Real applications move through phases — the same granularity SimPoint
//! assumes — and cloning them faithfully means composing one behaviour per
//! phase rather than blending everything into a single loop.  This example
//! builds a [`PhaseSchedule`] of two knob-driven phases:
//!
//! 1. an **mcf-like pointer-chasing phase**: load-heavy, serial dependences,
//!    a multi-megabyte working set walked with poor locality;
//! 2. a **libquantum-like streaming phase**: unit-stride loads/stores over a
//!    large array with perfectly predictable branches.
//!
//! Each phase is a [`StreamingExpander`] cursor, so the schedule never
//! materializes a trace: the whole scenario simulates in O(loop size)
//! memory no matter how long the phases are.  The example measures each
//! phase alone and then the blended schedule, showing how the blend sits
//! between the two extremes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example phased_workload
//! ```

use micrograd::codegen::{Generator, GeneratorInput, PhaseSchedule, TestCase, TraceExpander};
use micrograd::core::{ExecutionPlatform, MetricKind, MicroGradError, SimPlatform};
use micrograd::isa::Opcode;
use micrograd::sim::CoreConfig;

/// Dynamic instructions per phase.  Raise this freely: the streaming path's
/// memory footprint does not grow with it.
const PHASE_LEN: usize = 400_000;
const SEED: u64 = 7;

/// mcf-like phase: pointer chasing through a working set far beyond the L2.
fn pointer_chasing_phase() -> Result<TestCase, MicroGradError> {
    let mut input = GeneratorInput {
        loop_size: 200,
        reg_dependency_distance: 1, // serial address chains
        mem_footprint_kb: 8 * 1024, // 8 MiB working set
        mem_stride: 1024,           // strides defeat the prefetcher
        mem_temporal_window: 4,
        mem_temporal_period: 1, // no re-use: every access is fresh
        branch_randomness: 0.4,
        seed: SEED,
        name: "mcf-like".to_owned(),
        ..GeneratorInput::default()
    };
    for w in input.instr_weights.values_mut() {
        *w = 0.0;
    }
    input.set_weight(Opcode::Ld, 5.0);
    input.set_weight(Opcode::Add, 3.0);
    input.set_weight(Opcode::Bne, 1.0);
    Ok(Generator::new().generate(&input)?)
}

/// libquantum-like phase: unit-stride streaming with predictable branches.
fn streaming_phase() -> Result<TestCase, MicroGradError> {
    let mut input = GeneratorInput {
        loop_size: 200,
        reg_dependency_distance: 8, // ample ILP
        mem_footprint_kb: 128,      // streams within the L2
        mem_stride: 8,              // sequential walk, prefetcher-friendly
        mem_temporal_window: 1,
        mem_temporal_period: 1,
        branch_randomness: 0.0, // perfectly predictable
        seed: SEED + 1,
        name: "libquantum-like".to_owned(),
        ..GeneratorInput::default()
    };
    for w in input.instr_weights.values_mut() {
        *w = 0.0;
    }
    input.set_weight(Opcode::Ld, 3.0);
    input.set_weight(Opcode::Sd, 1.0);
    input.set_weight(Opcode::FaddD, 2.0);
    input.set_weight(Opcode::Add, 3.0);
    input.set_weight(Opcode::Bne, 1.0);
    Ok(Generator::new().generate(&input)?)
}

fn main() -> Result<(), MicroGradError> {
    let platform = SimPlatform::new(CoreConfig::small());
    let chasing = pointer_chasing_phase()?;
    let streaming = streaming_phase()?;
    let expander = TraceExpander::new(PHASE_LEN, SEED);

    println!("Phased workload — two-phase streaming scenario ({PHASE_LEN} instructions/phase)");
    println!();

    // Per-phase metrics: each phase measured alone, streamed.
    let mcf_like = platform.measure_source(&mut expander.stream(&chasing));
    let libquantum_like = platform.measure_source(&mut expander.stream(&streaming));

    // Blended metrics: both phases concatenated into one stream, each in
    // its own code/data region so they do not alias in the caches.
    let mut schedule = PhaseSchedule::new()
        .then(expander.stream(&chasing), PHASE_LEN)
        .then_in_region(
            expander.stream(&streaming),
            PHASE_LEN,
            0x0100_0000, // separate text region
            0x4000_0000, // separate data region
        );
    let blended = platform.measure_source(&mut schedule);

    let kinds = [
        MetricKind::Ipc,
        MetricKind::L1dHitRate,
        MetricKind::L2HitRate,
        MetricKind::BranchMispredictRate,
        MetricKind::LoadFraction,
        MetricKind::StoreFraction,
        MetricKind::FloatFraction,
    ];
    println!(
        "{:<22} {:>12} {:>16} {:>12}",
        "metric", "mcf-like", "libquantum-like", "blended"
    );
    for kind in kinds {
        println!(
            "{:<22} {:>12.4} {:>16.4} {:>12.4}",
            kind.label(),
            mcf_like.value_or_zero(kind),
            libquantum_like.value_or_zero(kind),
            blended.value_or_zero(kind),
        );
    }

    println!();
    println!(
        "pointer chasing is memory-bound (IPC {:.3}), streaming is not (IPC {:.3});",
        mcf_like.value_or_zero(MetricKind::Ipc),
        libquantum_like.value_or_zero(MetricKind::Ipc)
    );
    println!(
        "the blended schedule lands in between (IPC {:.3}) — one stream, two behaviours,",
        blended.value_or_zero(MetricKind::Ipc)
    );
    println!("O(loop size) memory regardless of phase length.");
    Ok(())
}
