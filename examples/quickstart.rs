//! Quickstart: clone a workload described directly by its metric values.
//!
//! This is the smallest end-to-end MicroGrad run: the cloning target is
//! given as a handful of metric values (the "numerical values of the
//! application's metrics of interest" input mode of the paper), and the
//! gradient-descent tuner evolves a synthetic test case to match them.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use micrograd::core::{
    CoreKind, FrameworkConfig, FrameworkOutput, KnobSpaceKind, MetricKind, Metrics, MicroGrad,
    MicroGradError, TunerKind, UseCaseConfig,
};

fn main() -> Result<(), MicroGradError> {
    // Describe the workload to clone by its metrics of interest.
    let target = Metrics::new()
        .with(MetricKind::IntegerFraction, 0.45)
        .with(MetricKind::LoadFraction, 0.25)
        .with(MetricKind::StoreFraction, 0.12)
        .with(MetricKind::BranchFraction, 0.15)
        .with(MetricKind::BranchMispredictRate, 0.05)
        .with(MetricKind::L1dHitRate, 0.93)
        .with(MetricKind::Ipc, 1.2);

    let config = FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::Full,
        use_case: UseCaseConfig::CloneMetrics {
            name: "quickstart-target".to_owned(),
            target,
            accuracy_target: 0.97,
        },
        max_epochs: 12,
        dynamic_len: 20_000,
        reference_len: 20_000,
        seed: 42,
        // Evaluate each epoch's batch on all available cores; results are
        // bit-identical to a sequential run.
        parallelism: Some(0),
    };

    println!("MicroGrad quickstart — cloning a metric-described workload");
    println!("configuration:\n{}", config.to_json());

    // Own the platform (instead of plain `run()`) so the memoization-cache
    // counters can be inspected after the run.
    let framework = MicroGrad::new(config);
    let platform = framework.platform();
    let output = framework.run_on(&platform)?;
    let FrameworkOutput::Clone(report) = output else {
        unreachable!("cloning use case returns a clone report");
    };

    println!();
    println!(
        "clone of `{}` after {} epochs ({} evaluations):",
        report.workload, report.epochs_used, report.evaluations
    );
    println!(
        "{:<18} {:>10} {:>10} {:>8}",
        "metric", "target", "clone", "ratio"
    );
    for (kind, ratio) in &report.ratios {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>8.3}",
            kind.label(),
            report.target.value_or_zero(*kind),
            report.clone_metrics.value_or_zero(*kind),
            ratio
        );
    }
    println!();
    println!(
        "mean accuracy: {:.2}% (converged: {})",
        report.mean_accuracy * 100.0,
        report.converged
    );
    let cache = platform.cache_stats();
    println!(
        "memo cache: {} lookups, {} hits ({:.1}% hit rate), {} inserts, \
         {}/{} entries resident, {} replacements",
        cache.lookups(),
        cache.hits,
        cache.hit_rate() * 100.0,
        cache.inserts,
        cache.entries,
        cache.capacity,
        cache.replacements
    );
    Ok(())
}
