//! Quickstart: clone a workload described directly by its metric values.
//!
//! This is the smallest end-to-end MicroGrad run: the cloning target is
//! given as a handful of metric values (the "numerical values of the
//! application's metrics of interest" input mode of the paper), and the
//! gradient-descent tuner evolves a synthetic test case to match them.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use micrograd::core::{
    CoreKind, FrameworkConfig, FrameworkOutput, KnobSpaceKind, MetricKind, Metrics, MicroGrad,
    MicroGradError, TunerKind, UseCaseConfig,
};
use micrograd::service::{Client, Server, ServerConfig};

fn main() -> Result<(), MicroGradError> {
    // Describe the workload to clone by its metrics of interest.
    let target = Metrics::new()
        .with(MetricKind::IntegerFraction, 0.45)
        .with(MetricKind::LoadFraction, 0.25)
        .with(MetricKind::StoreFraction, 0.12)
        .with(MetricKind::BranchFraction, 0.15)
        .with(MetricKind::BranchMispredictRate, 0.05)
        .with(MetricKind::L1dHitRate, 0.93)
        .with(MetricKind::Ipc, 1.2);

    let config = FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::Full,
        use_case: UseCaseConfig::CloneMetrics {
            name: "quickstart-target".to_owned(),
            target,
            accuracy_target: 0.97,
        },
        max_epochs: 12,
        dynamic_len: 20_000,
        reference_len: 20_000,
        seed: 42,
        // Evaluate each epoch's batch on all available cores; results are
        // bit-identical to a sequential run.
        parallelism: Some(0),
    };

    println!("MicroGrad quickstart — cloning a metric-described workload");
    println!("configuration:\n{}", config.to_json());

    // Own the platform (instead of plain `run()`) so the memoization-cache
    // counters can be inspected after the run.
    let framework = MicroGrad::new(config);
    let platform = framework.platform();
    let output = framework.run_on(&platform)?;
    let FrameworkOutput::Clone(report) = output else {
        unreachable!("cloning use case returns a clone report");
    };

    println!();
    println!(
        "clone of `{}` after {} epochs ({} evaluations):",
        report.workload, report.epochs_used, report.evaluations
    );
    println!(
        "{:<18} {:>10} {:>10} {:>8}",
        "metric", "target", "clone", "ratio"
    );
    for (kind, ratio) in &report.ratios {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>8.3}",
            kind.label(),
            report.target.value_or_zero(*kind),
            report.clone_metrics.value_or_zero(*kind),
            ratio
        );
    }
    println!();
    println!(
        "mean accuracy: {:.2}% (converged: {})",
        report.mean_accuracy * 100.0,
        report.converged
    );
    let cache = platform.cache_stats();
    println!(
        "memo cache: {} lookups, {} hits ({:.1}% hit rate), {} inserts, \
         {}/{} entries resident, {} replacements",
        cache.lookups(),
        cache.hits,
        cache.hit_rate() * 100.0,
        cache.inserts,
        cache.entries,
        cache.capacity,
        cache.replacements
    );

    // The same framework also runs as a daemon built on a readiness
    // event loop: one reactor thread multiplexes every socket, so idle
    // connections cost file descriptors, not threads. Boot an
    // in-process server, park a crowd of idle sessions on it, and read
    // the reactor's counters back through the stats endpoint.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("in-process server starts");
    let idle: Vec<std::net::TcpStream> = (0..64)
        .map(|_| std::net::TcpStream::connect(server.local_addr()).expect("idle connect"))
        .collect();
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let stats = client.stats().expect("stats answers");
    let reactor = stats.reactor;
    println!();
    println!(
        "event-loop daemon with {} idle sessions parked on it:",
        idle.len()
    );
    println!(
        "reactor: {} connections open ({} accepted, {} closed), \
         {} loop wakeups, {} B write-queue high-water mark, \
         {} completions pushed",
        reactor.connections_open,
        reactor.connections_accepted,
        reactor.connections_closed,
        reactor.loop_wakeups,
        reactor.write_queue_hwm,
        reactor.notifications_pushed
    );
    drop(client);
    drop(idle);
    server.shutdown();
    Ok(())
}
