//! Quickstart: clone a workload described directly by its metric values.
//!
//! This is the smallest end-to-end MicroGrad run: the cloning target is
//! given as a handful of metric values (the "numerical values of the
//! application's metrics of interest" input mode of the paper), and the
//! gradient-descent tuner evolves a synthetic test case to match them.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use micrograd::codegen::StreamingExpander;
use micrograd::core::{
    CoreKind, FrameworkConfig, FrameworkOutput, KnobSpaceKind, MetricKind, Metrics, MicroGrad,
    MicroGradError, TunerKind, UseCaseConfig,
};
use micrograd::service::{Client, Server, ServerConfig};
use micrograd::sim::Simulator;

fn main() -> Result<(), MicroGradError> {
    // Describe the workload to clone by its metrics of interest.
    let target = Metrics::new()
        .with(MetricKind::IntegerFraction, 0.45)
        .with(MetricKind::LoadFraction, 0.25)
        .with(MetricKind::StoreFraction, 0.12)
        .with(MetricKind::BranchFraction, 0.15)
        .with(MetricKind::BranchMispredictRate, 0.05)
        .with(MetricKind::L1dHitRate, 0.93)
        .with(MetricKind::Ipc, 1.2);

    let config = FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::Full,
        use_case: UseCaseConfig::CloneMetrics {
            name: "quickstart-target".to_owned(),
            target,
            accuracy_target: 0.97,
        },
        max_epochs: 12,
        dynamic_len: 20_000,
        reference_len: 20_000,
        seed: 42,
        // Evaluate each epoch's batch on all available cores; results are
        // bit-identical to a sequential run.
        parallelism: Some(0),
    };

    println!("MicroGrad quickstart — cloning a metric-described workload");
    println!("configuration:\n{}", config.to_json());

    // Own the platform (instead of plain `run()`) so the memoization-cache
    // counters can be inspected after the run.
    let framework = MicroGrad::new(config.clone());
    let platform = framework.platform();
    let output = framework.run_on(&platform)?;
    let FrameworkOutput::Clone(report) = output else {
        unreachable!("cloning use case returns a clone report");
    };

    println!();
    println!(
        "clone of `{}` after {} epochs ({} evaluations):",
        report.workload, report.epochs_used, report.evaluations
    );
    println!(
        "{:<18} {:>10} {:>10} {:>8}",
        "metric", "target", "clone", "ratio"
    );
    for (kind, ratio) in &report.ratios {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>8.3}",
            kind.label(),
            report.target.value_or_zero(*kind),
            report.clone_metrics.value_or_zero(*kind),
            ratio
        );
    }
    println!();
    println!(
        "mean accuracy: {:.2}% (converged: {})",
        report.mean_accuracy * 100.0,
        report.converged
    );

    // Time-resolved behaviour of the clone: regenerate the winning test
    // case and re-run it under the simulator's sampled profiler.  The
    // samples are keyed by retired-instruction count (never wall-clock),
    // so the profile is exactly as deterministic as the tuning run — this
    // is how cloning-accuracy debugging compares original vs clone phase
    // by phase instead of by end-of-run aggregates.
    let input = config
        .knob_space
        .build()
        .resolve(&report.knob_config, config.seed)?;
    let test_case = platform.generate(&input)?;
    let mut source = StreamingExpander::new(&test_case, config.dynamic_len, config.seed);
    let mut sim = Simulator::new(config.core.config());
    sim.set_profiling(4_096);
    let stats = sim.run_source(&mut source);
    if let Some(profile) = &stats.profile {
        println!();
        println!(
            "time-resolved clone profile ({} samples, every {} retired instructions):",
            profile.samples.len(),
            profile.interval
        );
        println!(
            "{:>10} {:>7} {:>9} {:>11} {:>8} {:>7}",
            "retired", "ipc", "l1d-hit", "mispredict", "rob-occ", "rs-occ"
        );
        for sample in &profile.samples {
            println!(
                "{:>10} {:>7.3} {:>8.1}% {:>10.1}% {:>8} {:>7}",
                sample.retired,
                sample.ipc(),
                sample.l1d_hit_rate() * 100.0,
                sample.mispredict_rate() * 100.0,
                sample.rob_occupancy,
                sample.rs_occupancy
            );
        }
    }

    // The same framework also runs as a daemon built on a readiness
    // event loop: one reactor thread multiplexes every socket, so idle
    // connections cost file descriptors, not threads. Boot an
    // in-process server, park a crowd of idle sessions on it, exercise
    // a couple of requests, and render the *unified* metrics registry —
    // scheduler counters, request series, latency histograms, reactor
    // and memo-cache gauges, one table for every layer.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("in-process server starts");
    let idle: Vec<std::net::TcpStream> = (0..64)
        .map(|_| std::net::TcpStream::connect(server.local_addr()).expect("idle connect"))
        .collect();
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    client.stats().expect("stats answers");
    client.list().expect("list answers");

    let metrics = server.scheduler().metrics();
    // Fold the *local* run's memo-cache counters and the reactor's live
    // counters into the registry, so the table below covers every layer
    // this example touched.
    metrics.sync_cache(&platform.cache_stats());
    metrics.sync_reactor(&server.reactor_stats());
    println!();
    println!(
        "unified metrics registry ({} idle sessions parked on the daemon):",
        idle.len()
    );
    println!("{:<44} {:>12}  p50/p95/p99 (us)", "series", "value");
    for sample in metrics.samples() {
        match sample.quantiles {
            Some((p50, p95, p99)) => {
                println!(
                    "{:<44} {:>12}  {p50}/{p95}/{p99}",
                    sample.name, sample.value
                );
            }
            None if sample.value != 0 => println!("{:<44} {:>12}", sample.name, sample.value),
            None => {}
        }
    }
    drop(client);
    drop(idle);
    server.shutdown();
    Ok(())
}
