//! Clone-per-SimPoint: one tuned clone per execution phase, recombined
//! into a weighted composite (the third input mode of Section III-A).
//!
//! The phased gcc-like application model is analyzed in a single streaming
//! pass (`simpoint::analyze_source`), each simpoint's reference metrics are
//! measured on an interval-windowed stream, the gradient-descent tuner
//! clones each simpoint individually (every probe batched through
//! `evaluate_batch`), and the tuned per-phase generators are stitched into
//! a weighted `PhaseSchedule` composite whose blended metrics are validated
//! against the whole-program original.  No trace is materialized at any
//! stage — the whole workflow runs in O(window) trace memory.
//!
//! Run with (benchmark name optional, default `gcc`):
//!
//! ```text
//! cargo run --release --example clone_simpoints -- xalancbmk
//! ```

use micrograd::core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MicroGrad, MicroGradError, TunerKind, UseCaseConfig,
};
use micrograd::workloads::Benchmark;

fn main() -> Result<(), MicroGradError> {
    let benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gcc".to_owned())
        .to_lowercase();
    if benchmark.parse::<Benchmark>().is_err() {
        eprintln!(
            "unknown benchmark `{benchmark}`; choose one of: {}",
            Benchmark::ALL
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }

    let config = FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::Full,
        use_case: UseCaseConfig::CloneSimpoints {
            benchmark: benchmark.clone(),
            accuracy_target: 0.99,
            interval_len: 10_000,
            max_phases: 4,
        },
        max_epochs: 8,
        dynamic_len: 20_000,
        reference_len: 60_000,
        seed: 7,
        // Ladder probes of every per-phase epoch run on all available cores.
        parallelism: Some(0),
    };

    println!("clone-per-SimPoint for `{benchmark}` on the Small core ...");
    let output = MicroGrad::new(config).run()?;
    let report = output.as_simpoint_clone().expect("simpoint-clone run");

    println!();
    println!(
        "phase analysis: {} intervals of {} instructions -> {} simpoints",
        report.num_intervals,
        report.interval_len,
        report.num_phases()
    );
    for phase in &report.phases {
        println!(
            "  simpoint {}: interval {:>2} (weight {:>5.1}%), cloned to {:>5.1}% accuracy \
             in {} epochs / {} evaluations",
            phase.simpoint.cluster,
            phase.simpoint.interval_index,
            phase.simpoint.weight * 100.0,
            phase.report.mean_accuracy * 100.0,
            phase.report.epochs_used,
            phase.report.evaluations,
        );
    }

    println!();
    println!("blended composite vs whole-program original (radar-chart axes):");
    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "metric", "original", "composite", "ratio"
    );
    for (kind, ratio) in &report.ratios {
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>8.3}",
            kind.label(),
            report.blended_target.value_or_zero(*kind),
            report.blended_metrics.value_or_zero(*kind),
            ratio
        );
    }

    println!();
    println!(
        "blended mean accuracy: {:.2}% over {} per-phase clones ({} evaluations total)",
        report.mean_accuracy * 100.0,
        report.num_phases(),
        report.evaluations
    );
    if let Some((worst, acc)) = report.worst_metric() {
        println!(
            "worst blended metric:  {} at {:.2}%",
            worst.label(),
            acc * 100.0
        );
    }
    Ok(())
}
