//! Bottleneck analysis: sweep one knob and report its impact.
//!
//! The paper's conclusion sketches this as a further use case MicroGrad's
//! modular structure enables: "sweeping over a specified range of finer
//! execution characteristics — such as cache miss rate — and analyzing its
//! bottle-necking impact on the overall processor execution."  This example
//! sweeps the memory-footprint knob (`MEM_SIZE`) across its ladder while
//! holding every other knob at its midpoint, and reports how the data-cache
//! hit rates and IPC respond on both Table II cores.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bottleneck_sweep
//! ```

use micrograd::core::{
    ExecutionPlatform, KnobConfig, KnobSpace, KnobTarget, MetricKind, MicroGradError, SimPlatform,
};
use micrograd::sim::CoreConfig;

fn main() -> Result<(), MicroGradError> {
    let space = KnobSpace::full();
    let mem_size_knob = space
        .specs()
        .iter()
        .position(|s| matches!(s.target, KnobTarget::MemoryFootprintKb))
        .expect("full knob space has a MEM_SIZE knob");

    for core in [CoreConfig::small(), CoreConfig::large()] {
        let core_name = core.name.clone();
        let platform = SimPlatform::new(core).with_dynamic_len(30_000).with_seed(3);
        println!("== {core_name} core ==");
        println!(
            "{:>12} {:>10} {:>10} {:>8}",
            "MEM_SIZE(kB)", "DC hit", "L2 hit", "IPC"
        );
        for index in 0..=space.max_index(mem_size_knob) {
            let mut indices = space.midpoint_config().indices().to_vec();
            indices[mem_size_knob] = index;
            let config = KnobConfig::new(indices);
            let input = space.resolve(&config, 3)?;
            let metrics = platform.evaluate(&input)?;
            println!(
                "{:>12} {:>10.4} {:>10.4} {:>8.3}",
                space.specs()[mem_size_knob].value_at(index),
                metrics.value_or_zero(MetricKind::L1dHitRate),
                metrics.value_or_zero(MetricKind::L2HitRate),
                metrics.value_or_zero(MetricKind::Ipc),
            );
        }
        println!();
    }
    println!("larger footprints overflow each cache level in turn; the knee positions");
    println!("differ between the Small and Large cores because of their L1/L2 capacities.");
    Ok(())
}
