//! Generate a power virus (the Fig. 6 / Table III workflow).
//!
//! Gradient descent drives the full knob set towards the configuration that
//! maximizes dynamic power on the Large core, then prints the per-epoch
//! progression (Fig. 6) and the instruction distribution of the resulting
//! virus (Table III).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example power_virus
//! ```

use micrograd::core::tuner::{GdParams, GradientDescentTuner};
use micrograd::core::usecase::StressTask;
use micrograd::core::{KnobSpace, MicroGradError, SimPlatform};
use micrograd::isa::InstrClass;
use micrograd::sim::CoreConfig;

fn main() -> Result<(), MicroGradError> {
    let platform = SimPlatform::new(CoreConfig::large())
        .with_dynamic_len(40_000)
        .with_seed(11);
    let space = KnobSpace::full();
    let task = StressTask::power_virus(25);
    let mut tuner = GradientDescentTuner::new(GdParams {
        seed: 11,
        ..GdParams::default()
    });

    println!("searching for a power virus on the Large core (25 epochs max) ...");
    let report = task.run(&platform, &space, &mut tuner)?;

    println!();
    println!("dynamic power progression (W):");
    for (epoch, power) in report.progression.iter().enumerate() {
        let bar_len = (power * 20.0).round() as usize;
        println!(
            "  epoch {:>3}: {:>6.3} {}",
            epoch + 1,
            power,
            "#".repeat(bar_len)
        );
    }

    println!();
    println!(
        "best dynamic power: {:.3} W after {} epochs ({} evaluations)",
        report.best_value, report.epochs_used, report.evaluations
    );

    println!();
    println!("power virus instruction distribution (Table III):");
    for class in InstrClass::ALL {
        let fraction = report.instruction_mix.get(&class).copied().unwrap_or(0.0);
        println!("  {:<8} {:>6.1}%", class.to_string(), fraction * 100.0);
    }
    Ok(())
}
