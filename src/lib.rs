//! # micrograd
//!
//! Facade crate for the MicroGrad reproduction: a centralized framework for
//! **workload cloning** and **stress testing** driven by gradient-descent
//! tuning over an abstract workload model, together with every substrate it
//! needs (a Microprobe-like code generator, a Gem5-like out-of-order core
//! simulator, a McPAT-like power model, SPEC-like application models and
//! SimPoint-style phase analysis).
//!
//! Most users only need this crate: it re-exports each component crate
//! under a short module name.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `micrograd-core` | knobs, losses, tuners, use cases, framework facade |
//! | [`codegen`] | `micrograd-codegen` | pass-based synthetic test-case generation |
//! | [`sim`] | `micrograd-sim` | out-of-order core + cache hierarchy simulator |
//! | [`power`] | `micrograd-power` | activity-based dynamic power model |
//! | [`workloads`] | `micrograd-workloads` | SPEC-like application models, SimPoint analysis |
//! | [`isa`] | `micrograd-isa` | RISC-V subset instruction definitions |
//!
//! # Quick start
//!
//! ```
//! use micrograd::core::{CoreKind, FrameworkConfig, KnobSpaceKind, MicroGrad};
//!
//! // Stress-test the small core for worst-case IPC with a tiny budget.
//! let config = FrameworkConfig {
//!     core: CoreKind::Small,
//!     knob_space: KnobSpaceKind::InstructionFractions,
//!     max_epochs: 2,
//!     dynamic_len: 4_000,
//!     ..FrameworkConfig::default()
//! };
//! let output = MicroGrad::new(config).run()?;
//! println!("worst-case IPC: {:.3}", output.as_stress().unwrap().best_value);
//! # Ok::<(), micrograd::core::MicroGradError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios
//! (`quickstart`, `clone_spec`, `power_virus`, `bottleneck_sweep`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use micrograd_codegen as codegen;
pub use micrograd_core as core;
pub use micrograd_isa as isa;
pub use micrograd_power as power;
pub use micrograd_sim as sim;
pub use micrograd_workloads as workloads;
