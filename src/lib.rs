//! # micrograd
//!
//! Facade crate for the MicroGrad reproduction: a centralized framework for
//! **workload cloning** and **stress testing** driven by gradient-descent
//! tuning over an abstract workload model, together with every substrate it
//! needs (a Microprobe-like code generator, a Gem5-like out-of-order core
//! simulator, a McPAT-like power model, SPEC-like application models and
//! SimPoint-style phase analysis).
//!
//! Most users only need this crate: it re-exports each component crate
//! under a short module name.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `micrograd-core` | knobs, losses, tuners, use cases (cloning, clone-per-SimPoint, stress), batch-parallel evaluation, framework facade |
//! | [`service`] | `micrograd-service` | persistent job server: `microgradd` daemon, JSON-lines protocol, priority scheduler, durable result store |
//! | [`codegen`] | `micrograd-codegen` | pass-based synthetic test-case generation, streaming/windowed trace sources |
//! | [`sim`] | `micrograd-sim` | out-of-order core + cache hierarchy simulator |
//! | [`power`] | `micrograd-power` | activity-based dynamic power model |
//! | [`workloads`] | `micrograd-workloads` | SPEC-like application models, streaming SimPoint analysis |
//! | [`isa`] | `micrograd-isa` | RISC-V subset instruction definitions |
//!
//! # Quick start
//!
//! ```
//! use micrograd::core::{CoreKind, FrameworkConfig, KnobSpaceKind, MicroGrad};
//!
//! // Stress-test the small core for worst-case IPC with a tiny budget,
//! // evaluating each epoch's batch on all available cores.
//! let config = FrameworkConfig {
//!     core: CoreKind::Small,
//!     knob_space: KnobSpaceKind::InstructionFractions,
//!     max_epochs: 2,
//!     dynamic_len: 4_000,
//!     parallelism: Some(0),
//!     ..FrameworkConfig::default()
//! };
//! let output = MicroGrad::new(config).run()?;
//! println!("worst-case IPC: {:.3}", output.as_stress().unwrap().best_value);
//! # Ok::<(), micrograd::core::MicroGradError>(())
//! ```
//!
//! # Batch-parallel evaluation
//!
//! Tuning wall-clock is dominated by platform evaluations, and almost all
//! of them are independent: the ladder probes of a gradient-descent epoch,
//! a GA generation, a brute-force grid chunk, a random-search sample.
//! Every tuner therefore submits its evaluations in batches through
//! [`core::ExecutionPlatform::evaluate_batch`], and the bundled
//! [`core::SimPlatform`] fans a batch out over a worker pool (one
//! simulator instance per evaluation, a sharded memo cache keyed by a
//! stable `u64` fingerprint of the generator input).
//!
//! The worker count is the `parallelism` field of
//! [`core::FrameworkConfig`] (or [`core::SimPlatform::with_parallelism`]
//! when driving the platform directly): `None` evaluates sequentially,
//! `Some(n)` uses up to `n` threads, and `Some(0)` auto-sizes to the host.
//! Results are **bit-identical across all settings** — batches are
//! post-processed in submission order and every evaluation is a pure,
//! seeded function of its input — so parallelism is purely a wall-clock
//! knob (see `tests/determinism.rs` and the `batch_evaluation` /
//! `tuning_epoch` benches).
//!
//! # Streaming traces
//!
//! The trace layer is streaming: a [`codegen::TraceSource`] yields dynamic
//! instructions on demand and [`sim::Simulator::run_source`] consumes them
//! in a single fused pass with ring-buffer bookkeeping bounded by the
//! core's ROB/RS/LSQ windows, so evaluation memory is O(window sizes)
//! regardless of `dynamic_len` — 100 M-instruction runs are affordable.
//! Materialized [`codegen::Trace`]s remain available (and are drained from
//! the same cursors, so the two paths are bit-identical); phase-structured
//! scenarios compose per-phase sources with [`codegen::PhaseSchedule`].
//! See `docs/streaming.md` for the architecture.
//!
//! # Clone-per-SimPoint
//!
//! The paper's third input mode — "Application Simpoints can be provided,
//! so as to generate a clone for each simpoint individually" — is a full
//! pipeline: [`workloads::simpoint::analyze_source`] phase-analyzes the
//! target in one streaming pass, each simpoint's reference metrics are
//! measured on an interval-windowed stream
//! ([`codegen::TraceSource::window`]), one clone is tuned per simpoint
//! (probes batched through [`core::ExecutionPlatform::evaluate_batch`]),
//! and the tuned phases are recombined into a weighted
//! [`codegen::PhaseSchedule`] composite validated against the original —
//! [`core::MicroGrad::clone_simpoints`], or the `clone-simpoints` use case
//! in the configuration file.  See `docs/simpoint.md` for the workflow.
//!
//! # Running as a service
//!
//! The framework is also a long-lived server: the `microgradd` daemon
//! (from `micrograd-service`) accepts [`core::FrameworkConfig`] jobs from
//! many clients over a versioned JSON-lines TCP protocol, deduplicates
//! identical submissions onto one execution (keyed by
//! [`core::FrameworkConfig::fingerprint`]), schedules them on a bounded
//! priority queue with a worker pool, and persists completed
//! [`core::FrameworkOutput`] reports plus the evaluation memo cache in a
//! durable store — a restarted daemon answers repeat jobs from disk,
//! bit-identically.  Drive it with the `micrograd-cli` binary or the
//! [`service::Client`] API; see `docs/service.md` for the protocol.
//!
//! See the `examples/` directory for runnable end-to-end scenarios
//! (`quickstart`, `clone_spec`, `clone_simpoints`, `power_virus`,
//! `bottleneck_sweep`, `phased_workload`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use micrograd_codegen as codegen;
pub use micrograd_core as core;
pub use micrograd_isa as isa;
pub use micrograd_obs as obs;
pub use micrograd_power as power;
pub use micrograd_service as service;
pub use micrograd_sim as sim;
pub use micrograd_workloads as workloads;
