//! Vendored offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator behind the [`rand::RngCore`]/[`rand::SeedableRng`] traits.
//!
//! The keystream is a faithful ChaCha8 implementation (IETF variant, 64-bit
//! counter), but the word-to-output mapping is not guaranteed to be
//! bit-compatible with the real `rand_chacha` crate; consumers in this
//! workspace only rely on determinism and statistical quality.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // a double round: column round + diagonal round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force refill on first use
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_looks_uniform() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
