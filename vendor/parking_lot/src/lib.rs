//! Vendored offline stand-in for `parking_lot`: thin wrappers over
//! `std::sync` primitives with `parking_lot`'s non-poisoning API shape.

use std::fmt;

/// A mutual exclusion primitive (non-poisoning API over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.  Unlike
    /// `std::sync::Mutex`, poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutably borrows the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// A reader-writer lock (non-poisoning API over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}
