//! Vendored offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON through the stand-in `serde` crate's
//! [`serde::Value`] model.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the value model this stand-in supports; the `Result` is
/// kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string.
///
/// # Errors
///
/// Never fails for the value model this stand-in supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some("  "), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the text is not valid JSON or does not match the
/// shape `T` expects.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------------------
// emitter

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // keep integral floats recognizable as floats
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate in string"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // UTF-8 passthrough: consume the full multi-byte sequence.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
