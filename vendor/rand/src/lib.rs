//! Vendored offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), uniform sampling over
//! integer and float ranges, [`distributions::WeightedIndex`] and
//! [`seq::SliceRandom`].  Algorithms are deterministic but are not
//! bit-compatible with the real crate — all consumers in this workspace
//! only rely on determinism, not on specific streams.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = chunk.len().min(dest.len() - i);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with uniform sampling over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The predecessor of `v` (for half-open ranges); floats return `v`.
    fn predecessor(v: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                let span = ((high as i128) - (low as i128)) as u128 + 1;
                let r = u128::from(rng.next_u64()) % span;
                ((low as i128) + r as i128) as $t
            }
            fn predecessor(v: Self) -> Self {
                v - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty sample range");
        let unit = (rng.next_u64() >> 11) as f64 / 9_007_199_254_740_992.0;
        low + unit * (high - low)
    }
    fn predecessor(v: Self) -> Self {
        v
    }
}

/// Ranges that can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_inclusive(rng, self.start, T::predecessor(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod distributions {
    //! Sampling distributions (subset).

    use super::{Rng, RngCore};

    /// A sampling distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over a type's natural domain
    /// (`[0, 1)` for floats, all values for integers, fair coin for bool).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / 9_007_199_254_740_992.0
        }
    }

    impl Distribution<f32> for Standard {
        #[allow(clippy::cast_possible_truncation)]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u32() >> 8) as f64 / 16_777_216.0) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[allow(clippy::cast_possible_truncation)]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite, or all weights were zero.
        InvalidWeight,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => f.write_str("no weights provided"),
                WeightedError::InvalidWeight => f.write_str("invalid weight"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a list of `f64` weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds a weighted index from an iterator of weights.
        ///
        /// # Errors
        ///
        /// Returns a [`WeightedError`] if no weights are given, a weight is
        /// negative/non-finite, or all weights are zero.
        pub fn new<I, X>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = X>,
            X: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let r = rng.gen::<f64>() * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&r).expect("finite weights"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (subset).

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A small default generator (xoshiro256**), seedable and deterministic.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}
