//! Vendored offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! benchmark groups, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery.  Passing `--test` (as `cargo test --benches`
//! does) runs every benchmark exactly once.
//!
//! Two environment variables extend the harness for perf tracking:
//!
//! * `CRITERION_SAMPLES=<n>` overrides every benchmark's sample count —
//!   `CRITERION_SAMPLES=3` is the CI quick mode;
//! * `CRITERION_JSON=<path>` appends one JSON line per benchmark to
//!   `<path>` (creating it if needed) with the median sample time and the
//!   derived throughput, for consumption by `micrograd-bench`'s
//!   `bench_record` tool.

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, printed with the
/// results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable wall-clock
    /// reading (once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        run_one(&id.to_string(), samples, self.test_mode, None, f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotates the group with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        run_one(
            &format!("{}/{}", self.name, id),
            samples,
            self.criterion.test_mode,
            self.throughput,
            f,
        );
    }

    /// Benchmarks a closure with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Sample-count override from `CRITERION_SAMPLES` (CI quick mode).
fn sample_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// Appends one JSON line describing a finished benchmark to the file named
/// by `CRITERION_JSON`, if set.  Failures are reported but never fatal — a
/// perf-tracking hiccup must not fail the bench run itself.
fn append_json_record(
    name: &str,
    median: Duration,
    samples: usize,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let median_ns = median.as_nanos();
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = if median_ns > 0 {
                n as f64 / median.as_secs_f64()
            } else {
                0.0
            };
            format!(",\"elements\":{n},\"elem_per_s\":{rate:.3}")
        }
        Some(Throughput::Bytes(n)) => {
            let rate = if median_ns > 0 {
                n as f64 / median.as_secs_f64()
            } else {
                0.0
            };
            format!(",\"bytes\":{n},\"bytes_per_s\":{rate:.3}")
        }
        None => String::new(),
    };
    // Benchmark names are ASCII identifiers with `/` separators; no JSON
    // escaping is needed beyond quoting.
    let line =
        format!("{{\"name\":\"{name}\",\"median_ns\":{median_ns},\"samples\":{samples}{extra}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(err) = written {
        eprintln!("criterion: failed to append to {path}: {err}");
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let samples = if test_mode {
        samples
    } else {
        sample_override().unwrap_or(samples)
    };
    let mut durations: Vec<Duration> = Vec::with_capacity(samples);
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += b.iters;
        durations.push(b.elapsed);
    }
    if test_mode {
        println!("bench {name}: ok");
        return;
    }
    durations.sort_unstable();
    let best = durations[0];
    // Median of the sorted samples (midpoint average for even counts) — a
    // robust central estimate for trend tracking, where best-of-N is the
    // optimistic floor shown in the console line.
    let median = if durations.len() % 2 == 1 {
        durations[durations.len() / 2]
    } else {
        (durations[durations.len() / 2 - 1] + durations[durations.len() / 2]) / 2
    };
    let per_iter = best.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "bench {name}: {:>12.6} ms/iter  [{samples} samples, {total_iters} iters, median {:.6} ms]{rate}",
        per_iter * 1e3,
        median.as_secs_f64() * 1e3
    );
    append_json_record(name, median, samples, throughput);
}

/// Declares a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` running benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
