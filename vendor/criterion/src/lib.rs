//! Vendored offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! benchmark groups, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery.  Passing `--test` (as `cargo test --benches`
//! does) runs every benchmark exactly once.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, printed with the
/// results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable wall-clock
    /// reading (once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        run_one(&id.to_string(), samples, self.test_mode, None, f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotates the group with a throughput unit.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        run_one(
            &format!("{}/{}", self.name, id),
            samples,
            self.criterion.test_mode,
            self.throughput,
            f,
        );
    }

    /// Benchmarks a closure with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut best = Duration::MAX;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += b.iters;
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    if test_mode {
        println!("bench {name}: ok");
        return;
    }
    let per_iter = best.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "bench {name}: {:>12.6} ms/iter  [{samples} samples, {total_iters} iters]{rate}",
        per_iter * 1e3
    );
}

/// Declares a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` running benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
