//! Vendored offline derive macros for the stand-in `serde` crate.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline).  Supports
//! the shapes this repository uses:
//!
//! * structs with named fields;
//! * enums with unit, newtype and struct variants;
//! * container attributes `#[serde(rename_all = "...")]` (`lowercase`,
//!   `kebab-case`, `snake_case`) and `#[serde(tag = "...")]`;
//! * field attributes `#[serde(default)]` and `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    ty: String,
    default: Option<Option<String>>, // None = no default; Some(None) = Default::default(); Some(Some(p)) = path
}

#[derive(Debug, Clone)]
enum VariantData {
    Unit,
    Newtype(String),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Container {
    name: String,
    shape: Shape,
    rename_all: Option<String>,
    tag: Option<String>,
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// parsing

struct SerdeAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    default: Option<Option<String>>,
}

fn parse_serde_attr(tokens: &[TokenTree], attrs: &mut SerdeAttrs) {
    // tokens are the contents of the bracket group: `serde ( ... )`
    let mut iter = tokens.iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(group)) = iter.next() else {
        return;
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        let TokenTree::Ident(key) = &inner[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        let value = if i + 2 < inner.len()
            && matches!(&inner[i + 1], TokenTree::Punct(p) if p.as_char() == '=')
        {
            let v = literal_string(&inner[i + 2]);
            i += 3;
            v
        } else {
            i += 1;
            None
        };
        match key.as_str() {
            "rename_all" => attrs.rename_all = value,
            "tag" => attrs.tag = value,
            "default" => attrs.default = Some(value),
            _ => {}
        }
        // skip a separating comma, if any
        if i < inner.len() {
            if let TokenTree::Punct(p) = &inner[i] {
                if p.as_char() == ',' {
                    i += 1;
                }
            }
        }
    }
}

fn literal_string(t: &TokenTree) -> Option<String> {
    let TokenTree::Literal(lit) = t else {
        return None;
    };
    let s = lit.to_string();
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(std::borrow::ToOwned::to_owned)
}

/// Consumes leading attributes, recording `#[serde(...)]` contents.
fn take_attrs(tokens: &[TokenTree], mut i: usize, attrs: &mut SerdeAttrs) -> usize {
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        parse_serde_attr(&inner, attrs);
        i += 2;
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = SerdeAttrs {
        rename_all: None,
        tag: None,
        default: None,
    };
    let mut i = take_attrs(&tokens, 0, &mut attrs);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    // skip generics if present (none in this repository)
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while i < tokens.len() {
                if let TokenTree::Punct(p) = &tokens[i] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
        }
    }
    let shape = match kind.as_str() {
        "struct" => {
            let body = tokens[i..]
                .iter()
                .find_map(|t| match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("derive(Serialize/Deserialize) on `{name}`: only named-field structs are supported"));
            Shape::Struct(parse_fields(body.stream()))
        }
        "enum" => {
            let body = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body, got {other}"),
            };
            Shape::Enum(parse_variants(body.stream()))
        }
        other => panic!("cannot derive for `{other}`"),
    };
    Container {
        name,
        shape,
        rename_all: attrs.rename_all,
        tag: attrs.tag,
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs {
            rename_all: None,
            tag: None,
            default: None,
        };
        i = take_attrs(&tokens, i, &mut attrs);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        // collect the type until a top-level comma
        let mut depth = 0i32;
        let mut ty = String::new();
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    ',' if depth == 0 => break,
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        i += 1; // the comma, if any
        fields.push(Field {
            name,
            ty,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs {
            rename_all: None,
            tag: None,
            default: None,
        };
        i = take_attrs(&tokens, i, &mut attrs);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let data = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let ty = inner
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ");
                VariantData::Newtype(ty)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Struct(parse_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        // skip to past the next top-level comma
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, data });
    }
    variants
}

// ---------------------------------------------------------------------------
// name conversion

fn apply_rename(rule: Option<&str>, name: &str) -> String {
    match rule {
        Some("lowercase") => name.to_lowercase(),
        Some("kebab-case") => camel_to_separated(name, '-'),
        Some("snake_case") => camel_to_separated(name, '_'),
        Some("UPPERCASE") => name.to_uppercase(),
        _ => name.to_owned(),
    }
}

fn camel_to_separated(name: &str, sep: char) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// code generation

fn gen_struct_to_map(fields: &[Field], accessor: &str) -> String {
    let mut code = String::from("{ let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        code.push_str(&format!(
            "entries.push((\"{name}\".to_string(), ::serde::Serialize::serialize_value({accessor}{name})));\n",
            name = f.name,
        ));
    }
    code.push_str("::serde::Value::Map(entries) }");
    code
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::Struct(fields) => gen_struct_to_map(fields, "&self."),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = apply_rename(c.rename_all.as_deref(), &v.name);
                match (&v.data, &c.tag) {
                    (VariantData::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Str(\"{vname}\".to_string()),\n",
                            v = v.name,
                        ));
                    }
                    (VariantData::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Map(vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string()))]),\n",
                            v = v.name,
                        ));
                    }
                    (VariantData::Newtype(_), None) => {
                        arms.push_str(&format!(
                            "{name}::{v}(inner) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::serialize_value(inner))]),\n",
                            v = v.name,
                        ));
                    }
                    (VariantData::Newtype(_), Some(tag)) => {
                        // Internally tagged: the inner value must serialize
                        // to a map; prepend the tag entry.
                        arms.push_str(&format!(
                            "{name}::{v}(inner) => {{\n\
                             let mut entries = vec![(\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string()))];\n\
                             match ::serde::Serialize::serialize_value(inner) {{\n\
                                 ::serde::Value::Map(m) => entries.extend(m),\n\
                                 other => entries.push((\"value\".to_string(), other)),\n\
                             }}\n\
                             ::serde::Value::Map(entries)\n\
                             }},\n",
                            v = v.name,
                        ));
                    }
                    (VariantData::Struct(fields), tag) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut entries = String::new();
                        if let Some(tag) = tag {
                            entries.push_str(&format!(
                                "entries.push((\"{tag}\".to_string(), ::serde::Value::Str(\"{vname}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            entries.push_str(&format!(
                                "entries.push((\"{f}\".to_string(), ::serde::Serialize::serialize_value({f})));\n",
                                f = f.name,
                            ));
                        }
                        let fields_map = format!(
                            "{{ let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n{entries}::serde::Value::Map(entries) }}"
                        );
                        let value = if tag.is_some() {
                            fields_map
                        } else {
                            format!(
                                "::serde::Value::Map(vec![(\"{vname}\".to_string(), {fields_map})])"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bindings} }} => {value},\n",
                            v = v.name,
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_field_reads(c_name: &str, fields: &[Field], map_expr: &str) -> String {
    // Produces `field: <expr>,` initializers reading from `map_expr`
    // (an expression of type `&[(String, Value)]`).
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default {
            Some(Some(path)) => format!("{path}()"),
            Some(None) => "::std::default::Default::default()".to_string(),
            None => format!(
                "<{ty} as ::serde::Deserialize>::deserialize_value(&::serde::Value::Null)\
                 .map_err(|e| e.context(\"{c_name}.{fname} (missing)\"))?",
                ty = f.ty,
                fname = f.name,
            ),
        };
        out.push_str(&format!(
            "{fname}: match ::serde::map_get({map_expr}, \"{fname}\") {{\n\
                 Some(__v) => <{ty} as ::serde::Deserialize>::deserialize_value(__v)\
                     .map_err(|e| e.context(\"{c_name}.{fname}\"))?,\n\
                 None => {missing},\n\
             }},\n",
            fname = f.name,
            ty = f.ty,
        ));
    }
    out
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::Struct(fields) => {
            let reads = gen_field_reads(name, fields, "entries");
            format!(
                "let entries = v.as_map().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"expected object for {name}, got {{v:?}}\")))?;\n\
                 Ok({name} {{\n{reads}}})"
            )
        }
        Shape::Enum(variants) => {
            if let Some(tag) = &c.tag {
                // internally tagged
                let mut arms = String::new();
                for v in variants {
                    let vname = apply_rename(c.rename_all.as_deref(), &v.name);
                    match &v.data {
                        VariantData::Unit => {
                            arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantData::Newtype(ty) => {
                            arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v}(<{ty} as ::serde::Deserialize>::deserialize_value(v)\
                                     .map_err(|e| e.context(\"{name}::{v}\"))?)),\n",
                                v = v.name,
                            ));
                        }
                        VariantData::Struct(fields) => {
                            let reads = gen_field_reads(name, fields, "entries");
                            arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v} {{\n{reads}}}),\n",
                                v = v.name,
                            ));
                        }
                    }
                }
                format!(
                    "let entries = v.as_map().ok_or_else(|| ::serde::DeError::new(\
                         format!(\"expected object for {name}, got {{v:?}}\")))?;\n\
                     let tag = ::serde::map_get(entries, \"{tag}\")\
                         .and_then(::serde::Value::as_str)\
                         .ok_or_else(|| ::serde::DeError::new(\"missing `{tag}` tag for {name}\"))?;\n\
                     match tag {{\n{arms}\
                         other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }}"
                )
            } else {
                // externally tagged
                let mut str_arms = String::new();
                let mut map_arms = String::new();
                for v in variants {
                    let vname = apply_rename(c.rename_all.as_deref(), &v.name);
                    match &v.data {
                        VariantData::Unit => {
                            str_arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantData::Newtype(ty) => {
                            map_arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{v}(<{ty} as ::serde::Deserialize>::deserialize_value(inner)\
                                     .map_err(|e| e.context(\"{name}::{v}\"))?)),\n",
                                v = v.name,
                            ));
                        }
                        VariantData::Struct(fields) => {
                            let reads = gen_field_reads(name, fields, "entries");
                            map_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let entries = inner.as_map().ok_or_else(|| ::serde::DeError::new(\
                                         \"expected object for {name}::{v}\"))?;\n\
                                     Ok({name}::{v} {{\n{reads}}})\n\
                                 }},\n",
                                v = v.name,
                            ));
                        }
                    }
                }
                format!(
                    "match v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n{str_arms}\
                             other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }},\n\
                         ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                             let (key, inner) = &m[0];\n\
                             match key.as_str() {{\n{map_arms}\
                                 other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }}\n\
                         }},\n\
                         other => Err(::serde::DeError::new(format!(\"expected {name}, got {{other:?}}\"))),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
