//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal serialization framework under the `serde` name.  It is
//! intentionally much simpler than real serde: serialization goes through a
//! self-describing [`Value`] tree instead of a visitor, and the derive
//! macros (re-exported from `serde_derive`) generate `Value` conversions
//! honoring the subset of `#[serde(...)]` attributes this repository uses
//! (`rename_all`, `tag`, `default`, `default = "path"`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A self-describing data value, the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data formats such as
/// `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit `i64`.
    UInt(u64),
    /// A floating point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A key-ordered map (object).  Order is preserved for readability.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents of a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| map_get(m, key))
    }
}

/// Looks up `key` among map entries.
#[must_use]
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable description including any context path.
    pub message: String,
}

impl DeError {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Prepends a context path (e.g. a field name) to the error.
    #[must_use]
    pub fn context(mut self, ctx: &str) -> Self {
        self.message = format!("{ctx}: {}", self.message);
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] if the value does not have the expected shape.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                #[allow(unused_comparisons, clippy::cast_possible_wrap)]
                if (*self as i128) >= i64::MIN as i128 && (*self as i128) <= i64::MAX as i128 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(n) => i128::from(*n),
                    Value::UInt(n) => i128::from(*n),
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => *f as i128,
                    other => return Err(DeError::new(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(wide).map_err(|_| DeError::new(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = String::deserialize_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Seq(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            other => Err(DeError::new(format!("expected pair, got {other:?}"))),
        }
    }
}

fn key_to_string(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Int(n) => Some(n.to_string()),
        Value::UInt(n) => Some(n.to_string()),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    if s == "true" || s == "false" {
        if let Ok(k) = K::deserialize_value(&Value::Bool(s == "true")) {
            return Ok(k);
        }
    }
    Err(DeError::new(format!("cannot interpret map key `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            match key_to_string(&k.serialize_value()) {
                Some(key) => entries.push((key, v.serialize_value())),
                None => {
                    // Non-scalar keys: fall back to an array of pairs.
                    return Value::Seq(
                        self.iter()
                            .map(|(k, v)| {
                                Value::Seq(vec![k.serialize_value(), v.serialize_value()])
                            })
                            .collect(),
                    );
                }
            }
        }
        Value::Map(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let mut out = BTreeMap::new();
        match v {
            Value::Map(entries) => {
                for (k, v) in entries {
                    out.insert(key_from_string::<K>(k)?, V::deserialize_value(v)?);
                }
                Ok(out)
            }
            Value::Seq(items) => {
                for item in items {
                    let (k, v) = <(K, V)>::deserialize_value(item)?;
                    out.insert(k, v);
                }
                Ok(out)
            }
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort for a deterministic representation.
        let sorted: BTreeMap<&K, &V> = self.iter().collect();
        let mut entries = Vec::with_capacity(sorted.len());
        for (k, v) in sorted {
            match key_to_string(&k.serialize_value()) {
                Some(key) => entries.push((key, v.serialize_value())),
                None => {
                    return Value::Seq(
                        self.iter()
                            .map(|(k, v)| {
                                Value::Seq(vec![k.serialize_value(), v.serialize_value()])
                            })
                            .collect(),
                    );
                }
            }
        }
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let mut out = HashMap::with_hasher(S::default());
        match v {
            Value::Map(entries) => {
                for (k, v) in entries {
                    out.insert(key_from_string::<K>(k)?, V::deserialize_value(v)?);
                }
                Ok(out)
            }
            Value::Seq(items) => {
                for item in items {
                    let (k, v) = <(K, V)>::deserialize_value(item)?;
                    out.insert(k, v);
                }
                Ok(out)
            }
            other => Err(DeError::new(format!("expected map, got {other:?}"))),
        }
    }
}
