//! # micrograd-bench
//!
//! The experiment harness of the MicroGrad reproduction.
//!
//! Every table and figure of the paper's evaluation section has a
//! regeneration binary in `src/bin/`:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table I (GA parameters) | `table1` |
//! | Table II (core configurations) | `table2` |
//! | Fig. 2 (cloning, Large core, GD) | `fig2_cloning_large_gd` |
//! | Fig. 3 (cloning, Small core, GD) | `fig3_cloning_small_gd` |
//! | Fig. 4 (cloning, Large core, GA) | `fig4_cloning_large_ga` |
//! | Fig. 5 (performance virus: GD vs GA vs brute force) | `fig5_perf_virus` |
//! | Fig. 6 (power virus: GD vs GA vs brute force) | `fig6_power_virus` |
//! | Table III (power-virus instruction mix) | `table3_power_virus_mix` |
//! | everything above in one run | `run_all` |
//!
//! The library half of the crate holds the shared experiment code the
//! binaries and the Criterion benches use: experiment sizing (full vs. the
//! `MICROGRAD_FAST=1` quick mode), the cloning/stress runners and plain-text
//! table formatting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cloning;
pub mod format;
pub mod sizes;
pub mod stress;

pub use cloning::{run_cloning_experiment, CloneRow};
pub use format::{format_ratio_table, format_series};
pub use sizes::ExperimentSizes;
pub use stress::{run_stress_comparison, StressCurves};
