//! Shared stress-experiment runner (Figs. 5 and 6, Table III).

use crate::ExperimentSizes;
use micrograd_core::tuner::{
    BruteForceTuner, GaParams, GdParams, GeneticTuner, GradientDescentTuner, Tuner, TuningBudget,
};
use micrograd_core::usecase::{StressReport, StressTask};
use micrograd_core::{KnobSpace, MetricKind, SimPlatform, StressGoal, StressLoss};
use micrograd_sim::CoreConfig;

/// The curves of a stress comparison: per-epoch best stress-metric value
/// for gradient descent and the GA, plus the brute-force reference optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct StressCurves {
    /// The stressed metric.
    pub metric: MetricKind,
    /// Per-epoch best value under gradient descent.
    pub gd: Vec<f64>,
    /// Per-epoch best value under the GA (1.5× the GD epoch budget, as in
    /// Fig. 5).
    pub ga: Vec<f64>,
    /// Brute-force optimum over the coarse grid ("Minimum"/"Maximum" line).
    pub brute_force_optimum: f64,
    /// Evaluations used by GD.
    pub gd_evaluations: usize,
    /// Evaluations used by the GA.
    pub ga_evaluations: usize,
    /// Evaluations used by brute force.
    pub brute_evaluations: usize,
    /// The full gradient-descent report (instruction mix for Table III).
    pub gd_report: StressReport,
}

impl StressCurves {
    /// Final GD value relative to the brute-force optimum (1.0 = matched).
    #[must_use]
    pub fn gd_vs_optimum(&self) -> f64 {
        let last = self.gd.last().copied().unwrap_or(f64::NAN);
        if self.brute_force_optimum.abs() < 1e-12 {
            f64::NAN
        } else {
            last / self.brute_force_optimum
        }
    }
}

/// Runs one stress-testing comparison (GD vs GA vs brute force) on `core`
/// over `space` for the given metric/goal.
///
/// # Panics
///
/// Panics if a tuning run fails (the bundled platform cannot fail on valid
/// knob configurations).
#[must_use]
pub fn run_stress_comparison(
    core: CoreConfig,
    space: &KnobSpace,
    metric: MetricKind,
    goal: StressGoal,
    sizes: &ExperimentSizes,
) -> StressCurves {
    let platform = SimPlatform::new(core)
        .with_dynamic_len(sizes.dynamic_len)
        .with_seed(sizes.seed)
        .with_parallelism(sizes.parallelism);

    // Brute-force reference over a coarse grid.
    let loss = StressLoss::new(metric, goal);
    let mut brute = BruteForceTuner::new(sizes.brute_levels, sizes.brute_max_evals);
    let brute_result = brute
        .tune(
            &platform,
            space,
            &loss,
            &TuningBudget::epochs(usize::MAX / 2),
        )
        .expect("brute-force run succeeds");
    let brute_force_optimum = brute_result.best_metrics.value_or_zero(metric);

    // Gradient descent.
    let gd_task = StressTask {
        metric,
        goal,
        max_epochs: sizes.stress_epochs_gd,
    };
    let mut gd = GradientDescentTuner::new(GdParams {
        seed: sizes.seed,
        ..GdParams::default()
    });
    let gd_report = gd_task
        .run(&platform, space, &mut gd)
        .expect("gradient-descent run succeeds");

    // GA with 1.5× the epochs, as in Fig. 5.
    let ga_task = StressTask {
        metric,
        goal,
        max_epochs: sizes.stress_epochs_ga,
    };
    let mut ga = GeneticTuner::new(GaParams {
        seed: sizes.seed,
        ..GaParams::paper()
    });
    let ga_report = ga_task
        .run(&platform, space, &mut ga)
        .expect("GA run succeeds");

    StressCurves {
        metric,
        gd: gd_report.progression.clone(),
        ga: ga_report.progression.clone(),
        brute_force_optimum,
        gd_evaluations: gd_report.evaluations,
        ga_evaluations: ga_report.evaluations,
        brute_evaluations: brute_result.total_evaluations,
        gd_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_stress_comparison_produces_all_curves() {
        let sizes = ExperimentSizes {
            dynamic_len: 4_000,
            loop_size: 100,
            stress_epochs_gd: 2,
            stress_epochs_ga: 3,
            brute_levels: 2,
            brute_max_evals: 16,
            ..ExperimentSizes::fast()
        };
        let mut space = KnobSpace::instruction_fractions();
        space.loop_size = sizes.loop_size;
        let curves = run_stress_comparison(
            CoreConfig::small(),
            &space,
            MetricKind::Ipc,
            StressGoal::Minimize,
            &sizes,
        );
        assert_eq!(curves.gd.len(), 2);
        assert_eq!(curves.ga.len(), 3);
        assert!(curves.brute_force_optimum > 0.0);
        assert!(curves.gd_vs_optimum().is_finite());
        assert!(curves.ga_evaluations > curves.gd_evaluations);
        assert_eq!(curves.gd_report.metric, MetricKind::Ipc);
    }
}
