//! Regenerates Table II of the paper: the Small and Large core
//! configurations used throughout the evaluation.

use micrograd_sim::CoreConfig;

fn main() {
    let small = CoreConfig::small();
    let large = CoreConfig::large();
    println!("Table II: Core Configuration");
    println!("{:<22}{:>18}{:>24}", "Parameter", "Small", "Large");
    println!(
        "{:<22}{:>18}{:>24}",
        "Frequency",
        format!("{} GHz", small.frequency_hz / 1_000_000_000),
        format!("{} GHz", large.frequency_hz / 1_000_000_000)
    );
    println!(
        "{:<22}{:>18}{:>24}",
        "Front-End Width", small.frontend_width, large.frontend_width
    );
    println!(
        "{:<22}{:>18}{:>24}",
        "ROB/LSQ/RSE",
        format!(
            "{}/{}/{}",
            small.rob_entries, small.lsq_entries, small.rs_entries
        ),
        format!(
            "{}/{}/{}",
            large.rob_entries, large.lsq_entries, large.rs_entries
        )
    );
    println!(
        "{:<22}{:>18}{:>24}",
        "ALU/SIMD/FP",
        format!(
            "{}/{}/{}",
            small.alu_units, small.complex_units, small.fp_units
        ),
        format!(
            "{}/{}/{}",
            large.alu_units, large.complex_units, large.fp_units
        )
    );
    println!(
        "{:<22}{:>18}{:>24}",
        "L1/L2 Cache",
        format!(
            "{}k/{}k",
            small.l1d.size_bytes / 1024,
            small.l2.size_bytes / 1024
        ),
        format!(
            "{}k/{}M + prefetch",
            large.l1d.size_bytes / 1024,
            large.l2.size_bytes / (1024 * 1024)
        )
    );
    println!(
        "{:<22}{:>18}{:>24}",
        "Memory",
        format!("{} GB", small.memory_bytes >> 30),
        format!("{} GB", large.memory_bytes >> 30)
    );
}
