//! Regenerates Fig. 5 of the paper: the compute-focused performance virus
//! (worst-case IPC) on the Large core — gradient descent vs the GA baseline
//! vs the brute-force optimum, tuning only the instruction-fraction knobs.
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{format_series, run_stress_comparison, ExperimentSizes};
use micrograd_core::{KnobSpace, MetricKind, StressGoal};
use micrograd_sim::CoreConfig;

fn main() {
    let sizes = ExperimentSizes::from_env();
    let mut space = KnobSpace::instruction_fractions();
    space.loop_size = sizes.loop_size;
    let curves = run_stress_comparison(
        CoreConfig::large(),
        &space,
        MetricKind::Ipc,
        StressGoal::Minimize,
        &sizes,
    );
    println!(
        "{}",
        format_series(
            "Fig. 5: Performance virus (worst-case IPC), Large core — best IPC per epoch",
            &[("GD", &curves.gd), ("GA", &curves.ga)],
            Some(("brute-force minimum", curves.brute_force_optimum)),
        )
    );
    println!(
        "GD final IPC {:.4} = {:.2}x the brute-force minimum after {} epochs ({} evaluations)",
        curves.gd.last().copied().unwrap_or(f64::NAN),
        curves.gd_vs_optimum(),
        curves.gd.len(),
        curves.gd_evaluations
    );
    println!(
        "GA final IPC {:.4} after {} epochs ({} evaluations)",
        curves.ga.last().copied().unwrap_or(f64::NAN),
        curves.ga.len(),
        curves.ga_evaluations
    );
    println!("brute-force evaluations: {}", curves.brute_evaluations);
}
