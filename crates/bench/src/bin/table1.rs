//! Regenerates Table I of the paper: the GA parameters used by the
//! baseline tuner.

use micrograd_core::tuner::GaParams;

fn main() {
    let p = GaParams::paper();
    println!("Table I: GA parameters (baseline tuner)");
    println!("{:<28}{}", "Parameter", "Value");
    println!("{:<28}{}", "Population Size", p.population_size);
    println!("{:<28}{}", "Individual Size (# knobs)", "as many as the knob space defines");
    println!("{:<28}{}%", "Mutation Rate", p.mutation_rate * 100.0);
    println!("{:<28}{}", "Mutation position", "Random");
    println!("{:<28}{}", "Mutation type", "Random");
    println!("{:<28}{}", "Crossover Operator", "1-point");
    println!("{:<28}{}%", "Crossover Rate", p.crossover_rate * 100.0);
    println!("{:<28}{}", "Crossover Position", "Random");
    println!("{:<28}{}", "Elitism", p.elite_count > 0);
    println!("{:<28}{}", "Tournament Size", p.tournament_size);
}
