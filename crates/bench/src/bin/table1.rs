//! Regenerates Table I of the paper: the GA parameters used by the
//! baseline tuner.

use micrograd_core::tuner::GaParams;

fn main() {
    let p = GaParams::paper();
    println!("Table I: GA parameters (baseline tuner)");
    println!("{:<28}Value", "Parameter");
    println!("{:<28}{}", "Population Size", p.population_size);
    println!(
        "{:<28}as many as the knob space defines",
        "Individual Size (# knobs)"
    );
    println!("{:<28}{}%", "Mutation Rate", p.mutation_rate * 100.0);
    println!("{:<28}Random", "Mutation position");
    println!("{:<28}Random", "Mutation type");
    println!("{:<28}1-point", "Crossover Operator");
    println!("{:<28}{}%", "Crossover Rate", p.crossover_rate * 100.0);
    println!("{:<28}Random", "Crossover Position");
    println!("{:<28}{}", "Elitism", p.elite_count > 0);
    println!("{:<28}{}", "Tournament Size", p.tournament_size);
}
