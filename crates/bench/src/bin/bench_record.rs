//! Perf-trajectory recorder: folds criterion JSONL output into the
//! committed `BENCH_simulator.json` history and checks fresh runs against
//! it.
//!
//! The vendored criterion harness appends one JSON line per benchmark to
//! the file named by `CRITERION_JSON` (median sample time plus derived
//! throughput).  This tool maintains the long-lived, committed view:
//!
//! ```text
//! bench_record append --label pr6 --input /tmp/criterion.jsonl \
//!     --history BENCH_simulator.json
//! bench_record check --history BENCH_simulator.json \
//!     --input /tmp/criterion.jsonl --warn-pct 25 \
//!     --require simulator_throughput --require batch_evaluation
//! ```
//!
//! `append` merges the run into the per-benchmark history under `label`
//! (re-appending the same label replaces that label's entry, so re-runs are
//! idempotent).  `check` validates that the history parses and contains
//! every `--require`d group (hard failure, exit 1) and — when `--input` is
//! given — prints a *soft warning* for every benchmark whose fresh median
//! regressed more than `--warn-pct` percent against the last recorded
//! entry.  Warnings never change the exit code: perf noise on shared CI
//! runners must not turn the build red.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One recorded benchmark measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    /// Where the measurement came from (e.g. a PR tag).
    label: String,
    /// Median wall-clock time per iteration, in nanoseconds.
    median_ns: u64,
    /// Samples the median was taken over.
    samples: u64,
    /// Derived element throughput, when the group declares one.
    #[serde(default)]
    elem_per_s: Option<f64>,
    /// Derived byte throughput, when the group declares one.
    #[serde(default)]
    bytes_per_s: Option<f64>,
}

/// The committed history: benchmark name → chronological entries.
#[derive(Debug, Default, Serialize, Deserialize)]
struct BenchHistory {
    /// Schema version.
    format: u32,
    /// Per-benchmark measurement series, oldest first.
    series: BTreeMap<String, Vec<BenchEntry>>,
}

/// One line of criterion JSONL output.
#[derive(Debug, Deserialize)]
struct JsonlRecord {
    name: String,
    median_ns: u64,
    samples: u64,
    #[serde(default)]
    elem_per_s: Option<f64>,
    #[serde(default)]
    bytes_per_s: Option<f64>,
}

fn read_jsonl(path: &str) -> Result<Vec<JsonlRecord>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read input {path}: {e}"))?;
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: JsonlRecord = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: bad JSONL record: {e}", idx + 1))?;
        records.push(record);
    }
    Ok(records)
}

fn read_history(path: &str) -> Result<BenchHistory, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            serde_json::from_str(&text).map_err(|e| format!("history {path} does not parse: {e}"))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(BenchHistory {
            format: 1,
            series: BTreeMap::new(),
        }),
        Err(e) => Err(format!("cannot read history {path}: {e}")),
    }
}

fn write_history(path: &str, history: &BenchHistory) -> Result<(), String> {
    let mut text = serde_json::to_string_pretty(history)
        .map_err(|e| format!("cannot serialize history: {e}"))?;
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write history {path}: {e}"))
}

fn append(label: &str, input: &str, history_path: &str) -> Result<(), String> {
    let records = read_jsonl(input)?;
    if records.is_empty() {
        return Err(format!("input {input} holds no benchmark records"));
    }
    let mut history = read_history(history_path)?;
    history.format = 1;
    let count = records.len();
    for record in records {
        let entry = BenchEntry {
            label: label.to_string(),
            median_ns: record.median_ns,
            samples: record.samples,
            elem_per_s: record.elem_per_s,
            bytes_per_s: record.bytes_per_s,
        };
        let series = history.series.entry(record.name).or_default();
        // Same-label re-runs replace their previous entry; the series stays
        // one entry per label, oldest first.
        if let Some(existing) = series.iter_mut().find(|e| e.label == label) {
            *existing = entry;
        } else {
            series.push(entry);
        }
    }
    write_history(history_path, &history)?;
    println!("recorded {count} benchmarks under label '{label}' into {history_path}");
    Ok(())
}

#[allow(clippy::cast_precision_loss)]
fn check(
    history_path: &str,
    input: Option<&str>,
    warn_pct: f64,
    required: &[String],
) -> Result<(), String> {
    let history = read_history(history_path)?;
    if history.series.is_empty() {
        return Err(format!("history {history_path} holds no benchmark series"));
    }
    for group in required {
        let prefix = format!("{group}/");
        let found = history
            .series
            .keys()
            .any(|name| name == group || name.starts_with(&prefix));
        if !found {
            return Err(format!(
                "history {history_path} has no series for required group '{group}'"
            ));
        }
    }
    println!(
        "history {history_path}: {} series, all {} required groups present",
        history.series.len(),
        required.len()
    );

    let Some(input) = input else {
        return Ok(());
    };
    let mut warnings = 0usize;
    for record in read_jsonl(input)? {
        let Some(previous) = history.series.get(&record.name).and_then(|s| s.last()) else {
            println!("note: {} has no recorded baseline yet", record.name);
            continue;
        };
        if previous.median_ns == 0 {
            continue;
        }
        let regression_pct = (record.median_ns as f64 - previous.median_ns as f64)
            / previous.median_ns as f64
            * 100.0;
        if regression_pct > warn_pct {
            warnings += 1;
            println!(
                "warning: {} regressed {regression_pct:.1}% vs '{}' \
                 ({} ns -> {} ns median)",
                record.name, previous.label, previous.median_ns, record.median_ns
            );
        }
    }
    if warnings == 0 {
        println!("no median regressions above {warn_pct:.0}%");
    } else {
        println!("{warnings} soft regression warning(s) — not failing the build");
    }
    Ok(())
}

fn usage() -> String {
    "usage:\n  \
     bench_record append --label <label> --input <criterion.jsonl> --history <BENCH.json>\n  \
     bench_record check --history <BENCH.json> [--input <criterion.jsonl>] \
     [--warn-pct <pct>] [--require <group>]..."
        .to_string()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let mut label = None;
    let mut input = None;
    let mut history = None;
    let mut warn_pct = 25.0f64;
    let mut required: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--label" => label = Some(value("--label")?),
            "--input" => input = Some(value("--input")?),
            "--history" => history = Some(value("--history")?),
            "--warn-pct" => {
                warn_pct = value("--warn-pct")?
                    .parse()
                    .map_err(|e| format!("bad --warn-pct: {e}"))?;
            }
            "--require" => required.push(value("--require")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    let history = history.ok_or_else(|| format!("--history is required\n{}", usage()))?;
    match command.as_str() {
        "append" => {
            let label = label.ok_or_else(|| format!("--label is required\n{}", usage()))?;
            let input = input.ok_or_else(|| format!("--input is required\n{}", usage()))?;
            append(&label, &input, &history)
        }
        "check" => check(&history, input.as_deref(), warn_pct, &required),
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
