//! Runs every experiment of the paper's evaluation section in one go and
//! prints the regenerated tables and figure data.  This is the binary used
//! to produce the numbers recorded in EXPERIMENTS.md.
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{
    format_ratio_table, format_series, run_cloning_experiment, run_stress_comparison,
    ExperimentSizes,
};
use micrograd_core::tuner::GaParams;
use micrograd_core::{KnobSpace, MetricKind, StressGoal, TunerKind};
use micrograd_isa::InstrClass;
use micrograd_sim::CoreConfig;
use std::time::Instant;

fn banner(title: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn main() {
    let sizes = ExperimentSizes::from_env();
    let start = Instant::now();
    println!("MicroGrad experiment suite (sizes: {sizes:?})");

    // ---------------- Table I ----------------
    banner("Table I: GA parameters");
    let ga = GaParams::paper();
    println!(
        "population {}, mutation {:.0}%, crossover 1-point @ {:.0}%, elitism {}, tournament {}",
        ga.population_size,
        ga.mutation_rate * 100.0,
        ga.crossover_rate * 100.0,
        ga.elite_count > 0,
        ga.tournament_size
    );

    // ---------------- Table II ----------------
    banner("Table II: core configurations");
    for core in [CoreConfig::small(), CoreConfig::large()] {
        println!(
            "{:<6} width {}, ROB/LSQ/RS {}/{}/{}, ALU/SIMD/FP {}/{}/{}, L1 {}k, L2 {}k, prefetch {}",
            core.name,
            core.frontend_width,
            core.rob_entries,
            core.lsq_entries,
            core.rs_entries,
            core.alu_units,
            core.complex_units,
            core.fp_units,
            core.l1d.size_bytes / 1024,
            core.l2.size_bytes / 1024,
            core.prefetch.enabled
        );
    }

    // ---------------- Fig. 2 ----------------
    banner("Fig. 2: cloning, Large core, Gradient Descent");
    let t = Instant::now();
    let fig2 = run_cloning_experiment(CoreConfig::large(), TunerKind::GradientDescent, &sizes);
    let rows: Vec<_> = fig2
        .iter()
        .map(|r| (r.benchmark.clone(), r.ratios.clone(), r.epochs))
        .collect();
    println!(
        "{}",
        format_ratio_table("clone/original ratios", &rows, &MetricKind::CLONING)
    );
    let fig2_mean = fig2.iter().map(|r| r.mean_accuracy).sum::<f64>() / fig2.len() as f64;
    println!(
        "average GD accuracy (Large): {:.2}%   [{:.1?}]",
        fig2_mean * 100.0,
        t.elapsed()
    );

    // ---------------- Fig. 3 ----------------
    banner("Fig. 3: cloning, Small core, Gradient Descent");
    let t = Instant::now();
    let fig3 = run_cloning_experiment(CoreConfig::small(), TunerKind::GradientDescent, &sizes);
    let rows: Vec<_> = fig3
        .iter()
        .map(|r| (r.benchmark.clone(), r.ratios.clone(), r.epochs))
        .collect();
    println!(
        "{}",
        format_ratio_table("clone/original ratios", &rows, &MetricKind::CLONING)
    );
    let fig3_mean = fig3.iter().map(|r| r.mean_accuracy).sum::<f64>() / fig3.len() as f64;
    println!(
        "average GD accuracy (Small): {:.2}%   [{:.1?}]",
        fig3_mean * 100.0,
        t.elapsed()
    );

    // ---------------- Fig. 4 ----------------
    banner("Fig. 4: cloning, Large core, Genetic Algorithm");
    let t = Instant::now();
    let fig4 = run_cloning_experiment(CoreConfig::large(), TunerKind::Genetic, &sizes);
    let rows: Vec<_> = fig4
        .iter()
        .map(|r| (r.benchmark.clone(), r.ratios.clone(), r.epochs))
        .collect();
    println!(
        "{}",
        format_ratio_table("clone/original ratios", &rows, &MetricKind::CLONING)
    );
    let fig4_mean = fig4.iter().map(|r| r.mean_accuracy).sum::<f64>() / fig4.len() as f64;
    println!(
        "average GA accuracy (Large): {:.2}%   [{:.1?}]",
        fig4_mean * 100.0,
        t.elapsed()
    );
    println!(
        "GD vs GA accuracy gap: {:.1} percentage points (paper: ~25-30%)",
        (fig2_mean - fig4_mean) * 100.0
    );
    let gd_evals: usize = fig2.iter().map(|r| r.evaluations).sum();
    let ga_evals: usize = fig4.iter().map(|r| r.evaluations).sum();
    println!(
        "evaluations: GD {gd_evals}, GA {ga_evals} ({:.2}x more work for GA at equal epochs)",
        ga_evals as f64 / gd_evals as f64
    );

    // ---------------- Fig. 5 ----------------
    banner("Fig. 5: performance virus (worst-case IPC), Large core");
    let t = Instant::now();
    let mut space = KnobSpace::instruction_fractions();
    space.loop_size = sizes.loop_size;
    let fig5 = run_stress_comparison(
        CoreConfig::large(),
        &space,
        MetricKind::Ipc,
        StressGoal::Minimize,
        &sizes,
    );
    println!(
        "{}",
        format_series(
            "best IPC per epoch",
            &[("GD", &fig5.gd), ("GA", &fig5.ga)],
            Some(("brute-force minimum", fig5.brute_force_optimum)),
        )
    );
    println!(
        "GD reaches {:.2}x the brute-force minimum in {} epochs; GA ends at {:.2}x in {} epochs   [{:.1?}]",
        fig5.gd_vs_optimum(),
        fig5.gd.len(),
        fig5.ga.last().copied().unwrap_or(f64::NAN) / fig5.brute_force_optimum,
        fig5.ga.len(),
        t.elapsed()
    );

    // ---------------- Fig. 6 + Table III ----------------
    banner("Fig. 6: power virus (maximum dynamic power), Large core");
    let t = Instant::now();
    let fig6 = run_stress_comparison(
        CoreConfig::large(),
        &space,
        MetricKind::DynamicPower,
        StressGoal::Maximize,
        &sizes,
    );
    println!(
        "{}",
        format_series(
            "best dynamic power (W) per epoch",
            &[("GD", &fig6.gd), ("GA", &fig6.ga)],
            Some(("brute-force maximum", fig6.brute_force_optimum)),
        )
    );
    let gd_final = fig6.gd.last().copied().unwrap_or(f64::NAN);
    let ga_match = fig6
        .ga
        .iter()
        .position(|p| *p >= gd_final)
        .map_or_else(|| format!("> {}", fig6.ga.len()), |i| (i + 1).to_string());
    println!(
        "GD reaches {:.3} W ({:.1}% of brute-force max) in {} epochs; GA needs {} epochs to match   [{:.1?}]",
        gd_final,
        100.0 * gd_final / fig6.brute_force_optimum,
        fig6.gd.len(),
        ga_match,
        t.elapsed()
    );

    banner("Table III: power virus instruction distribution (GD)");
    let mix = &fig6.gd_report.instruction_mix;
    for class in InstrClass::ALL {
        println!(
            "{:<9}{:>6.1}%",
            class.to_string(),
            mix.get(&class).copied().unwrap_or(0.0) * 100.0
        );
    }

    println!();
    println!("total experiment-suite time: {:.1?}", start.elapsed());
}
