//! Regenerates Table III of the paper: the instruction distribution of the
//! gradient-descent power virus (the Fig. 6 run's best test case).
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{run_stress_comparison, ExperimentSizes};
use micrograd_core::{KnobSpace, MetricKind, StressGoal};
use micrograd_isa::InstrClass;
use micrograd_sim::CoreConfig;

fn main() {
    let sizes = ExperimentSizes::from_env();
    let mut space = KnobSpace::instruction_fractions();
    space.loop_size = sizes.loop_size;
    let curves = run_stress_comparison(
        CoreConfig::large(),
        &space,
        MetricKind::DynamicPower,
        StressGoal::Maximize,
        &sizes,
    );
    let mix = &curves.gd_report.instruction_mix;
    println!("Table III: Power virus instruction distribution (GD)");
    println!(
        "{:>9}{:>9}{:>9}{:>9}{:>9}",
        "Integer", "Float", "Branch", "Load", "Store"
    );
    println!(
        "{:>8.1}%{:>8.1}%{:>8.1}%{:>8.1}%{:>8.1}%",
        mix.get(&InstrClass::Integer).copied().unwrap_or(0.0) * 100.0,
        mix.get(&InstrClass::Float).copied().unwrap_or(0.0) * 100.0,
        mix.get(&InstrClass::Branch).copied().unwrap_or(0.0) * 100.0,
        mix.get(&InstrClass::Load).copied().unwrap_or(0.0) * 100.0,
        mix.get(&InstrClass::Store).copied().unwrap_or(0.0) * 100.0,
    );
    let memory = mix.get(&InstrClass::Load).copied().unwrap_or(0.0)
        + mix.get(&InstrClass::Store).copied().unwrap_or(0.0);
    println!();
    println!(
        "memory fraction: {:.1}%  float fraction: {:.1}%  integer fraction: {:.1}%",
        memory * 100.0,
        mix.get(&InstrClass::Float).copied().unwrap_or(0.0) * 100.0,
        mix.get(&InstrClass::Integer).copied().unwrap_or(0.0) * 100.0
    );
    println!("(paper: memory >50%, float >20%, integer ~6%)");
    println!(
        "power virus dynamic power: {:.3} W",
        curves.gd_report.best_value
    );
}
