//! Regenerates Fig. 6 of the paper: the power virus (maximum dynamic power)
//! on the Large core — gradient descent vs the GA baseline vs the
//! brute-force optimum.
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{format_series, run_stress_comparison, ExperimentSizes};
use micrograd_core::{KnobSpace, MetricKind, StressGoal};
use micrograd_sim::CoreConfig;

fn main() {
    let sizes = ExperimentSizes::from_env();
    let mut space = KnobSpace::instruction_fractions();
    space.loop_size = sizes.loop_size;
    let curves = run_stress_comparison(
        CoreConfig::large(),
        &space,
        MetricKind::DynamicPower,
        StressGoal::Maximize,
        &sizes,
    );
    println!(
        "{}",
        format_series(
            "Fig. 6: Power virus (maximum dynamic power, W), Large core — best power per epoch",
            &[("GD", &curves.gd), ("GA", &curves.ga)],
            Some(("brute-force maximum", curves.brute_force_optimum)),
        )
    );
    let gd_final = curves.gd.last().copied().unwrap_or(f64::NAN);
    println!(
        "GD reaches {:.3} W ({:.1}% of the brute-force maximum {:.3} W) in {} epochs ({} evaluations)",
        gd_final,
        100.0 * gd_final / curves.brute_force_optimum,
        curves.brute_force_optimum,
        curves.gd.len(),
        curves.gd_evaluations
    );
    // Epochs the GA needs to first reach the GD's final power level.
    let ga_epochs_to_match = curves
        .ga
        .iter()
        .position(|p| *p >= gd_final)
        .map_or_else(|| format!("> {}", curves.ga.len()), |i| (i + 1).to_string());
    println!(
        "GA reaches {:.3} W in {} epochs; epochs to match GD: {}",
        curves.ga.last().copied().unwrap_or(f64::NAN),
        curves.ga.len(),
        ga_epochs_to_match
    );
}
