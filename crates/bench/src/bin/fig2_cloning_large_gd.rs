//! Regenerates Fig. 2 of the paper: workload cloning of the eight SPEC-like
//! benchmarks on the Large core with gradient-descent tuning.
//!
//! The radar charts are printed as a table of clone/original ratios
//! (radial axis values), one row per benchmark, plus the number of tuning
//! epochs each clone needed (the figure's caption annotations).
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{format_ratio_table, run_cloning_experiment, ExperimentSizes};
use micrograd_core::{MetricKind, TunerKind};
use micrograd_sim::CoreConfig;

fn main() {
    let sizes = ExperimentSizes::from_env();
    let rows = run_cloning_experiment(CoreConfig::large(), TunerKind::GradientDescent, &sizes);
    let table_rows: Vec<_> = rows
        .iter()
        .map(|r| (r.benchmark.clone(), r.ratios.clone(), r.epochs))
        .collect();
    println!(
        "{}",
        format_ratio_table(
            "Fig. 2: Workload cloning, Large core, Gradient Descent (clone/original ratios)",
            &table_rows,
            &MetricKind::CLONING,
        )
    );
    let mean: f64 = rows.iter().map(|r| r.mean_accuracy).sum::<f64>() / rows.len() as f64;
    let worst = rows
        .iter()
        .min_by(|a, b| a.mean_accuracy.partial_cmp(&b.mean_accuracy).unwrap())
        .unwrap();
    println!("average accuracy across benchmarks: {:.2}%", mean * 100.0);
    println!(
        "least accurate benchmark: {} at {:.2}%",
        worst.benchmark,
        worst.mean_accuracy * 100.0
    );
}
