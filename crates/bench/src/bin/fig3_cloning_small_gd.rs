//! Regenerates Fig. 3 of the paper: workload cloning of the eight SPEC-like
//! benchmarks on the Small core with gradient-descent tuning.
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{format_ratio_table, run_cloning_experiment, ExperimentSizes};
use micrograd_core::{MetricKind, TunerKind};
use micrograd_sim::CoreConfig;

fn main() {
    let sizes = ExperimentSizes::from_env();
    let rows = run_cloning_experiment(CoreConfig::small(), TunerKind::GradientDescent, &sizes);
    let table_rows: Vec<_> = rows
        .iter()
        .map(|r| (r.benchmark.clone(), r.ratios.clone(), r.epochs))
        .collect();
    println!(
        "{}",
        format_ratio_table(
            "Fig. 3: Workload cloning, Small core, Gradient Descent (clone/original ratios)",
            &table_rows,
            &MetricKind::CLONING,
        )
    );
    let mean: f64 = rows.iter().map(|r| r.mean_accuracy).sum::<f64>() / rows.len() as f64;
    println!("average accuracy across benchmarks: {:.2}%", mean * 100.0);
}
