//! Regenerates Fig. 4 of the paper: workload cloning of the eight SPEC-like
//! benchmarks on the Large core with the GA baseline (Table I parameters),
//! given the same epoch budget as the gradient-descent runs of Fig. 2.
//!
//! Set `MICROGRAD_FAST=1` for a quick smoke run.

use micrograd_bench::{format_ratio_table, run_cloning_experiment, ExperimentSizes};
use micrograd_core::{MetricKind, TunerKind};
use micrograd_sim::CoreConfig;

fn main() {
    let sizes = ExperimentSizes::from_env();
    let ga_rows = run_cloning_experiment(CoreConfig::large(), TunerKind::Genetic, &sizes);
    let table_rows: Vec<_> = ga_rows
        .iter()
        .map(|r| (r.benchmark.clone(), r.ratios.clone(), r.epochs))
        .collect();
    println!(
        "{}",
        format_ratio_table(
            "Fig. 4: Workload cloning, Large core, Genetic Algorithm (clone/original ratios)",
            &table_rows,
            &MetricKind::CLONING,
        )
    );
    let ga_mean: f64 = ga_rows.iter().map(|r| r.mean_accuracy).sum::<f64>() / ga_rows.len() as f64;
    println!(
        "average GA accuracy across benchmarks: {:.2}%",
        ga_mean * 100.0
    );
    println!(
        "average GA error: {:.1}% (the paper reports ~30% GA error vs <1% for GD)",
        (1.0 - ga_mean) * 100.0
    );
    let evals: usize = ga_rows.iter().map(|r| r.evaluations).sum();
    println!("total GA evaluations: {evals} (50 per epoch vs ~2x knobs for GD)");
}
