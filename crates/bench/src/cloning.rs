//! Shared cloning-experiment runner (Figs. 2, 3 and 4).

use crate::ExperimentSizes;
use micrograd_core::tuner::{GaParams, GdParams, GeneticTuner, GradientDescentTuner, Tuner};
use micrograd_core::usecase::CloningTask;
use micrograd_core::{ExecutionPlatform, KnobSpace, MetricKind, SimPlatform, TunerKind};
use micrograd_sim::CoreConfig;
use micrograd_workloads::{ApplicationTraceGenerator, Benchmark};
use std::collections::BTreeMap;

/// One row of a cloning experiment: a benchmark's per-metric clone/original
/// ratios, mean accuracy and epoch count.
#[derive(Debug, Clone, PartialEq)]
pub struct CloneRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-metric clone/original ratio (radar radial axis).
    pub ratios: BTreeMap<MetricKind, f64>,
    /// Mean accuracy over the cloning metrics.
    pub mean_accuracy: f64,
    /// Epochs used by the tuner.
    pub epochs: usize,
    /// Platform evaluations used by the tuner.
    pub evaluations: usize,
}

/// Runs the cloning experiment of Fig. 2/3/4 for every bundled benchmark.
///
/// `core` selects the Table II core, `tuner_kind` selects gradient descent
/// (Figs. 2–3) or the GA baseline (Fig. 4).  For the GA the epoch budget is
/// the same as GD's, as in the paper ("we allow the GA based approach to run
/// for the same number of tuning epochs").
///
/// # Panics
///
/// Panics if a tuning run fails (the bundled platform cannot fail on valid
/// knob configurations).
#[must_use]
pub fn run_cloning_experiment(
    core: CoreConfig,
    tuner_kind: TunerKind,
    sizes: &ExperimentSizes,
) -> Vec<CloneRow> {
    let platform = SimPlatform::new(core)
        .with_dynamic_len(sizes.dynamic_len)
        .with_seed(sizes.seed)
        .with_parallelism(sizes.parallelism);
    let mut space = KnobSpace::full();
    space.loop_size = sizes.loop_size;
    let task = CloningTask {
        max_epochs: sizes.cloning_epochs,
        ..CloningTask::default()
    };

    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let trace = ApplicationTraceGenerator::new(sizes.reference_len, sizes.seed)
            .generate(&benchmark.profile());
        let target = platform.measure_trace(&trace);

        let mut tuner: Box<dyn Tuner> = match tuner_kind {
            TunerKind::Genetic => Box::new(GeneticTuner::new(GaParams {
                seed: sizes.seed,
                ..GaParams::paper()
            })),
            _ => {
                let warm = CloningTask::warm_start_config(&space, &target);
                Box::new(
                    GradientDescentTuner::new(GdParams {
                        seed: sizes.seed,
                        ..GdParams::default()
                    })
                    .with_initial_config(warm),
                )
            }
        };
        let report = task
            .run(&platform, &space, benchmark.name(), &target, tuner.as_mut())
            .expect("cloning run succeeds");
        rows.push(CloneRow {
            benchmark: benchmark.name().to_owned(),
            ratios: report.ratios.clone(),
            mean_accuracy: report.mean_accuracy,
            epochs: report.epochs_used,
            evaluations: report.evaluations,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_cloning_experiment_produces_a_row_per_benchmark() {
        let sizes = ExperimentSizes {
            reference_len: 6_000,
            dynamic_len: 4_000,
            loop_size: 100,
            cloning_epochs: 2,
            ..ExperimentSizes::fast()
        };
        let rows = run_cloning_experiment(CoreConfig::small(), TunerKind::GradientDescent, &sizes);
        assert_eq!(rows.len(), Benchmark::ALL.len());
        for row in &rows {
            assert_eq!(row.ratios.len(), MetricKind::CLONING.len());
            assert!(row.epochs <= 2);
            assert!(row.mean_accuracy > 0.0);
            assert!(row.evaluations > 0);
        }
    }
}
