//! Plain-text table and series formatting for the experiment binaries.

use micrograd_core::MetricKind;
use std::collections::BTreeMap;

/// Formats a per-benchmark × per-metric ratio table (the tabular form of
/// the radar charts in Figs. 2–4).
#[must_use]
pub fn format_ratio_table(
    title: &str,
    rows: &[(String, BTreeMap<MetricKind, f64>, usize)],
    kinds: &[MetricKind],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<12}", "benchmark"));
    for kind in kinds {
        out.push_str(&format!("{:>15}", kind.label()));
    }
    out.push_str(&format!("{:>9}\n", "epochs"));
    for (name, ratios, epochs) in rows {
        out.push_str(&format!("{name:<12}"));
        for kind in kinds {
            out.push_str(&format!(
                "{:>15.3}",
                ratios.get(kind).copied().unwrap_or(f64::NAN)
            ));
        }
        out.push_str(&format!("{epochs:>9}\n"));
    }
    out
}

/// Formats one or more per-epoch series side by side (the curves of
/// Figs. 5 and 6).
#[must_use]
pub fn format_series(
    title: &str,
    columns: &[(&str, &[f64])],
    reference: Option<(&str, f64)>,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if let Some((label, value)) = reference {
        out.push_str(&format!("reference ({label}): {value:.4}\n"));
    }
    out.push_str(&format!("{:>6}", "epoch"));
    for (label, _) in columns {
        out.push_str(&format!("{label:>14}"));
    }
    out.push('\n');
    let len = columns.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..len {
        out.push_str(&format!("{:>6}", i + 1));
        for (_, series) in columns {
            match series.get(i) {
                Some(v) => out.push_str(&format!("{v:>14.4}")),
                None => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_table_contains_all_rows_and_columns() {
        let mut ratios = BTreeMap::new();
        ratios.insert(MetricKind::Ipc, 0.98);
        ratios.insert(MetricKind::L1dHitRate, 1.02);
        let rows = vec![("astar".to_owned(), ratios, 10)];
        let table = format_ratio_table("Fig. 2", &rows, &[MetricKind::Ipc, MetricKind::L1dHitRate]);
        assert!(table.contains("Fig. 2"));
        assert!(table.contains("astar"));
        assert!(table.contains("0.980"));
        assert!(table.contains("1.020"));
        assert!(table.contains("10"));
        assert!(table.contains("IPC"));
        assert!(table.contains("DC Hit Rate"));
    }

    #[test]
    fn series_pads_shorter_columns() {
        let a = [1.0, 0.8, 0.7];
        let b = [1.1];
        let s = format_series("Fig. 5", &[("GD", &a), ("GA", &b)], Some(("minimum", 0.5)));
        assert!(s.contains("reference (minimum): 0.5000"));
        assert!(s.lines().count() >= 6);
        assert!(s.contains('-'));
        assert!(s.contains("0.7000"));
    }
}
