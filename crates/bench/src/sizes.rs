//! Experiment sizing: full runs vs. the fast smoke-test mode.

/// Knob sizes shared by every experiment binary.
///
/// The paper's evaluation uses 100 M-instruction simpoints and 10 M-dynamic-
/// instruction test cases on Gem5; those are far too slow for a bundled
/// software model run inside CI, so the default sizes below are scaled down
/// (the shapes of the results are preserved — see EXPERIMENTS.md).  Setting
/// the environment variable `MICROGRAD_FAST=1` shrinks everything further
/// for a quick smoke run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentSizes {
    /// Dynamic instructions per reference-application characterization.
    pub reference_len: usize,
    /// Dynamic instructions per test-case evaluation.
    pub dynamic_len: usize,
    /// Static loop size of generated test cases.
    pub loop_size: usize,
    /// Epoch budget for cloning runs.
    pub cloning_epochs: usize,
    /// Epoch budget for gradient-descent stress runs.
    pub stress_epochs_gd: usize,
    /// Epoch budget for GA stress runs (1.5× GD, as in Fig. 5).
    pub stress_epochs_ga: usize,
    /// Brute-force grid levels per knob.
    pub brute_levels: usize,
    /// Brute-force evaluation cap.
    pub brute_max_evals: usize,
    /// Seed shared by the experiments.
    pub seed: u64,
    /// Batch-evaluation worker setting handed to the platform
    /// (`None` = sequential, `Some(0)` = all available cores).  Results are
    /// bit-identical across settings, so experiments default to using every
    /// core.
    pub parallelism: Option<usize>,
}

impl ExperimentSizes {
    /// The default (full) experiment sizes.
    #[must_use]
    pub fn full() -> Self {
        ExperimentSizes {
            reference_len: 60_000,
            dynamic_len: 25_000,
            loop_size: 300,
            cloning_epochs: 40,
            stress_epochs_gd: 30,
            stress_epochs_ga: 45,
            brute_levels: 2,
            brute_max_evals: 4096,
            seed: 7,
            parallelism: Some(0),
        }
    }

    /// Reduced sizes for quick smoke runs (`MICROGRAD_FAST=1`).
    #[must_use]
    pub fn fast() -> Self {
        ExperimentSizes {
            reference_len: 12_000,
            dynamic_len: 6_000,
            loop_size: 120,
            cloning_epochs: 8,
            stress_epochs_gd: 8,
            stress_epochs_ga: 12,
            brute_levels: 2,
            brute_max_evals: 256,
            seed: 7,
            parallelism: Some(0),
        }
    }

    /// Chooses between [`full`](Self::full) and [`fast`](Self::fast) based
    /// on the `MICROGRAD_FAST` environment variable.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MICROGRAD_FAST") {
            Ok(v) if v != "0" && !v.is_empty() => Self::fast(),
            _ => Self::full(),
        }
    }
}

impl Default for ExperimentSizes {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_sizes_are_smaller_than_full_sizes() {
        let fast = ExperimentSizes::fast();
        let full = ExperimentSizes::full();
        assert!(fast.reference_len < full.reference_len);
        assert!(fast.dynamic_len < full.dynamic_len);
        assert!(fast.cloning_epochs < full.cloning_epochs);
        assert!(fast.stress_epochs_gd < full.stress_epochs_gd);
        assert_eq!(full, ExperimentSizes::default());
    }

    #[test]
    fn ga_gets_more_epochs_than_gd_as_in_fig5() {
        for sizes in [ExperimentSizes::fast(), ExperimentSizes::full()] {
            assert!(sizes.stress_epochs_ga as f64 >= sizes.stress_epochs_gd as f64 * 1.4);
        }
    }
}
