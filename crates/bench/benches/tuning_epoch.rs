//! Criterion bench: the cost of one tuning epoch under gradient descent vs
//! the GA baseline.
//!
//! This is the resource-efficiency claim behind Figs. 5/6 of the paper: a
//! GD epoch costs about `2 × knobs` platform evaluations while a GA epoch
//! costs `population size` (50) evaluations, i.e. roughly 2.5× the work for
//! the Listing 1 knob count.

use criterion::{criterion_group, criterion_main, Criterion};
use micrograd_core::tuner::{
    GaParams, GdParams, GeneticTuner, GradientDescentTuner, Tuner, TuningBudget,
};
use micrograd_core::{KnobSpace, MetricKind, SimPlatform, StressGoal, StressLoss};
use micrograd_sim::CoreConfig;

fn tuning_epoch(c: &mut Criterion) {
    let space = {
        let mut s = KnobSpace::instruction_fractions();
        s.loop_size = 150;
        s
    };
    let loss = StressLoss::new(MetricKind::Ipc, StressGoal::Minimize);
    let budget = TuningBudget::epochs(1);

    let mut group = c.benchmark_group("tuning_epoch");
    group.sample_size(10);
    group.bench_function("gradient_descent", |b| {
        b.iter(|| {
            // A fresh platform per iteration so memoization does not hide
            // the evaluation cost.
            let platform = SimPlatform::new(CoreConfig::large())
                .with_dynamic_len(10_000)
                .with_seed(1);
            let mut tuner = GradientDescentTuner::new(GdParams::default());
            tuner.tune(&platform, &space, &loss, &budget).expect("tune")
        });
    });
    group.bench_function("genetic_algorithm_table1", |b| {
        b.iter(|| {
            let platform = SimPlatform::new(CoreConfig::large())
                .with_dynamic_len(10_000)
                .with_seed(1);
            let mut tuner = GeneticTuner::new(GaParams::paper());
            tuner.tune(&platform, &space, &loss, &budget).expect("tune")
        });
    });
    // Same epochs with the batch-parallel evaluation pipeline on all
    // available cores: results are bit-identical, only wall-clock changes.
    group.bench_function("gradient_descent_parallel", |b| {
        b.iter(|| {
            let platform = SimPlatform::new(CoreConfig::large())
                .with_dynamic_len(10_000)
                .with_seed(1)
                .with_parallelism(Some(0));
            let mut tuner = GradientDescentTuner::new(GdParams::default());
            tuner.tune(&platform, &space, &loss, &budget).expect("tune")
        });
    });
    group.bench_function("genetic_algorithm_table1_parallel", |b| {
        b.iter(|| {
            let platform = SimPlatform::new(CoreConfig::large())
                .with_dynamic_len(10_000)
                .with_seed(1)
                .with_parallelism(Some(0));
            let mut tuner = GeneticTuner::new(GaParams::paper());
            tuner.tune(&platform, &space, &loss, &budget).expect("tune")
        });
    });
    group.finish();
}

criterion_group!(benches, tuning_epoch);
criterion_main!(benches);
