//! Criterion bench: end-to-end cost of a (scaled-down) stress-testing run —
//! the Fig. 5/6 workflow.

use criterion::{criterion_group, criterion_main, Criterion};
use micrograd_core::tuner::{GdParams, GradientDescentTuner};
use micrograd_core::usecase::StressTask;
use micrograd_core::{KnobSpace, SimPlatform};
use micrograd_sim::CoreConfig;

fn stress_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_convergence");
    group.sample_size(10);

    group.bench_function("performance_virus_gd_5_epochs", |b| {
        let mut space = KnobSpace::instruction_fractions();
        space.loop_size = 150;
        let task = StressTask::performance_virus(5);
        b.iter(|| {
            let platform = SimPlatform::new(CoreConfig::large())
                .with_dynamic_len(8_000)
                .with_seed(3);
            let mut tuner = GradientDescentTuner::new(GdParams::default());
            task.run(&platform, &space, &mut tuner).expect("stress run")
        });
    });

    group.bench_function("power_virus_gd_5_epochs", |b| {
        let mut space = KnobSpace::instruction_fractions();
        space.loop_size = 150;
        let task = StressTask::power_virus(5);
        b.iter(|| {
            let platform = SimPlatform::new(CoreConfig::large())
                .with_dynamic_len(8_000)
                .with_seed(3);
            let mut tuner = GradientDescentTuner::new(GdParams::default());
            task.run(&platform, &space, &mut tuner).expect("stress run")
        });
    });

    group.finish();
}

criterion_group!(benches, stress_convergence);
criterion_main!(benches);
