//! Criterion bench: sequential vs parallel batch evaluation throughput.
//!
//! Measures `ExecutionPlatform::evaluate_batch` on an epoch-shaped batch of
//! distinct generator inputs (the ladder probes of one gradient-descent
//! epoch on the Small core), comparing the sequential path against worker
//! pools of increasing size.  This is the speedup the batch-parallel
//! evaluation pipeline exists for; on a multi-core host the `workers-N`
//! variants should scale towards N× until memory bandwidth intervenes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use micrograd_codegen::GeneratorInput;
use micrograd_core::{ExecutionPlatform, KnobSpace, SimPlatform};
use micrograd_sim::CoreConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One epoch's worth of distinct evaluation inputs.
fn epoch_batch(space: &KnobSpace, count: usize) -> Vec<GeneratorInput> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    (0..count)
        .map(|_| {
            space
                .resolve(&space.random_config(&mut rng), 1)
                .expect("valid random config")
        })
        .collect()
}

fn batch_evaluation(c: &mut Criterion) {
    let space = {
        let mut s = KnobSpace::instruction_fractions();
        s.loop_size = 150;
        s
    };
    let batch = epoch_batch(&space, 24);

    let host_workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut worker_counts = vec![1usize, 2, 4];
    if !worker_counts.contains(&host_workers) {
        worker_counts.push(host_workers);
    }

    let mut group = c.benchmark_group("batch_evaluation");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            // A fresh platform per iteration so memoization does not hide
            // the evaluation cost.
            let platform = SimPlatform::new(CoreConfig::small())
                .with_dynamic_len(10_000)
                .with_seed(1);
            platform.evaluate_batch(&batch)
        });
    });
    for workers in worker_counts {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let platform = SimPlatform::new(CoreConfig::small())
                        .with_dynamic_len(10_000)
                        .with_seed(1)
                        .with_parallelism(Some(workers));
                    platform.evaluate_batch(&batch)
                });
            },
        );
    }

    // Duplicate-heavy batch: every distinct input appears 16×, the shape a
    // gradient ladder produces when most probes revisit the epoch base.
    // This isolates the batch dedup path (sort-based run grouping): the
    // evaluation work is constant, so differences between variants are
    // pure dedup overhead.
    let dedup_batch: Vec<GeneratorInput> = epoch_batch(&space, 6)
        .into_iter()
        .flat_map(|input| std::iter::repeat_n(input, 16))
        .collect();
    group.throughput(Throughput::Elements(dedup_batch.len() as u64));
    group.bench_function("dedup_heavy", |b| {
        b.iter(|| {
            let platform = SimPlatform::new(CoreConfig::small())
                .with_dynamic_len(10_000)
                .with_seed(1)
                .with_parallelism(Some(2));
            platform.evaluate_batch(&dedup_batch)
        });
    });
    group.finish();
}

criterion_group!(benches, batch_evaluation);
criterion_main!(benches);
