//! Criterion bench: service-layer concurrency over real sockets.
//!
//! The event-loop server's claim is that idle connections cost no
//! threads and no wakeups.  This bench pins the price that remains:
//! warm submit→fetch latency through one client against a daemon with
//! no spectators and again with 512 idle connections attached (poll(2)
//! scans the fd set linearly, so spectators add a bounded per-wakeup
//! scan — not threads), and aggregate jobs/sec with 8 concurrent
//! clients hammering warm submissions.  All jobs are durable-store
//! hits, so the numbers measure the wire + reactor + scheduler path,
//! not tuning runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use micrograd_core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, StressGoal, TunerKind, UseCaseConfig,
};
use micrograd_service::{Client, ResultStore, Scheduler, SchedulerConfig, Server, ServerConfig};
use std::net::TcpStream;
use std::path::Path;

fn tiny_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 1,
        dynamic_len: 2_000,
        reference_len: 2_000,
        seed,
        ..FrameworkConfig::default()
    }
}

fn job_batch() -> Vec<FrameworkConfig> {
    (0..4).map(tiny_config).collect()
}

/// Executes the batch once into `dir`, so every benched submission is a
/// durable-store hit.
fn warm_store(dir: &Path, jobs: &[FrameworkConfig]) {
    let _ = std::fs::remove_dir_all(dir);
    let store = ResultStore::open(dir).expect("scratch store opens");
    let scheduler = Scheduler::new(
        SchedulerConfig {
            workers: 0,
            queue_capacity: jobs.len(),
            ..SchedulerConfig::default()
        },
        store,
    );
    for config in jobs {
        scheduler
            .submit(config.clone(), 0)
            .expect("queue has capacity");
    }
    while scheduler.step() {}
}

fn start_server(store_dir: &Path) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 64,
        store_dir: Some(store_dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// One warm submit→fetch round-trip per job in the batch.
fn pump(client: &mut Client, jobs: &[FrameworkConfig]) -> usize {
    let mut fetched = 0;
    for config in jobs {
        let receipt = client.submit(config, 0).expect("submit accepted");
        client.fetch(receipt.job).expect("warm job fetches");
        fetched += 1;
    }
    fetched
}

fn service_concurrency(c: &mut Criterion) {
    let jobs = job_batch();
    let store_dir =
        std::env::temp_dir().join(format!("micrograd-bench-conc-{}", std::process::id()));
    warm_store(&store_dir, &jobs);

    let mut group = c.benchmark_group("service_concurrency");
    group.sample_size(10);

    // One active client, an otherwise empty daemon: the latency floor.
    {
        let server = start_server(&store_dir);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        group.throughput(Throughput::Elements(jobs.len() as u64));
        group.bench_function("submit_fetch_warm", |b| {
            b.iter(|| pump(&mut client, &jobs));
        });
        drop(client);
        server.shutdown();
    }

    // The same active client with 512 idle connections parked on the
    // daemon: spectators may add poll(2)'s linear fd scan, nothing more.
    {
        let server = start_server(&store_dir);
        let idle: Vec<TcpStream> = (0..512)
            .map(|_| TcpStream::connect(server.local_addr()).expect("idle connect"))
            .collect();
        let mut client = Client::connect(server.local_addr()).expect("connect");
        group.throughput(Throughput::Elements(jobs.len() as u64));
        group.bench_function("submit_fetch_warm_512_idle", |b| {
            b.iter(|| pump(&mut client, &jobs));
        });
        drop(client);
        drop(idle);
        server.shutdown();
    }

    // Eight concurrent clients pipelining warm submissions: aggregate
    // jobs/sec through one daemon.
    {
        let server = start_server(&store_dir);
        let addr = server.local_addr();
        let mut clients: Vec<Client> = (0..8)
            .map(|_| Client::connect(addr).expect("connect"))
            .collect();
        group.throughput(Throughput::Elements((jobs.len() * clients.len()) as u64));
        group.bench_function("warm_jobs_8_clients", |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = clients
                        .iter_mut()
                        .map(|client| scope.spawn(|| pump(client, &jobs)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("client thread"))
                        .sum::<usize>()
                })
            });
        });
        drop(clients);
        server.shutdown();
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&store_dir);
}

criterion_group!(benches, service_concurrency);
criterion_main!(benches);
