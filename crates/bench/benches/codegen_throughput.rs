//! Criterion bench: Microprobe-like test-case synthesis and trace expansion
//! cost, per knob configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micrograd_codegen::{Generator, GeneratorInput, TraceExpander};

fn codegen_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    group.sample_size(30);
    for loop_size in [100usize, 500, 1000] {
        let input = GeneratorInput {
            loop_size,
            seed: 3,
            ..GeneratorInput::default()
        };
        group.bench_with_input(
            BenchmarkId::new("generate", loop_size),
            &input,
            |b, input| {
                let generator = Generator::new();
                b.iter(|| generator.generate(input).expect("generate"));
            },
        );
    }
    let input = GeneratorInput {
        loop_size: 500,
        seed: 3,
        ..GeneratorInput::default()
    };
    let tc = Generator::new().generate(&input).expect("generate");
    for dynamic_len in [10_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("expand_trace", dynamic_len),
            &dynamic_len,
            |b, &len| {
                b.iter(|| TraceExpander::new(len, 3).expand(&tc));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, codegen_throughput);
criterion_main!(benches);
