//! Criterion bench: simulator throughput (dynamic instructions per second)
//! on both Table II cores.  This is the substrate cost that every tuning
//! evaluation pays, so it bounds how fast the whole framework can iterate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use micrograd_codegen::{Generator, GeneratorInput, TraceExpander};
use micrograd_sim::{CoreConfig, Simulator};

fn simulator_throughput(c: &mut Criterion) {
    let input = GeneratorInput {
        loop_size: 300,
        seed: 1,
        ..GeneratorInput::default()
    };
    let tc = Generator::new().generate(&input).expect("generate");
    let trace = TraceExpander::new(50_000, 1).expand(&tc);

    let mut group = c.benchmark_group("simulator_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    for config in [CoreConfig::small(), CoreConfig::large()] {
        let name = config.name.clone();
        let sim = Simulator::new(config);
        group.bench_with_input(BenchmarkId::new("run", name), &trace, |b, trace| {
            b.iter(|| sim.run(trace));
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
