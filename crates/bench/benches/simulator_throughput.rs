//! Criterion bench: simulator throughput (dynamic instructions per second)
//! on both Table II cores.  This is the substrate cost that every tuning
//! evaluation pays, so it bounds how fast the whole framework can iterate.
//!
//! Two groups are tracked across PRs, both annotated with
//! `Throughput::Elements` so criterion reports instructions/second:
//!
//! * `simulator_throughput` — the materialized baseline (`run` over a
//!   pre-expanded 50 k trace) next to the fused streaming path
//!   (`run_source` over a `StreamingExpander`, which pays expansion *and*
//!   simulation in the measured region yet needs no trace allocation);
//! * `simulator_throughput_streaming` — a large-`dynamic_len` variant
//!   (2 M instructions) that is only affordable because the streaming path
//!   runs in O(window) memory; the materialized two-pass equivalent is
//!   benched alongside it for the fused-vs-two-pass comparison.
//! * `prefetcher_training` — the demand-miss training path of the stride
//!   prefetcher in isolation, guarding the indexed-table rewrite (the old
//!   linear `find` + `Vec::remove(0)` was O(capacity) per miss).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use micrograd_codegen::{Generator, GeneratorInput, TestCase, TraceExpander};
use micrograd_sim::{CoreConfig, PrefetchConfig, Simulator, StridePrefetcher};

fn testcase() -> TestCase {
    let input = GeneratorInput {
        loop_size: 300,
        seed: 1,
        ..GeneratorInput::default()
    };
    Generator::new().generate(&input).expect("generate")
}

fn simulator_throughput(c: &mut Criterion) {
    let tc = testcase();
    let expander = TraceExpander::new(50_000, 1);
    let trace = expander.expand(&tc);

    let mut group = c.benchmark_group("simulator_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    for config in [CoreConfig::small(), CoreConfig::large()] {
        let name = config.name.clone();
        let mut sim = Simulator::new(config);
        group.bench_with_input(BenchmarkId::new("run", &name), &trace, |b, trace| {
            b.iter(|| sim.run(trace));
        });
        group.bench_function(BenchmarkId::new("run_source", &name), |b| {
            b.iter(|| sim.run_source(&mut expander.stream(&tc)));
        });
    }
    group.finish();
}

fn simulator_throughput_streaming(c: &mut Criterion) {
    const STREAM_LEN: usize = 2_000_000;
    let tc = testcase();
    let expander = TraceExpander::new(STREAM_LEN, 1);

    let mut group = c.benchmark_group("simulator_throughput_streaming");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.sample_size(10);
    let mut sim = Simulator::new(CoreConfig::small());
    // Fused: expansion streams straight into the simulator, O(window) memory.
    group.bench_function("streaming", |b| {
        b.iter(|| sim.run_source(&mut expander.stream(&tc)));
    });
    // Two-pass: materialize the 2 M-entry trace, then simulate it.
    group.bench_function("materialized", |b| {
        b.iter(|| sim.run(&expander.expand(&tc)));
    });
    group.finish();
}

fn prefetcher_training(c: &mut Criterion) {
    const OBSERVATIONS: usize = 100_000;
    let mut group = c.benchmark_group("prefetcher_training");
    group.throughput(Throughput::Elements(OBSERVATIONS as u64));
    group.sample_size(20);
    // Worst case for a linear table: more hot PCs than entries, so every
    // miss on a fresh PC pays an eviction; strided addresses per PC keep
    // the stride detector training.
    group.bench_function("capacity_thrash", |b| {
        b.iter(|| {
            let mut p = StridePrefetcher::new(PrefetchConfig {
                enabled: true,
                degree: 2,
            });
            let mut issued = 0u64;
            for i in 0..OBSERVATIONS as u64 {
                let pc = 0x40_0000 + (i % 96) * 4;
                let addr = 0x2000_0000 + (i % 96) * 0x1_0000 + (i / 96) * 0x100;
                issued += p.observe(pc, addr, 64).len() as u64;
            }
            issued
        });
    });
    // Steady state: a handful of streaming PCs that stay resident.
    group.bench_function("resident_streams", |b| {
        b.iter(|| {
            let mut p = StridePrefetcher::new(PrefetchConfig {
                enabled: true,
                degree: 2,
            });
            let mut issued = 0u64;
            for i in 0..OBSERVATIONS as u64 {
                let pc = 0x40_0000 + (i % 8) * 4;
                let addr = 0x2000_0000 + (i % 8) * 0x10_0000 + (i / 8) * 0x40;
                issued += p.observe(pc, addr, 64).len() as u64;
            }
            issued
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    simulator_throughput,
    simulator_throughput_streaming,
    prefetcher_training
);
criterion_main!(benches);
