//! Criterion bench: record-path cost of the observability layer, on and
//! off.  The design contract (`docs/observability.md`) is that a disabled
//! recorder is a branch and an enabled one a handful of relaxed atomics;
//! this group keeps both claims measured.
//!
//! * `obs_overhead` — the primitive record paths: counter increments,
//!   histogram records across the bucket range, and trace-sink event
//!   records with the sink enabled vs disabled;
//! * `obs_overhead_sim` — a full simulator run with profiling off vs
//!   sampling every 4096 retired instructions, the end-to-end form of the
//!   same question (the delta is the profiler's cost inside the hot loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use micrograd_codegen::{Generator, GeneratorInput, TestCase, TraceExpander};
use micrograd_obs::{Registry, Stage, TraceSink};
use micrograd_sim::{CoreConfig, Simulator};
use std::hint::black_box;

fn testcase() -> TestCase {
    let input = GeneratorInput {
        loop_size: 300,
        seed: 1,
        ..GeneratorInput::default()
    };
    Generator::new().generate(&input).expect("generate")
}

fn obs_overhead(c: &mut Criterion) {
    const BATCH: u64 = 1_000;
    let registry = Registry::new();
    let counter = registry.counter("bench_events_total", "bench counter");
    let histogram = registry.histogram("bench_latency_us", "bench histogram");
    let enabled = TraceSink::new();
    let disabled = TraceSink::disabled();

    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                counter.inc();
            }
        });
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            // Sweep the value range so every bucket tier (linear head,
            // log-linear middle, overflow) stays on the measured path.
            for i in 0..BATCH {
                histogram.record(black_box(i.wrapping_mul(2_654_435_761) % 10_000_000));
            }
        });
    });
    for (name, sink) in [("enabled", &enabled), ("disabled", &disabled)] {
        group.bench_with_input(BenchmarkId::new("trace_record", name), sink, |b, sink| {
            b.iter(|| {
                for i in 0..BATCH {
                    sink.record(black_box(7), Stage::Epoch, i);
                }
            });
        });
    }
    group.finish();
}

fn obs_overhead_sim(c: &mut Criterion) {
    const DYNAMIC_LEN: usize = 50_000;
    let tc = testcase();
    let expander = TraceExpander::new(DYNAMIC_LEN, 1);
    let trace = expander.expand(&tc);

    let mut group = c.benchmark_group("obs_overhead_sim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    let mut plain = Simulator::new(CoreConfig::small());
    group.bench_function("profile_off", |b| {
        b.iter(|| plain.run(&trace));
    });
    let mut profiled = Simulator::new(CoreConfig::small());
    profiled.set_profiling(4_096);
    group.bench_function("profile_on", |b| {
        b.iter(|| profiled.run(&trace));
    });
    group.finish();
}

criterion_group!(benches, obs_overhead, obs_overhead_sim);
criterion_main!(benches);
