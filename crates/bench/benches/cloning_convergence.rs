//! Criterion bench: end-to-end cost of a (scaled-down) workload-cloning run
//! — the Fig. 2 workflow for a single benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micrograd_core::tuner::{GdParams, GradientDescentTuner};
use micrograd_core::usecase::CloningTask;
use micrograd_core::{ExecutionPlatform, KnobSpace, SimPlatform};
use micrograd_sim::CoreConfig;
use micrograd_workloads::{ApplicationTraceGenerator, Benchmark};

fn cloning_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("cloning_convergence");
    group.sample_size(10);
    for benchmark in [Benchmark::Bzip2, Benchmark::Mcf] {
        group.bench_with_input(
            BenchmarkId::new("gd_5_epochs", benchmark.name()),
            &benchmark,
            |b, benchmark| {
                let platform = SimPlatform::new(CoreConfig::large())
                    .with_dynamic_len(8_000)
                    .with_seed(5);
                let mut space = KnobSpace::full();
                space.loop_size = 150;
                let trace =
                    ApplicationTraceGenerator::new(15_000, 5).generate(&benchmark.profile());
                let target = platform.measure_trace(&trace);
                let task = CloningTask {
                    max_epochs: 5,
                    ..CloningTask::default()
                };
                b.iter(|| {
                    let warm = CloningTask::warm_start_config(&space, &target);
                    let mut tuner =
                        GradientDescentTuner::new(GdParams::default()).with_initial_config(warm);
                    task.run(&platform, &space, benchmark.name(), &target, &mut tuner)
                        .expect("cloning run")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cloning_convergence);
criterion_main!(benches);
