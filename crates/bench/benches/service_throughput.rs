//! Criterion bench: service-layer throughput.
//!
//! Two costs gate how much traffic one `microgradd` can absorb: the wire
//! protocol (every request/response crosses `encode_line`/`decode_*`) and
//! the scheduler's submit→execute→fetch pipeline.  The protocol group
//! measures encode/decode round-trips for the hot message shapes (a submit
//! request and a full report response); the scheduler group measures
//! jobs/sec through a workerless (inline-stepped) scheduler against a cold
//! store — every job pays a real tuning run — and against a warm durable
//! store, where every submission is answered from disk without executing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use micrograd_core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, MicroGrad, StressGoal, TunerKind,
    UseCaseConfig,
};
use micrograd_service::{
    decode_request, decode_response, encode_line, Request, RequestBody, Response, ResponseBody,
    ResultStore, Scheduler, SchedulerConfig,
};

fn tiny_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 1,
        dynamic_len: 2_000,
        reference_len: 2_000,
        seed,
        ..FrameworkConfig::default()
    }
}

/// The batch of distinct jobs one scheduler iteration pushes through.
fn job_batch() -> Vec<FrameworkConfig> {
    (0..4).map(tiny_config).collect()
}

fn protocol_roundtrip(c: &mut Criterion) {
    let submit = Request::new(RequestBody::Submit {
        config: tiny_config(1),
        priority: 3,
        deadline_ms: None,
    });
    let submit_line = encode_line(&submit).expect("submit encodes");

    // A real report response, so the decode side sees production-shaped
    // payloads (nested reports, float-heavy metrics).
    let output = MicroGrad::new(tiny_config(1))
        .run()
        .expect("tiny stress run succeeds");
    let report = Response::new(ResponseBody::Report { job: 1, output });
    let report_line = encode_line(&report).expect("report encodes");

    let mut group = c.benchmark_group("service_protocol");
    group.throughput(Throughput::Bytes(submit_line.len() as u64));
    group.bench_function("submit_encode_decode", |b| {
        b.iter(|| {
            let line = encode_line(&submit).expect("submit encodes");
            decode_request(&line).expect("round-trips")
        });
    });
    group.throughput(Throughput::Bytes(report_line.len() as u64));
    group.bench_function("report_encode_decode", |b| {
        b.iter(|| {
            let line = encode_line(&report).expect("report encodes");
            decode_response(&line).expect("round-trips")
        });
    });
    group.finish();
}

/// Drains a workerless scheduler inline: submit every config, step until
/// the queue is empty, return the completed-job count.
fn run_batch(scheduler: &Scheduler, jobs: &[FrameworkConfig]) -> u64 {
    for config in jobs {
        scheduler
            .submit(config.clone(), 0)
            .expect("queue has capacity");
    }
    while scheduler.step() {}
    scheduler.stats().jobs_completed
}

fn scheduler_throughput(c: &mut Criterion) {
    let jobs = job_batch();

    // Warm store: one execution of every job persisted to disk up front;
    // the benched submissions are then pure durable-store hits.
    let warm_dir =
        std::env::temp_dir().join(format!("micrograd-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warm_dir);
    {
        let store = ResultStore::open(&warm_dir).expect("scratch store opens");
        let scheduler = Scheduler::new(
            SchedulerConfig {
                workers: 0,
                queue_capacity: jobs.len(),
                ..SchedulerConfig::default()
            },
            store,
        );
        assert_eq!(run_batch(&scheduler, &jobs), jobs.len() as u64);
    }

    let mut group = c.benchmark_group("service_scheduler");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    group.bench_function("jobs_cold_store", |b| {
        b.iter(|| {
            // A fresh in-memory store per iteration: every job executes.
            let scheduler = Scheduler::new(
                SchedulerConfig {
                    workers: 0,
                    queue_capacity: jobs.len(),
                    ..SchedulerConfig::default()
                },
                ResultStore::in_memory(),
            );
            run_batch(&scheduler, &jobs)
        });
    });
    group.bench_function("jobs_warm_store", |b| {
        b.iter(|| {
            // A fresh scheduler over the pre-populated directory: every
            // job is answered from disk (the restarted-daemon fast path).
            let scheduler = Scheduler::new(
                SchedulerConfig {
                    workers: 0,
                    queue_capacity: jobs.len(),
                    ..SchedulerConfig::default()
                },
                ResultStore::open(&warm_dir).expect("scratch store opens"),
            );
            run_batch(&scheduler, &jobs)
        });
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&warm_dir);
}

criterion_group!(benches, protocol_roundtrip, scheduler_throughput);
criterion_main!(benches);
