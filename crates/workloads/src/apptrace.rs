//! Expanding an application model into a dynamic trace.

use crate::{ApplicationProfile, PhaseProfile};
use micrograd_codegen::{collect_trace, DynamicInstr, Trace, TraceSource};
use micrograd_isa::{InstrClass, Instruction, MemAccess, Opcode, Reg};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Generates dynamic traces from [`ApplicationProfile`]s.
///
/// The generator builds, per phase, a static code region of
/// `code_blocks × block_size` instructions (each block ending in a
/// conditional branch) whose opcode mix follows the phase's class mix, and
/// then walks those blocks for the phase's share of the dynamic budget:
///
/// * block selection follows a skewed (hot/cold) distribution, so different
///   phases touch different parts of the code — which is what gives
///   SimPoint-style interval clustering something to find;
/// * data addresses walk a per-phase circular buffer of the phase's
///   footprint with its dominant stride, with temporal re-use injected at
///   the configured rate;
/// * conditional branch directions are stable except for the configured
///   `branch_entropy` fraction, which is random.
///
/// The result is a [`Trace`] directly consumable by
/// [`micrograd_sim::Simulator`](https://docs.rs/micrograd-sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplicationTraceGenerator {
    dynamic_len: usize,
    seed: u64,
}

#[derive(Debug, Clone)]
struct PhaseCode {
    /// Index of the first static instruction of each basic block.
    block_starts: Vec<usize>,
    /// Number of instructions per block (last one is the block's branch).
    block_len: usize,
    /// Hot/cold selection weights per block.
    block_weights: Vec<f64>,
}

impl ApplicationTraceGenerator {
    /// Creates a generator producing `dynamic_len` instructions with `seed`.
    #[must_use]
    pub fn new(dynamic_len: usize, seed: u64) -> Self {
        ApplicationTraceGenerator { dynamic_len, seed }
    }

    /// Number of dynamic instructions generated.
    #[must_use]
    pub fn dynamic_len(&self) -> usize {
        self.dynamic_len
    }

    /// Generates a materialized trace for `profile`.
    ///
    /// Drains the streaming cursor of
    /// [`stream`](ApplicationTraceGenerator::stream), so the two paths are
    /// bit-identical by construction.  Characterization code that only
    /// needs metrics should feed the stream to the simulator directly.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no phases.
    #[must_use]
    pub fn generate(&self, profile: &ApplicationProfile) -> Trace {
        collect_trace(&mut self.stream(profile))
    }

    /// Creates a streaming [`TraceSource`] over `profile`.
    ///
    /// The source walks the same phase schedule, hot/cold block selection
    /// and per-phase address streams as
    /// [`generate`](ApplicationTraceGenerator::generate) — bit-identical
    /// output — but yields instructions on demand, so a multi-phase cloning
    /// target can be characterized at realistic (100 M-instruction) lengths
    /// in O(static code) memory.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no phases.
    #[must_use]
    pub fn stream(&self, profile: &ApplicationProfile) -> ApplicationTraceSource {
        assert!(
            !profile.phases.is_empty(),
            "application profile has no phases"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xA991_CA7E);
        let mut statics: Vec<Instruction> = Vec::new();
        let mut phase_codes: Vec<PhaseCode> = Vec::new();

        for (phase_idx, phase) in profile.phases.iter().enumerate() {
            let code = self.build_phase_code(phase, phase_idx, &mut statics, &mut rng);
            phase_codes.push(code);
        }

        let weights = profile.normalized_weights();
        let phase_count = profile.phases.len();
        let mut source = ApplicationTraceSource {
            statics,
            phases: profile.phases.clone(),
            phase_codes,
            weights,
            rng,
            stream_pos: vec![0; phase_count],
            recent: vec![Vec::new(); phase_count],
            dynamic_len: self.dynamic_len,
            emitted: 0,
            phase_idx: 0,
            phase_end: 0,
            chooser: None,
            block_start: 0,
            block_offset: usize::MAX,
        };
        source.enter_phase(0);
        source
    }

    fn next_address(
        mem: &MemAccess,
        phase: &PhaseProfile,
        pos: &mut u64,
        recent: &mut Vec<u64>,
        rng: &mut ChaCha8Rng,
    ) -> u64 {
        let reuse = phase.temporal_reuse.clamp(0.0, 1.0);
        let addr = if !recent.is_empty() && rng.gen::<f64>() < reuse {
            recent[rng.gen_range(0..recent.len())]
        } else {
            let a = mem.address_at(*pos);
            *pos += 1;
            a
        };
        recent.push(addr);
        if recent.len() > 32 {
            recent.remove(0);
        }
        addr
    }

    fn build_phase_code(
        &self,
        phase: &PhaseProfile,
        phase_idx: usize,
        statics: &mut Vec<Instruction>,
        rng: &mut ChaCha8Rng,
    ) -> PhaseCode {
        let mix = phase.normalized_mix();
        let classes: Vec<InstrClass> = InstrClass::ALL.to_vec();
        let class_weights: Vec<f64> = classes.iter().map(|c| mix[c].max(1e-6)).collect();
        let class_chooser = WeightedIndex::new(&class_weights).expect("positive class weights");

        let block_len = phase.block_size.max(3);
        let pc_base = 0x0040_0000 + (phase_idx as u64) * 0x0100_0000;
        let footprint = phase.data_footprint_kb.max(1) * 1024;
        let data_base = 0x2000_0000 + (phase_idx as u64) * 0x1000_0000;

        let mut block_starts = Vec::with_capacity(phase.code_blocks);
        let mut recent_int: Vec<Reg> = Vec::new();
        let mut recent_fp: Vec<Reg> = Vec::new();
        let mut int_rr = 0u8;
        let mut fp_rr = 0u8;
        let dd = phase.dependency_distance.max(1) as usize;

        let pick_src = |recent: &Vec<Reg>, fallback: Reg| -> Reg {
            if recent.len() >= dd {
                recent[recent.len() - dd]
            } else {
                recent.first().copied().unwrap_or(fallback)
            }
        };

        for _block in 0..phase.code_blocks.max(1) {
            let start = statics.len();
            block_starts.push(start);
            for slot in 0..block_len {
                let pc = pc_base + (statics.len() as u64) * 4;
                let is_last = slot + 1 == block_len;
                let class = if is_last {
                    InstrClass::Branch
                } else {
                    classes[class_chooser.sample(rng)]
                };
                let reps = Opcode::representatives(class);
                let opcode = reps[rng.gen_range(0..reps.len())];
                let mut instr = match class {
                    InstrClass::Integer => {
                        let dest = Reg::x(6 + (int_rr % 20));
                        int_rr = int_rr.wrapping_add(1);
                        let s1 = pick_src(&recent_int, Reg::x(5));
                        let s2 = pick_src(&recent_int, Reg::x(5));
                        let i = Instruction::rrr(opcode, dest, s1, s2);
                        recent_int.push(dest);
                        i
                    }
                    InstrClass::Float => {
                        let dest = Reg::f(6 + (fp_rr % 20));
                        fp_rr = fp_rr.wrapping_add(1);
                        let s1 = pick_src(&recent_fp, Reg::f(5));
                        let s2 = pick_src(&recent_fp, Reg::f(5));
                        let i = Instruction::rrr(opcode, dest, s1, s2);
                        recent_fp.push(dest);
                        i
                    }
                    InstrClass::Branch => {
                        let s1 = pick_src(&recent_int, Reg::x(5));
                        Instruction::branch(
                            if is_last { Opcode::Bne } else { opcode },
                            s1,
                            Reg::ZERO,
                            8,
                        )
                    }
                    InstrClass::Load => {
                        let dest = Reg::x(6 + (int_rr % 20));
                        int_rr = int_rr.wrapping_add(1);
                        let mem = MemAccess {
                            stream: phase_idx as u32,
                            base: data_base,
                            stride: phase.stride_bytes.max(1),
                            footprint,
                            offset: 0,
                        };
                        let i = Instruction::load(Opcode::Ld, dest, Reg::x(10), mem);
                        recent_int.push(dest);
                        i
                    }
                    InstrClass::Store => {
                        let data = pick_src(&recent_int, Reg::x(5));
                        let mem = MemAccess {
                            stream: phase_idx as u32,
                            base: data_base,
                            stride: phase.stride_bytes.max(1),
                            footprint,
                            offset: 0,
                        };
                        Instruction::store(Opcode::Sd, data, Reg::x(10), mem)
                    }
                };
                instr.set_address(pc);
                if instr.opcode().is_conditional_branch() {
                    instr.set_branch_taken_prob(phase.branch_entropy.clamp(0.0, 1.0));
                }
                statics.push(instr);
            }
            // keep dependency history bounded
            if recent_int.len() > 64 {
                let excess = recent_int.len() - 64;
                recent_int.drain(0..excess);
            }
            if recent_fp.len() > 64 {
                let excess = recent_fp.len() - 64;
                recent_fp.drain(0..excess);
            }
        }

        // Hot/cold block weights: Zipf-like skew so a handful of blocks
        // dominate, as in real programs.
        let block_weights: Vec<f64> = (0..block_starts.len())
            .map(|i| 1.0 / (i as f64 + 1.0))
            .collect();

        PhaseCode {
            block_starts,
            block_len,
            block_weights,
        }
    }
}

/// A streaming [`TraceSource`] over an [`ApplicationProfile`].
///
/// Created by [`ApplicationTraceGenerator::stream`].  The cursor owns the
/// static phase code (built eagerly — it is small) and walks the phases'
/// dynamic schedule on demand: memory is O(static code + re-use windows),
/// independent of the dynamic length, and the emitted stream is
/// bit-identical to [`ApplicationTraceGenerator::generate`].
#[derive(Debug, Clone)]
pub struct ApplicationTraceSource {
    statics: Vec<Instruction>,
    phases: Vec<PhaseProfile>,
    phase_codes: Vec<PhaseCode>,
    weights: Vec<f64>,
    rng: ChaCha8Rng,
    /// Per-phase data-stream positions and recent addresses for reuse.
    stream_pos: Vec<u64>,
    recent: Vec<Vec<u64>>,
    dynamic_len: usize,
    emitted: usize,
    phase_idx: usize,
    /// Dynamic-instruction count at which the current phase ends.
    phase_end: usize,
    chooser: Option<WeightedIndex>,
    block_start: usize,
    /// Offset of the next instruction within the current block;
    /// `>= block_len` means a fresh block must be sampled.
    block_offset: usize,
}

impl ApplicationTraceSource {
    /// Index of the phase currently being played.
    #[must_use]
    pub fn phase_index(&self) -> usize {
        self.phase_idx
    }

    fn enter_phase(&mut self, idx: usize) {
        self.phase_idx = idx;
        self.phase_end = if idx + 1 == self.phases.len() {
            self.dynamic_len
        } else {
            let budget = (self.dynamic_len as f64 * self.weights[idx]).round() as usize;
            (self.emitted + budget).min(self.dynamic_len)
        };
        self.chooser = Some(
            WeightedIndex::new(&self.phase_codes[idx].block_weights)
                .expect("block weights are positive"),
        );
        self.block_offset = usize::MAX;
    }
}

impl TraceSource for ApplicationTraceSource {
    fn statics(&self) -> &[Instruction] {
        &self.statics
    }

    fn next_dynamic(&mut self) -> Option<DynamicInstr> {
        if self.emitted >= self.dynamic_len {
            return None;
        }
        // Skip any phases whose dynamic budget is already spent.
        while self.emitted >= self.phase_end {
            if self.phase_idx + 1 >= self.phases.len() {
                return None;
            }
            let next = self.phase_idx + 1;
            self.enter_phase(next);
        }
        let block_len = self.phase_codes[self.phase_idx].block_len;
        if self.block_offset >= block_len {
            let block = self
                .chooser
                .as_ref()
                .expect("phase entered")
                .sample(&mut self.rng);
            self.block_start = self.phase_codes[self.phase_idx].block_starts[block];
            self.block_offset = 0;
        }
        let idx = self.block_start + self.block_offset;
        self.block_offset += 1;
        let phase = &self.phases[self.phase_idx];
        let instr = &self.statics[idx];
        let mem_addr = instr.mem().map(|m| {
            ApplicationTraceGenerator::next_address(
                m,
                phase,
                &mut self.stream_pos[self.phase_idx],
                &mut self.recent[self.phase_idx],
                &mut self.rng,
            )
        });
        let taken = if instr.opcode().is_conditional_branch() {
            Some(if self.rng.gen::<f64>() < phase.branch_entropy {
                self.rng.gen::<bool>()
            } else {
                // stable direction per static branch
                idx.is_multiple_of(2)
            })
        } else {
            None
        };
        self.emitted += 1;
        Some(DynamicInstr {
            static_index: idx as u32,
            pc: instr.address(),
            mem_addr,
            taken,
        })
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.dynamic_len - self.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn trace_has_requested_length() {
        for len in [1usize, 100, 10_000, 33_333] {
            let trace =
                ApplicationTraceGenerator::new(len, 1).generate(&Benchmark::Astar.profile());
            assert_eq!(trace.len(), len);
        }
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        for benchmark in [Benchmark::Mcf, Benchmark::Gcc, Benchmark::Hmmer] {
            let profile = benchmark.profile();
            let generator = ApplicationTraceGenerator::new(25_000, 9);
            let materialized = generator.generate(&profile);
            let mut stream = generator.stream(&profile);
            assert_eq!(stream.remaining(), Some(25_000));
            let streamed = micrograd_codegen::collect_trace(&mut stream);
            assert_eq!(materialized, streamed, "{benchmark:?}");
            assert_eq!(stream.remaining(), Some(0));
        }
    }

    #[test]
    fn stream_reports_phase_progress() {
        let profile = Benchmark::Gcc.profile();
        assert!(profile.phases.len() > 1, "gcc model should be multi-phase");
        let mut stream = ApplicationTraceGenerator::new(20_000, 3).stream(&profile);
        assert_eq!(stream.phase_index(), 0);
        while stream.next_dynamic().is_some() {}
        assert_eq!(stream.phase_index(), profile.phases.len() - 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = Benchmark::Gcc.profile();
        let a = ApplicationTraceGenerator::new(20_000, 3).generate(&profile);
        let b = ApplicationTraceGenerator::new(20_000, 3).generate(&profile);
        let c = ApplicationTraceGenerator::new(20_000, 4).generate(&profile);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dynamic_mix_roughly_matches_profile_mix() {
        let profile = Benchmark::Hmmer.profile();
        let trace = ApplicationTraceGenerator::new(60_000, 5).generate(&profile);
        let expected = profile.aggregate_mix();
        let actual = trace.class_distribution();
        for class in micrograd_isa::InstrClass::ALL {
            let e = expected.get(&class).copied().unwrap_or(0.0);
            let a = actual.get(&class).copied().unwrap_or(0.0);
            assert!(
                (e - a).abs() < 0.12,
                "{class:?}: expected ~{e:.2}, got {a:.2}"
            );
        }
    }

    #[test]
    fn benchmarks_produce_distinct_traces() {
        let len = 30_000;
        let mcf = ApplicationTraceGenerator::new(len, 7).generate(&Benchmark::Mcf.profile());
        let hmmer = ApplicationTraceGenerator::new(len, 7).generate(&Benchmark::Hmmer.profile());
        // mcf touches far more unique data than hmmer
        let unique = |t: &Trace| {
            t.dynamics()
                .iter()
                .filter_map(|d| d.mem_addr.map(|a| a / 64))
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        assert!(unique(&mcf) > unique(&hmmer) * 4);
        // hmmer's branches are much more regular than sjeng's
        let sjeng = ApplicationTraceGenerator::new(len, 7).generate(&Benchmark::Sjeng.profile());
        let branch_bias = |t: &Trace| {
            let (mut taken, mut total) = (0u64, 0u64);
            for d in t.dynamics() {
                if let Some(tk) = d.taken {
                    total += 1;
                    if tk {
                        taken += 1;
                    }
                }
            }
            (taken as f64 / total as f64 - 0.5).abs()
        };
        assert!(branch_bias(&hmmer) > branch_bias(&sjeng) - 0.05);
    }

    #[test]
    fn addresses_stay_within_phase_footprints() {
        let profile = Benchmark::Bzip2.profile();
        let trace = ApplicationTraceGenerator::new(20_000, 9).generate(&profile);
        let max_footprint: u64 = profile
            .phases
            .iter()
            .map(|p| p.data_footprint_kb * 1024)
            .max()
            .unwrap();
        for d in trace.dynamics() {
            if let Some(addr) = d.mem_addr {
                assert!(addr >= 0x2000_0000);
                assert!(
                    addr < 0x2000_0000 + 0x1000_0000 * profile.phases.len() as u64 + max_footprint
                );
            }
        }
    }

    #[test]
    fn code_footprint_scales_with_code_blocks() {
        let big_code =
            ApplicationTraceGenerator::new(10_000, 2).generate(&Benchmark::Xalancbmk.profile());
        let small_code =
            ApplicationTraceGenerator::new(10_000, 2).generate(&Benchmark::Hmmer.profile());
        assert!(big_code.statics().len() > small_code.statics().len() * 3);
    }

    #[test]
    #[should_panic(expected = "no phases")]
    fn empty_profile_panics() {
        let profile = ApplicationProfile {
            name: "empty".into(),
            phases: vec![],
        };
        let _ = ApplicationTraceGenerator::new(100, 0).generate(&profile);
    }
}
