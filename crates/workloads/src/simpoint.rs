//! SimPoint-style phase analysis: basic-block vectors, k-means clustering
//! and representative-interval selection.
//!
//! The paper accepts "Application Simpoints … so as to generate a clone for
//! each simpoint individually".  This module reproduces the SimPoint
//! methodology at the fidelity needed for that workflow: execution is cut
//! into fixed-length intervals, each interval is summarized by a normalized
//! basic-block vector (BBV), the BBVs are clustered with k-means (k chosen
//! by a simple penalized-variance criterion), and the interval closest to
//! each centroid becomes that cluster's simpoint with a weight proportional
//! to the cluster's size.

use micrograd_codegen::Trace;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Granularity used to group static instructions into "basic blocks" for
/// BBV purposes.
const BLOCK_GRANULARITY: usize = 8;

/// A selected representative interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Simpoint {
    /// Index of the representative interval in the profiled trace.
    pub interval_index: usize,
    /// First dynamic-instruction index of the interval.
    pub start_instruction: usize,
    /// Fraction of execution this simpoint stands for.
    pub weight: f64,
    /// Cluster this simpoint represents.
    pub cluster: usize,
}

/// Result of a phase analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAnalysis {
    /// Interval length in dynamic instructions.
    pub interval_len: usize,
    /// Cluster id assigned to every interval.
    pub assignments: Vec<usize>,
    /// Selected simpoints, one per cluster, sorted by cluster id.
    pub simpoints: Vec<Simpoint>,
}

impl PhaseAnalysis {
    /// Number of clusters (phases) found.
    #[must_use]
    pub fn num_phases(&self) -> usize {
        self.simpoints.len()
    }
}

/// Computes the normalized basic-block vector of every `interval_len`-sized
/// interval of `trace`.
///
/// Returns an empty vector if the trace is shorter than one interval.
#[must_use]
pub fn interval_bbvs(trace: &Trace, interval_len: usize) -> Vec<Vec<f64>> {
    if interval_len == 0 || trace.len() < interval_len {
        return Vec::new();
    }
    let dims = trace.statics().len() / BLOCK_GRANULARITY + 1;
    let num_intervals = trace.len() / interval_len;
    let mut bbvs = Vec::with_capacity(num_intervals);
    for interval in 0..num_intervals {
        let mut v = vec![0.0f64; dims];
        let start = interval * interval_len;
        for d in &trace.dynamics()[start..start + interval_len] {
            let block = d.static_index as usize / BLOCK_GRANULARITY;
            v[block.min(dims - 1)] += 1.0;
        }
        let norm: f64 = v.iter().sum();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        bbvs.push(v);
    }
    bbvs
}

fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// K-means clustering with k-means++ seeding.
///
/// Returns `(assignments, centroids, total within-cluster variance)`.
///
/// # Panics
///
/// Panics if `k` is zero or there are fewer points than clusters.
#[must_use]
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> (Vec<usize>, Vec<Vec<f64>>, f64) {
    assert!(k > 0, "k must be positive");
    assert!(points.len() >= k, "need at least k points");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dims = points[0].len();

    // k-means++ initialization
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| distance_sq(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut threshold = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                if threshold <= *d {
                    chosen = i;
                    break;
                }
                threshold -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    for _iter in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    distance_sq(p, &centroids[a])
                        .partial_cmp(&distance_sq(p, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // recompute centroids
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let variance: f64 = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| distance_sq(p, &centroids[a]))
        .sum();
    (assignments, centroids, variance)
}

/// Runs the full SimPoint-style analysis on a trace.
///
/// `max_k` bounds the number of phases considered; the chosen `k` minimizes
/// a penalized within-cluster variance (a lightweight stand-in for
/// SimPoint's BIC criterion).
///
/// Returns `None` if the trace contains fewer than one interval.
#[must_use]
pub fn analyze(
    trace: &Trace,
    interval_len: usize,
    max_k: usize,
    seed: u64,
) -> Option<PhaseAnalysis> {
    let bbvs = interval_bbvs(trace, interval_len);
    if bbvs.is_empty() {
        return None;
    }
    let max_k = max_k.clamp(1, bbvs.len());
    type Clustering = (f64, Vec<usize>, Vec<Vec<f64>>, usize);
    let mut best: Option<Clustering> = None;
    for k in 1..=max_k {
        let (assignments, centroids, variance) = kmeans(&bbvs, k, seed.wrapping_add(k as u64));
        // Penalize extra clusters so k only grows when it buys real
        // variance reduction.
        let score = variance + 0.02 * k as f64;
        if best.as_ref().is_none_or(|(s, _, _, _)| score < *s) {
            best = Some((score, assignments, centroids, k));
        }
    }
    let (_, assignments, centroids, k) = best.expect("at least one clustering attempted");

    let mut simpoints = Vec::new();
    for (cluster, centroid) in centroids.iter().enumerate().take(k) {
        let members: Vec<usize> = assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == cluster)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let representative = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                distance_sq(&bbvs[a], centroid)
                    .partial_cmp(&distance_sq(&bbvs[b], centroid))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("cluster has members");
        simpoints.push(Simpoint {
            interval_index: representative,
            start_instruction: representative * interval_len,
            weight: members.len() as f64 / assignments.len() as f64,
            cluster,
        });
    }
    Some(PhaseAnalysis {
        interval_len,
        assignments,
        simpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationTraceGenerator, Benchmark};

    #[test]
    fn bbvs_are_normalized_and_sized() {
        let trace = ApplicationTraceGenerator::new(40_000, 1).generate(&Benchmark::Gcc.profile());
        let bbvs = interval_bbvs(&trace, 5_000);
        assert_eq!(bbvs.len(), 8);
        for v in &bbvs {
            let total: f64 = v.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn short_trace_yields_no_intervals() {
        let trace = ApplicationTraceGenerator::new(100, 1).generate(&Benchmark::Astar.profile());
        assert!(interval_bbvs(&trace, 1_000).is_empty());
        assert!(analyze(&trace, 1_000, 4, 0).is_none());
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + i as f64 * 0.001, 0.0]);
            points.push(vec![10.0 + i as f64 * 0.001, 10.0]);
        }
        let (assignments, centroids, variance) = kmeans(&points, 2, 1);
        assert_eq!(centroids.len(), 2);
        assert!(variance < 0.1);
        // points alternate cluster a, cluster b
        for pair in assignments.chunks(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn kmeans_rejects_zero_k() {
        let _ = kmeans(&[vec![0.0]], 0, 0);
    }

    #[test]
    fn analysis_weights_sum_to_one() {
        let trace =
            ApplicationTraceGenerator::new(60_000, 3).generate(&Benchmark::Xalancbmk.profile());
        let analysis = analyze(&trace, 5_000, 5, 3).unwrap();
        let total: f64 = analysis.simpoints.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(analysis.num_phases() >= 1);
        assert_eq!(analysis.assignments.len(), 12);
        for sp in &analysis.simpoints {
            assert_eq!(sp.start_instruction, sp.interval_index * 5_000);
            assert!(sp.interval_index < analysis.assignments.len());
        }
    }

    #[test]
    fn multi_phase_application_yields_multiple_phases() {
        // gcc has three phases touching different code regions; the analysis
        // should find more than one cluster.
        let trace = ApplicationTraceGenerator::new(80_000, 11).generate(&Benchmark::Gcc.profile());
        let analysis = analyze(&trace, 4_000, 6, 11).unwrap();
        assert!(
            analysis.num_phases() >= 2,
            "expected at least 2 phases, got {}",
            analysis.num_phases()
        );
    }

    #[test]
    fn single_phase_application_tends_to_one_phase() {
        let trace =
            ApplicationTraceGenerator::new(60_000, 13).generate(&Benchmark::Hmmer.profile());
        let analysis = analyze(&trace, 5_000, 6, 13).unwrap();
        assert!(
            analysis.num_phases() <= 2,
            "hmmer is single-phase, got {}",
            analysis.num_phases()
        );
    }
}
