//! SimPoint-style phase analysis: basic-block vectors, k-means clustering
//! and representative-interval selection.
//!
//! The paper accepts "Application Simpoints … so as to generate a clone for
//! each simpoint individually".  This module reproduces the SimPoint
//! methodology at the fidelity needed for that workflow: execution is cut
//! into fixed-length intervals, each interval is summarized by a normalized
//! basic-block vector (BBV), the BBVs are clustered with k-means (k chosen
//! by a simple penalized-variance criterion), and the interval closest to
//! each centroid becomes that cluster's simpoint with a weight proportional
//! to the cluster's share of profiled instructions.
//!
//! Profiling is **streaming**: [`analyze_source`] consumes any
//! [`TraceSource`] in a single pass, so a 100 M-instruction target can be
//! phase-analyzed in O(BBV) memory without ever materializing its trace.
//! [`analyze`] is a thin adapter over [`Trace::source`] and produces a
//! bit-identical [`PhaseAnalysis`].  A trailing partial interval of at
//! least half the interval length is folded into a final (short) interval
//! so the simpoint weights account for (nearly) all profiled instructions;
//! shorter tails are dropped.  See `docs/simpoint.md` for the
//! clone-per-simpoint workflow built on top of this module.

use micrograd_codegen::{Trace, TraceSource};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Granularity used to group static instructions into "basic blocks" for
/// BBV purposes.
const BLOCK_GRANULARITY: usize = 8;

/// A selected representative interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Simpoint {
    /// Index of the representative interval in the profiled trace.
    pub interval_index: usize,
    /// First dynamic-instruction index of the interval.
    pub start_instruction: usize,
    /// Fraction of execution this simpoint stands for.
    pub weight: f64,
    /// Cluster this simpoint represents.
    pub cluster: usize,
}

/// Result of a phase analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAnalysis {
    /// Interval length in dynamic instructions.
    pub interval_len: usize,
    /// Cluster id assigned to every interval.
    pub assignments: Vec<usize>,
    /// Dynamic instructions in each interval.  Every interval spans
    /// `interval_len` instructions except possibly the last, which may be a
    /// folded tail of at least `interval_len / 2`.
    pub interval_lengths: Vec<usize>,
    /// Selected simpoints, one per cluster, sorted by cluster id.
    pub simpoints: Vec<Simpoint>,
}

impl PhaseAnalysis {
    /// Number of clusters (phases) found.
    #[must_use]
    pub fn num_phases(&self) -> usize {
        self.simpoints.len()
    }

    /// Total dynamic instructions covered by the intervals (full intervals
    /// plus a folded tail; a dropped sub-half-interval tail is excluded).
    #[must_use]
    pub fn profiled_instructions(&self) -> usize {
        self.interval_lengths.iter().sum()
    }

    /// Dynamic instructions in interval `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is out of range.
    #[must_use]
    pub fn interval_length(&self, interval: usize) -> usize {
        self.interval_lengths[interval]
    }
}

/// Computes the normalized basic-block vector of every interval of `trace`.
///
/// Thin adapter over [`interval_bbvs_source`] via [`Trace::source`];
/// returns an empty vector if no interval (not even a foldable tail) fits.
#[must_use]
pub fn interval_bbvs(trace: &Trace, interval_len: usize) -> Vec<Vec<f64>> {
    interval_bbvs_source(&mut trace.source(), interval_len).0
}

/// Streams `source` to exhaustion, computing the normalized basic-block
/// vector and instruction count of every `interval_len`-sized interval in
/// one pass — O(BBV dimensions) memory, independent of the stream length.
///
/// A trailing partial interval of at least `interval_len / 2` instructions
/// is folded into a final (short) interval so downstream weights can
/// account for it; a shorter tail is dropped.  Returns `(bbvs, lengths)`
/// with one entry per interval; both are empty if the stream is shorter
/// than half an interval or `interval_len` is zero.
pub fn interval_bbvs_source<S: TraceSource + ?Sized>(
    source: &mut S,
    interval_len: usize,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    if interval_len == 0 {
        return (Vec::new(), Vec::new());
    }
    let dims = source.statics().len() / BLOCK_GRANULARITY + 1;
    let mut bbvs = Vec::new();
    let mut lengths = Vec::new();
    let mut v = vec![0.0f64; dims];
    let mut count = 0usize;
    let mut flush = |v: &mut Vec<f64>, count: &mut usize| {
        let norm: f64 = v.iter().sum();
        if norm > 0.0 {
            for x in v.iter_mut() {
                *x /= norm;
            }
        }
        bbvs.push(std::mem::replace(v, vec![0.0f64; dims]));
        lengths.push(std::mem::take(count));
    };
    while let Some(d) = source.next_dynamic() {
        let block = d.static_index as usize / BLOCK_GRANULARITY;
        v[block.min(dims - 1)] += 1.0;
        count += 1;
        if count == interval_len {
            flush(&mut v, &mut count);
        }
    }
    // Fold a tail of at least half an interval into a final interval so its
    // instructions are represented; drop anything shorter.
    if count * 2 >= interval_len {
        flush(&mut v, &mut count);
    }
    (bbvs, lengths)
}

fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// K-means clustering with k-means++ seeding.
///
/// Returns `(assignments, centroids, total within-cluster variance)`.
///
/// # Panics
///
/// Panics if `k` is zero or there are fewer points than clusters.
#[must_use]
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> (Vec<usize>, Vec<Vec<f64>>, f64) {
    assert!(k > 0, "k must be positive");
    assert!(points.len() >= k, "need at least k points");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dims = points[0].len();

    // k-means++ initialization
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| distance_sq(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // Every remaining point coincides with an existing centroid;
            // duplicates are unavoidable.
            rng.gen_range(0..points.len())
        } else {
            // Roulette over the positive-distance points only: a
            // zero-distance point *is* an existing centroid, and picking it
            // (via the `threshold <= d` boundary at threshold 0, or the
            // old last-index fallback) would seed a duplicate centroid and
            // an empty cluster.
            let mut threshold = rng.gen::<f64>() * total;
            let mut chosen = None;
            for (i, d) in dists.iter().enumerate() {
                if *d <= 0.0 {
                    continue;
                }
                // Track the last positive-distance candidate so rounding
                // drift in the running subtraction cannot fall off the end.
                chosen = Some(i);
                if threshold <= *d {
                    break;
                }
                threshold -= d;
            }
            chosen.expect("positive total implies a positive-distance point")
        };
        centroids.push(points[next].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    for _iter in 0..50 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    distance_sq(p, &centroids[a])
                        .partial_cmp(&distance_sq(p, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // recompute centroids
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let variance: f64 = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| distance_sq(p, &centroids[a]))
        .sum();
    (assignments, centroids, variance)
}

/// Runs the full SimPoint-style analysis on a materialized trace.
///
/// Thin adapter over [`analyze_source`] via [`Trace::source`]; the two
/// paths produce bit-identical [`PhaseAnalysis`] results (proved across
/// all eight benchmark models in `tests/determinism.rs`).
#[must_use]
pub fn analyze(
    trace: &Trace,
    interval_len: usize,
    max_k: usize,
    seed: u64,
) -> Option<PhaseAnalysis> {
    analyze_source(&mut trace.source(), interval_len, max_k, seed)
}

/// Runs the full SimPoint-style analysis over a streaming [`TraceSource`],
/// profiling basic-block vectors in a single pass (O(BBV) memory).
///
/// `max_k` bounds the number of phases considered; the chosen `k` minimizes
/// a penalized within-cluster variance (a lightweight stand-in for
/// SimPoint's BIC criterion).  Simpoint weights are proportional to the
/// dynamic instructions their cluster covers, so a folded tail interval
/// (see [`interval_bbvs_source`]) is weighted by its actual length and the
/// weights sum to 1.0 over every profiled instruction.
///
/// Returns `None` if the stream contains fewer than half an interval.
pub fn analyze_source<S: TraceSource + ?Sized>(
    source: &mut S,
    interval_len: usize,
    max_k: usize,
    seed: u64,
) -> Option<PhaseAnalysis> {
    let (bbvs, interval_lengths) = interval_bbvs_source(source, interval_len);
    if bbvs.is_empty() {
        return None;
    }
    let max_k = max_k.clamp(1, bbvs.len());
    type Clustering = (f64, Vec<usize>, Vec<Vec<f64>>, usize);
    let mut best: Option<Clustering> = None;
    for k in 1..=max_k {
        let (assignments, centroids, variance) = kmeans(&bbvs, k, seed.wrapping_add(k as u64));
        // Penalize extra clusters so k only grows when it buys real
        // variance reduction.
        let score = variance + 0.02 * k as f64;
        if best.as_ref().is_none_or(|(s, _, _, _)| score < *s) {
            best = Some((score, assignments, centroids, k));
        }
    }
    let (_, assignments, centroids, k) = best.expect("at least one clustering attempted");

    let profiled: usize = interval_lengths.iter().sum();
    let mut simpoints = Vec::new();
    for (cluster, centroid) in centroids.iter().enumerate().take(k) {
        let members: Vec<usize> = assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == cluster)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        let representative = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                distance_sq(&bbvs[a], centroid)
                    .partial_cmp(&distance_sq(&bbvs[b], centroid))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("cluster has members");
        let covered: usize = members.iter().map(|&i| interval_lengths[i]).sum();
        simpoints.push(Simpoint {
            interval_index: representative,
            start_instruction: representative * interval_len,
            weight: covered as f64 / profiled as f64,
            cluster,
        });
    }
    Some(PhaseAnalysis {
        interval_len,
        assignments,
        interval_lengths,
        simpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationTraceGenerator, Benchmark};

    #[test]
    fn bbvs_are_normalized_and_sized() {
        let trace = ApplicationTraceGenerator::new(40_000, 1).generate(&Benchmark::Gcc.profile());
        let bbvs = interval_bbvs(&trace, 5_000);
        assert_eq!(bbvs.len(), 8);
        for v in &bbvs {
            let total: f64 = v.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn short_trace_yields_no_intervals() {
        let trace = ApplicationTraceGenerator::new(100, 1).generate(&Benchmark::Astar.profile());
        assert!(interval_bbvs(&trace, 1_000).is_empty());
        assert!(analyze(&trace, 1_000, 4, 0).is_none());
    }

    #[test]
    fn tail_of_at_least_half_an_interval_is_folded() {
        // 23_000 instructions at interval 5_000: four full intervals plus a
        // 3_000-instruction tail (>= half an interval), which must become a
        // fifth, short interval so no execution is dropped.
        let trace = ApplicationTraceGenerator::new(23_000, 7).generate(&Benchmark::Gcc.profile());
        let (bbvs, lengths) = interval_bbvs_source(&mut trace.source(), 5_000);
        assert_eq!(bbvs.len(), 5);
        assert_eq!(lengths, vec![5_000, 5_000, 5_000, 5_000, 3_000]);
        for v in &bbvs {
            let total: f64 = v.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }

        let analysis = analyze(&trace, 5_000, 4, 7).unwrap();
        assert_eq!(analysis.assignments.len(), 5);
        assert_eq!(analysis.profiled_instructions(), 23_000);
        // Weighted coverage accounts for every profiled instruction.
        let covered: f64 = analysis
            .simpoints
            .iter()
            .map(|s| s.weight * analysis.profiled_instructions() as f64)
            .sum();
        assert!((covered - 23_000.0).abs() < 1e-6);
        let total_weight: f64 = analysis.simpoints.iter().map(|s| s.weight).sum();
        assert!((total_weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tail_below_half_an_interval_is_dropped() {
        // 21_000 instructions at interval 5_000: the 1_000-instruction tail
        // is below half an interval and stays excluded.
        let trace = ApplicationTraceGenerator::new(21_000, 7).generate(&Benchmark::Gcc.profile());
        let (bbvs, lengths) = interval_bbvs_source(&mut trace.source(), 5_000);
        assert_eq!(bbvs.len(), 4);
        assert_eq!(lengths, vec![5_000; 4]);
        let analysis = analyze(&trace, 5_000, 4, 7).unwrap();
        assert_eq!(analysis.profiled_instructions(), 20_000);
    }

    #[test]
    fn streaming_analysis_matches_materialized_analysis() {
        for benchmark in [Benchmark::Gcc, Benchmark::Mcf, Benchmark::Hmmer] {
            let generator = ApplicationTraceGenerator::new(33_000, 11);
            let profile = benchmark.profile();
            let materialized = analyze(&generator.generate(&profile), 4_000, 5, 11);
            let streamed = analyze_source(&mut generator.stream(&profile), 4_000, 5, 11);
            assert_eq!(materialized, streamed, "{benchmark:?}");
            assert!(materialized.is_some());
        }
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + i as f64 * 0.001, 0.0]);
            points.push(vec![10.0 + i as f64 * 0.001, 10.0]);
        }
        let (assignments, centroids, variance) = kmeans(&points, 2, 1);
        assert_eq!(centroids.len(), 2);
        assert!(variance < 0.1);
        // points alternate cluster a, cluster b
        for pair in assignments.chunks(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn kmeans_rejects_zero_k() {
        let _ = kmeans(&[vec![0.0]], 0, 0);
    }

    #[test]
    fn kmeans_seeding_never_duplicates_centroids() {
        // Heavy duplication: only three distinct points, most of them
        // copies of one value.  The old roulette could land on a
        // zero-distance point (an existing centroid) via the
        // `threshold <= d` boundary or the last-index fallback, seeding a
        // duplicate centroid and an empty cluster.
        let mut points: Vec<Vec<f64>> = vec![vec![0.0, 0.0]; 30];
        points.push(vec![5.0, 5.0]);
        points.push(vec![9.0, 1.0]);
        for seed in 0..200u64 {
            let (assignments, centroids, _) = kmeans(&points, 3, seed);
            for (i, a) in centroids.iter().enumerate() {
                for b in centroids.iter().skip(i + 1) {
                    assert!(
                        distance_sq(a, b) > 0.0,
                        "seed {seed} produced duplicate centroids {a:?}"
                    );
                }
            }
            // All three distinct values form their own cluster: no cluster
            // may come out empty.
            for cluster in 0..3 {
                assert!(
                    assignments.contains(&cluster),
                    "seed {seed} left cluster {cluster} empty"
                );
            }
        }
    }

    #[test]
    fn analysis_weights_sum_to_one() {
        let trace =
            ApplicationTraceGenerator::new(60_000, 3).generate(&Benchmark::Xalancbmk.profile());
        let analysis = analyze(&trace, 5_000, 5, 3).unwrap();
        let total: f64 = analysis.simpoints.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(analysis.num_phases() >= 1);
        assert_eq!(analysis.assignments.len(), 12);
        for sp in &analysis.simpoints {
            assert_eq!(sp.start_instruction, sp.interval_index * 5_000);
            assert!(sp.interval_index < analysis.assignments.len());
        }
    }

    #[test]
    fn multi_phase_application_yields_multiple_phases() {
        // gcc has three phases touching different code regions; the analysis
        // should find more than one cluster.
        let trace = ApplicationTraceGenerator::new(80_000, 11).generate(&Benchmark::Gcc.profile());
        let analysis = analyze(&trace, 4_000, 6, 11).unwrap();
        assert!(
            analysis.num_phases() >= 2,
            "expected at least 2 phases, got {}",
            analysis.num_phases()
        );
    }

    #[test]
    fn single_phase_application_tends_to_one_phase() {
        let trace =
            ApplicationTraceGenerator::new(60_000, 13).generate(&Benchmark::Hmmer.profile());
        let analysis = analyze(&trace, 5_000, 6, 13).unwrap();
        assert!(
            analysis.num_phases() <= 2,
            "hmmer is single-phase, got {}",
            analysis.num_phases()
        );
    }
}
