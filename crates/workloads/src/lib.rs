//! # micrograd-workloads
//!
//! SPEC-like synthetic application models and SimPoint-style phase analysis
//! — the "real application" substrate of the MicroGrad reproduction.
//!
//! The paper clones eight SPEC INT CPU2006 benchmarks (astar, bzip2, gcc,
//! hmmer, libquantum, mcf, sjeng, xalancbmk) from 100 M-instruction
//! SimPoints.  SPEC sources and reference inputs cannot be redistributed, so
//! this crate provides *application models*: parameterized synthetic
//! programs whose instruction mix, code/data footprints, branch behaviour
//! and phase structure are chosen per benchmark from published
//! characterization data, giving each benchmark a distinct fingerprint on
//! the bundled simulator.  Cloning only needs a reference metric vector
//! measured on the same platform, so this substitution preserves the shape
//! of the task (see DESIGN.md).
//!
//! * [`ApplicationProfile`] / [`PhaseProfile`] — the model parameters.
//! * [`Benchmark`] — the eight named SPEC-like models.
//! * [`ApplicationTraceGenerator`] — expands a profile into a dynamic
//!   [`micrograd_codegen::Trace`] with phase structure, or streams it as an
//!   [`ApplicationTraceSource`] (a [`micrograd_codegen::TraceSource`]) so
//!   multi-phase targets can be characterized at realistic lengths in
//!   O(static code) memory.
//! * [`simpoint`] — basic-block-vector profiling, k-means clustering and
//!   representative-interval selection (SimPoint-like).  Profiling is
//!   streaming ([`simpoint::analyze_source`] consumes any `TraceSource` in
//!   one pass, bit-identical to the materialized [`simpoint::analyze`]),
//!   which is what the clone-per-simpoint pipeline builds on — see
//!   `docs/simpoint.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use micrograd_workloads::{ApplicationTraceGenerator, Benchmark};
//!
//! let profile = Benchmark::Mcf.profile();
//! let trace = ApplicationTraceGenerator::new(50_000, 7).generate(&profile);
//! assert_eq!(trace.len(), 50_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod apptrace;
mod profile;
pub mod simpoint;
mod spec;

pub use apptrace::{ApplicationTraceGenerator, ApplicationTraceSource};
pub use profile::{ApplicationProfile, PhaseProfile};
pub use spec::Benchmark;
