//! The eight SPEC INT CPU2006-like benchmark models used in the paper.

use crate::{ApplicationProfile, PhaseProfile};
use micrograd_isa::InstrClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// The eight SPEC INT CPU2006 benchmarks the paper clones.
///
/// Each variant maps to an [`ApplicationProfile`] whose parameters follow
/// the published characterization of the corresponding benchmark: pointer
/// chasing and huge working sets for `mcf`, highly predictable streaming for
/// `libquantum`, branchy control for `sjeng`/`gcc`, large instruction
/// footprint for `xalancbmk`/`gcc`, and so on.  The absolute numbers are not
/// (and need not be) exact — the cloning experiment only requires that each
/// benchmark exhibits a distinct, stable fingerprint on the bundled
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are benchmark names
pub enum Benchmark {
    Astar,
    Bzip2,
    Gcc,
    Hmmer,
    Libquantum,
    Mcf,
    Sjeng,
    Xalancbmk,
}

impl Benchmark {
    /// All eight benchmarks, in the order the paper's figures list them.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Astar,
        Benchmark::Bzip2,
        Benchmark::Gcc,
        Benchmark::Hmmer,
        Benchmark::Libquantum,
        Benchmark::Mcf,
        Benchmark::Sjeng,
        Benchmark::Xalancbmk,
    ];

    /// The lowercase benchmark name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Astar => "astar",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Gcc => "gcc",
            Benchmark::Hmmer => "hmmer",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Mcf => "mcf",
            Benchmark::Sjeng => "sjeng",
            Benchmark::Xalancbmk => "xalancbmk",
        }
    }

    /// The application model for this benchmark.
    #[must_use]
    pub fn profile(self) -> ApplicationProfile {
        match self {
            Benchmark::Astar => astar(),
            Benchmark::Bzip2 => bzip2(),
            Benchmark::Gcc => gcc(),
            Benchmark::Hmmer => hmmer(),
            Benchmark::Libquantum => libquantum(),
            Benchmark::Mcf => mcf(),
            Benchmark::Sjeng => sjeng(),
            Benchmark::Xalancbmk => xalancbmk(),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a benchmark name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == lower)
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

fn mix(int: f64, float: f64, branch: f64, load: f64, store: f64) -> BTreeMap<InstrClass, f64> {
    let mut m = BTreeMap::new();
    m.insert(InstrClass::Integer, int);
    m.insert(InstrClass::Float, float);
    m.insert(InstrClass::Branch, branch);
    m.insert(InstrClass::Load, load);
    m.insert(InstrClass::Store, store);
    m
}

#[allow(clippy::too_many_arguments)]
fn phase(
    name: &str,
    weight: f64,
    class_mix: BTreeMap<InstrClass, f64>,
    code_blocks: usize,
    block_size: usize,
    data_footprint_kb: u64,
    stride_bytes: u64,
    temporal_reuse: f64,
    branch_entropy: f64,
    dependency_distance: u32,
) -> PhaseProfile {
    PhaseProfile {
        name: name.to_owned(),
        weight,
        class_mix,
        code_blocks,
        block_size,
        data_footprint_kb,
        stride_bytes,
        temporal_reuse,
        branch_entropy,
        dependency_distance,
    }
}

/// `astar`: path-finding; pointer-heavy graph traversal with moderately
/// unpredictable branches and a medium working set.
fn astar() -> ApplicationProfile {
    ApplicationProfile {
        name: "astar".to_owned(),
        phases: vec![
            phase(
                "search",
                0.7,
                mix(0.42, 0.01, 0.17, 0.28, 0.12),
                30,
                10,
                256,
                24,
                0.35,
                0.35,
                3,
            ),
            phase(
                "expand",
                0.3,
                mix(0.48, 0.01, 0.14, 0.26, 0.11),
                22,
                12,
                96,
                16,
                0.45,
                0.25,
                4,
            ),
        ],
    }
}

/// `bzip2`: compression; tight integer loops, small hot code, good branch
/// behaviour, modest working set with strong temporal locality.
fn bzip2() -> ApplicationProfile {
    ApplicationProfile {
        name: "bzip2".to_owned(),
        phases: vec![
            phase(
                "compress",
                0.6,
                mix(0.52, 0.0, 0.13, 0.24, 0.11),
                16,
                14,
                192,
                8,
                0.5,
                0.18,
                5,
            ),
            phase(
                "sort",
                0.4,
                mix(0.47, 0.0, 0.15, 0.27, 0.11),
                14,
                12,
                384,
                16,
                0.35,
                0.25,
                3,
            ),
        ],
    }
}

/// `gcc`: compilation; very large instruction footprint, branchy, irregular
/// data accesses across many small structures.
fn gcc() -> ApplicationProfile {
    ApplicationProfile {
        name: "gcc".to_owned(),
        phases: vec![
            phase(
                "parse",
                0.35,
                mix(0.44, 0.0, 0.21, 0.24, 0.11),
                120,
                9,
                512,
                32,
                0.3,
                0.3,
                3,
            ),
            phase(
                "optimize",
                0.4,
                mix(0.46, 0.01, 0.19, 0.23, 0.11),
                150,
                8,
                768,
                40,
                0.25,
                0.35,
                3,
            ),
            phase(
                "emit",
                0.25,
                mix(0.42, 0.0, 0.18, 0.25, 0.15),
                90,
                10,
                256,
                24,
                0.35,
                0.25,
                4,
            ),
        ],
    }
}

/// `hmmer`: hidden-Markov-model search; dominated by a regular inner loop
/// with high ILP, very predictable branches and small working set.
fn hmmer() -> ApplicationProfile {
    ApplicationProfile {
        name: "hmmer".to_owned(),
        phases: vec![phase(
            "viterbi",
            1.0,
            mix(0.50, 0.03, 0.08, 0.28, 0.11),
            12,
            22,
            48,
            8,
            0.55,
            0.05,
            7,
        )],
    }
}

/// `libquantum`: quantum simulation; long streaming loops over a large
/// array, extremely predictable branches, poor temporal locality.
fn libquantum() -> ApplicationProfile {
    ApplicationProfile {
        name: "libquantum".to_owned(),
        phases: vec![
            phase(
                "toffoli",
                0.75,
                mix(0.38, 0.02, 0.14, 0.30, 0.16),
                8,
                16,
                4096,
                64,
                0.05,
                0.03,
                6,
            ),
            phase(
                "measure",
                0.25,
                mix(0.42, 0.02, 0.16, 0.28, 0.12),
                10,
                12,
                2048,
                64,
                0.1,
                0.08,
                5,
            ),
        ],
    }
}

/// `mcf`: network-simplex optimization; pointer chasing over a working set
/// far larger than any cache, very low IPC.
fn mcf() -> ApplicationProfile {
    ApplicationProfile {
        name: "mcf".to_owned(),
        phases: vec![
            phase(
                "pricing",
                0.55,
                mix(0.36, 0.0, 0.16, 0.34, 0.14),
                26,
                9,
                16 * 1024,
                96,
                0.08,
                0.3,
                2,
            ),
            phase(
                "refresh",
                0.45,
                mix(0.40, 0.0, 0.14, 0.32, 0.14),
                20,
                10,
                8 * 1024,
                64,
                0.12,
                0.25,
                3,
            ),
        ],
    }
}

/// `sjeng`: chess search; deep recursion, branchy and hard to predict,
/// moderate working set.
fn sjeng() -> ApplicationProfile {
    ApplicationProfile {
        name: "sjeng".to_owned(),
        phases: vec![
            phase(
                "search",
                0.8,
                mix(0.46, 0.0, 0.22, 0.21, 0.11),
                60,
                9,
                384,
                32,
                0.3,
                0.4,
                3,
            ),
            phase(
                "evaluate",
                0.2,
                mix(0.52, 0.0, 0.16, 0.22, 0.10),
                40,
                11,
                128,
                16,
                0.4,
                0.25,
                4,
            ),
        ],
    }
}

/// `xalancbmk`: XSLT processing; very large instruction footprint (deep
/// C++ call chains), indirect-branch heavy, scattered data accesses.
fn xalancbmk() -> ApplicationProfile {
    ApplicationProfile {
        name: "xalancbmk".to_owned(),
        phases: vec![
            phase(
                "parse",
                0.4,
                mix(0.41, 0.0, 0.23, 0.25, 0.11),
                180,
                7,
                512,
                48,
                0.25,
                0.3,
                3,
            ),
            phase(
                "transform",
                0.6,
                mix(0.43, 0.0, 0.21, 0.25, 0.11),
                220,
                7,
                1024,
                56,
                0.2,
                0.35,
                3,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_profiles_with_valid_phases() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert_eq!(p.name, b.name());
            assert!(!p.phases.is_empty());
            for phase in &p.phases {
                let mix_total: f64 = phase.normalized_mix().values().sum();
                assert!((mix_total - 1.0).abs() < 1e-9);
                assert!(phase.code_blocks > 0);
                assert!(phase.block_size > 2);
                assert!(phase.data_footprint_kb > 0);
                assert!((0.0..=1.0).contains(&phase.branch_entropy));
                assert!((0.0..=1.0).contains(&phase.temporal_reuse));
                assert!(phase.dependency_distance >= 1);
            }
        }
    }

    #[test]
    fn benchmarks_have_distinct_fingerprints() {
        // The models must differ in at least footprint or branch entropy so
        // the cloning experiment has eight genuinely different targets.
        let footprints: Vec<u64> = Benchmark::ALL
            .iter()
            .map(|b| b.profile().phases[0].data_footprint_kb)
            .collect();
        let entropies: Vec<u64> = Benchmark::ALL
            .iter()
            .map(|b| (b.profile().phases[0].branch_entropy * 100.0) as u64)
            .collect();
        let distinct_fp: std::collections::BTreeSet<_> = footprints.iter().collect();
        let distinct_be: std::collections::BTreeSet<_> = entropies.iter().collect();
        assert!(
            distinct_fp.len() >= 5,
            "footprints too uniform: {footprints:?}"
        );
        assert!(
            distinct_be.len() >= 4,
            "branch entropies too uniform: {entropies:?}"
        );
    }

    #[test]
    fn mcf_has_the_largest_working_set_and_libquantum_streams() {
        let mcf = Benchmark::Mcf.profile();
        let libq = Benchmark::Libquantum.profile();
        let hmmer = Benchmark::Hmmer.profile();
        assert!(mcf.phases[0].data_footprint_kb > libq.phases[0].data_footprint_kb);
        assert!(libq.phases[0].data_footprint_kb > hmmer.phases[0].data_footprint_kb);
        assert!(libq.phases[0].branch_entropy < 0.1);
        assert!(hmmer.phases[0].branch_entropy < 0.1);
    }

    #[test]
    fn branchy_benchmarks_have_high_branch_fractions() {
        for b in [Benchmark::Sjeng, Benchmark::Gcc, Benchmark::Xalancbmk] {
            let p = b.profile();
            let agg = p.aggregate_mix();
            assert!(
                agg[&InstrClass::Branch] > 0.15,
                "{b} branch fraction {}",
                agg[&InstrClass::Branch]
            );
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for b in Benchmark::ALL {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("doom".parse::<Benchmark>().is_err());
        assert!(" MCF ".parse::<Benchmark>().unwrap() == Benchmark::Mcf);
    }

    #[test]
    fn there_are_exactly_eight_benchmarks() {
        assert_eq!(Benchmark::ALL.len(), 8);
        let set: std::collections::BTreeSet<_> = Benchmark::ALL.iter().collect();
        assert_eq!(set.len(), 8);
    }
}
