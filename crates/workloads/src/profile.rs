//! Application model parameters.

use micrograd_isa::InstrClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Behaviour of one execution phase of an application model.
///
/// A phase is a stretch of execution with stable characteristics — the same
/// granularity SimPoint assumes.  Phases differ in instruction mix, working
/// set and branch behaviour, which is what makes phase-aware cloning
/// (one clone per simpoint) worthwhile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase name (for reporting).
    pub name: String,
    /// Relative share of dynamic instructions spent in this phase.
    pub weight: f64,
    /// Instruction-class mix of the phase (normalized internally).
    pub class_mix: BTreeMap<InstrClass, f64>,
    /// Number of static basic blocks the phase's code spans.
    pub code_blocks: usize,
    /// Average instructions per basic block.
    pub block_size: usize,
    /// Data working-set size in kilobytes.
    pub data_footprint_kb: u64,
    /// Dominant access stride in bytes.
    pub stride_bytes: u64,
    /// Fraction of accesses that re-use a recent address (temporal locality).
    pub temporal_reuse: f64,
    /// Fraction of conditional branches whose direction is effectively
    /// random (the rest follow a stable, predictable pattern).
    pub branch_entropy: f64,
    /// Typical register dependency distance (instructions).
    pub dependency_distance: u32,
}

impl PhaseProfile {
    /// A balanced, cache-friendly default phase.
    #[must_use]
    pub fn balanced(name: &str) -> Self {
        let mut class_mix = BTreeMap::new();
        class_mix.insert(InstrClass::Integer, 0.45);
        class_mix.insert(InstrClass::Float, 0.05);
        class_mix.insert(InstrClass::Branch, 0.15);
        class_mix.insert(InstrClass::Load, 0.25);
        class_mix.insert(InstrClass::Store, 0.10);
        PhaseProfile {
            name: name.to_owned(),
            weight: 1.0,
            class_mix,
            code_blocks: 24,
            block_size: 12,
            data_footprint_kb: 64,
            stride_bytes: 16,
            temporal_reuse: 0.3,
            branch_entropy: 0.1,
            dependency_distance: 4,
        }
    }

    /// The class mix normalized to sum to 1.0 (uniform if empty/zero).
    #[must_use]
    pub fn normalized_mix(&self) -> BTreeMap<InstrClass, f64> {
        let total: f64 = self.class_mix.values().filter(|v| **v > 0.0).sum();
        if total <= 0.0 {
            return InstrClass::ALL
                .iter()
                .map(|c| (*c, 1.0 / InstrClass::ALL.len() as f64))
                .collect();
        }
        InstrClass::ALL
            .iter()
            .map(|c| {
                let w = self.class_mix.get(c).copied().unwrap_or(0.0).max(0.0);
                (*c, w / total)
            })
            .collect()
    }
}

/// A complete application model: named phases plus global metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationProfile {
    /// Application name (e.g. `"mcf"`).
    pub name: String,
    /// Execution phases, in nominal program order.
    pub phases: Vec<PhaseProfile>,
}

impl ApplicationProfile {
    /// Creates a single-phase application from one phase profile.
    #[must_use]
    pub fn single_phase(name: &str, phase: PhaseProfile) -> Self {
        ApplicationProfile {
            name: name.to_owned(),
            phases: vec![phase],
        }
    }

    /// Phase weights normalized to sum to 1.0.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no phases.
    #[must_use]
    pub fn normalized_weights(&self) -> Vec<f64> {
        assert!(!self.phases.is_empty(), "application profile has no phases");
        let total: f64 = self.phases.iter().map(|p| p.weight.max(0.0)).sum();
        if total <= 0.0 {
            return vec![1.0 / self.phases.len() as f64; self.phases.len()];
        }
        self.phases
            .iter()
            .map(|p| p.weight.max(0.0) / total)
            .collect()
    }

    /// Aggregate (weight-averaged) instruction-class mix across phases.
    #[must_use]
    pub fn aggregate_mix(&self) -> BTreeMap<InstrClass, f64> {
        let weights = self.normalized_weights();
        let mut mix: BTreeMap<InstrClass, f64> =
            InstrClass::ALL.iter().map(|c| (*c, 0.0)).collect();
        for (phase, w) in self.phases.iter().zip(weights) {
            for (class, frac) in phase.normalized_mix() {
                *mix.entry(class).or_insert(0.0) += frac * w;
            }
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_phase_mix_normalizes() {
        let p = PhaseProfile::balanced("p0");
        let mix = p.normalized_mix();
        let total: f64 = mix.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(mix[&InstrClass::Integer] > mix[&InstrClass::Float]);
    }

    #[test]
    fn empty_mix_falls_back_to_uniform() {
        let mut p = PhaseProfile::balanced("p0");
        p.class_mix.clear();
        let mix = p.normalized_mix();
        for v in mix.values() {
            assert!((*v - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_normalize() {
        let mut a = PhaseProfile::balanced("a");
        a.weight = 3.0;
        let mut b = PhaseProfile::balanced("b");
        b.weight = 1.0;
        let app = ApplicationProfile {
            name: "x".into(),
            phases: vec![a, b],
        };
        let w = app.normalized_weights();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let mut a = PhaseProfile::balanced("a");
        a.weight = 0.0;
        let mut b = PhaseProfile::balanced("b");
        b.weight = 0.0;
        let app = ApplicationProfile {
            name: "x".into(),
            phases: vec![a, b],
        };
        let w = app.normalized_weights();
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "no phases")]
    fn weights_of_empty_profile_panic() {
        let app = ApplicationProfile {
            name: "x".into(),
            phases: vec![],
        };
        let _ = app.normalized_weights();
    }

    #[test]
    fn aggregate_mix_sums_to_one() {
        let app = ApplicationProfile::single_phase("x", PhaseProfile::balanced("p"));
        let mix = app.aggregate_mix();
        let total: f64 = mix.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let app = ApplicationProfile::single_phase("x", PhaseProfile::balanced("p"));
        let json = serde_json::to_string(&app).unwrap();
        let back: ApplicationProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, app);
    }
}
