//! Fixture: the observability layer's atomic shapes, done wrong.  A
//! metric cell carries no happens-before obligation, so hardening it to
//! AcqRel is a policy violation (it taxes every scrape for nothing); a
//! seqlock word published with Relaxed lets readers see torn payloads.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{AcqRel, Relaxed},
};

struct Cell {
    value: AtomicU64,
}

struct Slot {
    seq: AtomicU64,
}

impl Cell {
    fn inc(&self) {
        // A statistics counter must stay Relaxed.
        self.value.fetch_add(1, AcqRel);
    }
}

impl Slot {
    fn publish(&self, seq: u64) {
        // The seqlock word is the publication fence; Relaxed breaks it.
        self.seq.store(seq, Relaxed);
    }
}

fn main() {
    let cell = Cell {
        value: AtomicU64::new(0),
    };
    let slot = Slot {
        seq: AtomicU64::new(0),
    };
    cell.inc();
    slot.publish(2);
}
