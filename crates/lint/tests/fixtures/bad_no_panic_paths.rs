//! Fixture: panicking idioms on a service path — `unwrap`, `expect`,
//! `panic!`, and bare slice indexing.

fn first(v: &[u8]) -> u8 {
    let a = v.first().copied().unwrap();
    let b = v.last().copied().expect("non-empty");
    let c = v[0];
    if a != b && a != c {
        panic!("inconsistent");
    }
    a
}

fn main() {
    let _ = first(&[1, 2, 3]);
}
