//! Fixture: a `let`-bound mutex guard held across file I/O.

use std::io::Write;
use std::sync::Mutex;

fn append(log: &Mutex<u64>, file: &mut std::fs::File) -> std::io::Result<()> {
    let mut guard = log.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard += 1;
    file.write_all(b"tick\n")?;
    Ok(())
}

fn main() {
    let log = Mutex::new(0);
    let mut file = std::fs::File::create("/dev/null").unwrap_or_else(|_| std::process::exit(1));
    let _ = append(&log, &mut file);
}
