//! Fixture: the same `unsafe` block, documented.

fn main() {
    let x: u64 = 7;
    let p = &x as *const u64;
    // SAFETY: `p` points at a live, initialized local that outlives this
    // read; no aliasing mutation happens between creation and deref.
    let v = unsafe { *p };
    assert_eq!(v, 7);
}
