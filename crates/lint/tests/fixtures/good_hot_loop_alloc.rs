//! Fixture: the buffer is hoisted out of the region; the loop itself
//! only does arithmetic and in-place writes.

fn main() {
    let mut scratch = vec![0u64; 1024];
    let mut total = 0u64;
    // lint:hot-loop-start
    for i in 0..1024usize {
        if let Some(slot) = scratch.get_mut(i) {
            *slot = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            total = total.wrapping_add(*slot);
        }
    }
    // lint:hot-loop-end
    assert!(total > 0);
}
