//! Fixture: an `unsafe` block with no `// SAFETY:` comment above it.

fn main() {
    let x: u64 = 7;
    let p = &x as *const u64;
    let v = unsafe { *p };
    assert_eq!(v, 7);
}
