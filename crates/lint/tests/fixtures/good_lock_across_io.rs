//! Fixture: the critical section ends (explicit `drop`, or a scoped
//! block) before any I/O happens.

use std::io::Write;
use std::sync::Mutex;

fn append(log: &Mutex<u64>, file: &mut std::fs::File) -> std::io::Result<()> {
    let mut guard = log.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard += 1;
    drop(guard);
    file.write_all(b"tick\n")?;
    Ok(())
}

fn scoped(log: &Mutex<u64>, file: &mut std::fs::File) -> std::io::Result<()> {
    {
        let mut guard = log.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard += 1;
    }
    file.write_all(b"tock\n")?;
    Ok(())
}

fn main() {
    let log = Mutex::new(0);
    if let Ok(mut file) = std::fs::File::create("/dev/null") {
        let _ = append(&log, &mut file);
        let _ = scoped(&log, &mut file);
    }
}
