//! Fixture: observability code outside the sanctioned clock module takes
//! timestamps as parameters instead of reading the clock itself.  In the
//! workspace, `micrograd_obs::clock::now_ns` is the allowlisted source and
//! everything downstream threads its `u64` nanoseconds explicitly.

struct Event {
    at_ns: u64,
    stage: &'static str,
}

fn record(events: &mut Vec<Event>, at_ns: u64, stage: &'static str) {
    events.push(Event { at_ns, stage });
}

fn main() {
    let mut events = Vec::new();
    // Timestamps enter as data — here literals; in the workspace, the
    // caller passes `clock::now_ns()` down.
    record(&mut events, 1_000, "queued");
    record(&mut events, 5_000, "executed");
    let total = events.last().map_or(0, |e| e.at_ns) - events[0].at_ns;
    assert_eq!(total, 4_000);
    assert_eq!(events[1].stage, "executed");
}
