//! Fixture: observability helper reading the clock inline instead of
//! taking a timestamp parameter.  Only the sanctioned clock module may
//! call `Instant::now`; a stray read like this one scatters "where does
//! time enter the system" across the codebase.

use std::time::Instant;

struct Event {
    at: Instant,
    stage: &'static str,
}

fn record(events: &mut Vec<Event>, stage: &'static str) {
    events.push(Event {
        at: Instant::now(),
        stage,
    });
}

fn main() {
    let mut events = Vec::new();
    record(&mut events, "queued");
    record(&mut events, "executed");
    assert_eq!(events.len(), 2);
}
