//! Fixture: orderings that satisfy the module policy — Relaxed counters,
//! Acquire/Release publication, AcqRel read-modify-write.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};

struct Table {
    head: AtomicU64,
    counter: AtomicU64,
}

impl Table {
    fn observe(&self) -> u64 {
        self.counter.fetch_add(1, Relaxed);
        self.head.store(1, Release);
        self.head.swap(2, AcqRel);
        self.head.load(Acquire)
    }
}

fn main() {
    let t = Table {
        head: AtomicU64::new(0),
        counter: AtomicU64::new(0),
    };
    let _ = t.observe();
}
