//! Fixture: all randomness flows from an explicit seed; no clocks, no
//! ambient entropy.

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() {
    let mut seed = 0xdead_beef_u64;
    let draws: Vec<u64> = (0..4).map(|_| splitmix(&mut seed)).collect();
    assert_eq!(draws.len(), 4);
}
