//! Fixture: orderings that violate the module policy.  In fixture mode
//! receivers named `counter` get the all-Relaxed counter policy; every
//! other field falls back to the publication-grade default.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{Relaxed, Release},
};

struct Table {
    head: AtomicU64,
    counter: AtomicU64,
}

impl Table {
    fn observe(&self) -> u64 {
        // A plain statistics counter must stay Relaxed.
        self.counter.fetch_add(1, Release);
        // A published pointer-like field must be acquired before use.
        self.head.load(Relaxed)
    }
}

fn main() {
    let t = Table {
        head: AtomicU64::new(0),
        counter: AtomicU64::new(0),
    };
    let _ = t.observe();
}
