//! Fixture: allocation inside a marker-delimited hot region.

fn main() {
    let mut total = 0usize;
    // lint:hot-loop-start
    for i in 0..1024u64 {
        let s = i.to_string();
        total += s.len();
    }
    // lint:hot-loop-end
    assert!(total > 0);
}
