//! Fixture: wall-clock reads on an evaluation path.

fn main() {
    let started = std::time::Instant::now();
    let stamp = std::time::SystemTime::now();
    let _ = (started, stamp);
}
