//! Fixture: the observability layer's two atomic shapes, done right.
//! Metric cells (`value`, as in `micrograd_obs::registry`) are plain
//! statistics and stay Relaxed; the trace ring's seqlock word publishes
//! with Release and is acquired before the payload is trusted.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};

struct Cell {
    value: AtomicU64,
}

struct Slot {
    seq: AtomicU64,
}

impl Cell {
    fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }
    fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

impl Slot {
    fn publish(&self, seq: u64) {
        self.seq.store(seq, Release);
    }
    fn read(&self) -> u64 {
        self.seq.load(Acquire)
    }
}

fn main() {
    let cell = Cell {
        value: AtomicU64::new(0),
    };
    let slot = Slot {
        seq: AtomicU64::new(0),
    };
    cell.inc();
    slot.publish(2);
    let _ = (cell.get(), slot.read());
}
