//! Fixture: the same accesses written fallibly — `.get()` with a
//! fallback instead of indexing, `unwrap_or` instead of `unwrap`.

fn first(v: &[u8]) -> u8 {
    let a = v.first().copied().unwrap_or(0);
    let b = v.get(v.len().saturating_sub(1)).copied().unwrap_or(0);
    a.max(b)
}

fn main() {
    let _ = first(&[1, 2, 3]);
}
