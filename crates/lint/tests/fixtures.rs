//! Self-test: every committed fixture behaves as its `good_`/`bad_`
//! file-name prefix demands, and all six shipped rules have a pair.

use std::path::Path;

const RULES: [&str; 6] = [
    "unsafe-needs-safety",
    "atomic-ordering",
    "no-panic-paths",
    "hot-loop-alloc",
    "lock-across-io",
    "nondeterminism",
];

#[test]
fn fixtures_behave_as_labelled() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let outcomes = micrograd_lint::run_fixtures(&dir).expect("fixture dir readable");
    for outcome in &outcomes {
        assert!(outcome.passed, "{}: {}", outcome.name, outcome.detail);
    }
    for rule in RULES {
        let bad = outcomes
            .iter()
            .filter(|o| o.rule == rule && o.name.starts_with("bad_"))
            .count();
        let good = outcomes
            .iter()
            .filter(|o| o.rule == rule && o.name.starts_with("good_"))
            .count();
        assert!(
            bad >= 1 && good >= 1,
            "rule `{rule}` needs at least one bad and one good fixture \
             (found {bad} bad, {good} good)"
        );
    }
}

#[test]
fn bad_fixtures_fail_a_plain_check() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut saw_bad = 0;
    for entry in std::fs::read_dir(&dir).expect("fixture dir readable") {
        let path = entry.expect("fixture entry").path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !name.starts_with("bad_") || !name.ends_with(".rs") {
            continue;
        }
        saw_bad += 1;
        let stem = name.trim_start_matches("bad_").trim_end_matches(".rs");
        let rule = stem.split("__").next().unwrap_or(stem).replace('_', "-");
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let findings = micrograd_lint::check_source(&format!("fixtures/{name}"), &text, true);
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "{name}: expected a `{rule}` finding, got {findings:?}"
        );
    }
    assert!(saw_bad >= RULES.len(), "at least one bad fixture per rule");
}
