//! `micrograd-lint`: repo-specific static analysis for the MicroGrad
//! workspace.
//!
//! The determinism and resilience claims this repo makes (bit-identical
//! cloning, a reactor thread that survives arbitrary client behavior, an
//! allocation-free simulator retire loop, Acquire/Release discipline in
//! the lock-free memo table) rest on invariants that ordinary tests
//! exercise one instance at a time.  This crate checks the whole class
//! statically and runs in CI as a hard gate:
//!
//! ```text
//! cargo run -p micrograd-lint -- check            # whole workspace
//! cargo run -p micrograd-lint -- check --json     # machine-readable
//! cargo run -p micrograd-lint -- check FILE...    # force all rules on files
//! cargo run -p micrograd-lint -- self-test        # fixtures under tests/fixtures
//! ```
//!
//! It is std-only by design — a lightweight Rust lexer plus brace-tree
//! scanning, no `syn`, no proc-macros — because the offline build
//! vendored exactly what the product needs and a linter should not move
//! that bar.  See `docs/static-analysis.md` for the rule catalogue,
//! ordering-policy table, and the pragma grammar (suppressions require a
//! reason; reason-less pragmas are themselves findings).

pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diagnostics::{render_json, Finding};
pub use source::SourceFile;

use std::path::{Path, PathBuf};

/// Directory names never scanned (third-party stand-ins, build output,
/// the lint crate's own deliberately-bad fixtures).
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Checks one file's source text.
///
/// `rel_path` selects which rules run via [`rules::Rule::applies`]; with
/// `forced` every rule runs regardless of path (fixture / explicit-file
/// mode).  Pragma suppression and pragma-syntax validation are applied
/// either way.
#[must_use]
pub fn check_source(rel_path: &str, text: &str, forced: bool) -> Vec<Finding> {
    let src = SourceFile::parse(rel_path, text);
    let mut findings = Vec::new();
    for rule in rules::all_rules() {
        if forced || rule.applies(rel_path) {
            rule.check(&src, forced, &mut findings);
        }
    }
    findings.retain(|f| !src.allowed(f.rule, f.line));
    // Malformed pragmas (missing reason, bad syntax) are findings in their
    // own right and cannot be suppressed.
    for (line, message) in &src.bad_pragmas {
        findings.push(Finding {
            rule: "lint-pragma",
            file: rel_path.to_owned(),
            line: *line,
            message: message.clone(),
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Checks every first-party `.rs` file under `root`, returning sorted
/// findings.
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk or file reads.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        findings.extend(check_source(&rel, &text, false));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// The workspace-relative path with `/` separators.
#[must_use]
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Result of checking one committed fixture in self-test mode.
#[derive(Debug)]
pub struct FixtureOutcome {
    /// Fixture file name.
    pub name: String,
    /// The rule the fixture exercises (derived from its file name).
    pub rule: String,
    /// Whether the fixture behaved as its `good_` / `bad_` prefix demands.
    pub passed: bool,
    /// Human-readable detail when it did not.
    pub detail: String,
}

/// Runs the committed good/bad fixtures under `fixtures_dir`.
///
/// `bad_<rule>.rs` must produce at least one finding of `<rule>` (with
/// `_` mapped to `-`); `good_<rule>.rs` must produce none.  A `__<tag>`
/// suffix before `.rs` is ignored, so several fixture pairs can exercise
/// the same rule (`bad_atomic_ordering__obs.rs` checks `atomic-ordering`).
/// All rules run forced, so fixtures exercise rules regardless of their
/// workspace path scoping.
///
/// # Errors
///
/// Propagates filesystem errors reading the fixture directory.
pub fn run_fixtures(fixtures_dir: &Path) -> std::io::Result<Vec<FixtureOutcome>> {
    let mut outcomes = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixtures_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let stem = name.trim_end_matches(".rs");
        let (expect_findings, rule_part) = if let Some(rest) = stem.strip_prefix("bad_") {
            (true, rest)
        } else if let Some(rest) = stem.strip_prefix("good_") {
            (false, rest)
        } else {
            continue;
        };
        let rule_part = rule_part.split("__").next().unwrap_or(rule_part);
        let rule = rule_part.replace('_', "-");
        let text = std::fs::read_to_string(&path)?;
        let findings = check_source(&format!("fixtures/{name}"), &text, true);
        let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == rule).collect();
        let (passed, detail) = if expect_findings {
            match hits.first() {
                Some(first) => (true, first.render()),
                None => (false, format!("expected a `{rule}` finding, got none")),
            }
        } else if hits.is_empty() {
            (true, String::new())
        } else {
            (
                false,
                format!(
                    "expected no `{rule}` findings, got {}: {}",
                    hits.len(),
                    hits[0].render()
                ),
            )
        };
        outcomes.push(FixtureOutcome {
            name,
            rule,
            passed,
            detail,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_with_reason_suppresses_and_without_reason_is_a_finding() {
        let bad = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n";
        let findings = check_source("crates/service/src/x.rs", bad, false);
        assert!(findings.iter().any(|f| f.rule == "no-panic-paths"));

        let allowed = "fn f(v: &[u8]) -> u8 {\n    // lint:allow(no-panic-paths): caller guarantees non-empty\n    v.first().copied().unwrap()\n}\n";
        let findings = check_source("crates/service/src/x.rs", allowed, false);
        assert!(findings.is_empty(), "{findings:?}");

        let reasonless = "fn f(v: &[u8]) -> u8 {\n    // lint:allow(no-panic-paths)\n    v.first().copied().unwrap()\n}\n";
        let findings = check_source("crates/service/src/x.rs", reasonless, false);
        assert!(findings.iter().any(|f| f.rule == "lint-pragma"));
        assert!(
            findings.iter().any(|f| f.rule == "no-panic-paths"),
            "a reason-less pragma must not suppress"
        );
    }

    #[test]
    fn rules_scope_by_path() {
        let text = "fn f() { x.unwrap(); }\n";
        assert!(check_source("crates/sim/src/x.rs", text, false).is_empty());
        assert!(!check_source("crates/service/src/x.rs", text, false).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_panic_rules() {
        let text = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(check_source("crates/service/src/x.rs", text, false).is_empty());
    }
}
