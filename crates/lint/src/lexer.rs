//! A minimal Rust lexer: just enough token structure for line-oriented
//! static analysis, with none of the grammar.
//!
//! The rules in this crate reason about identifier/punctuation sequences
//! (`.load(Ordering::Relaxed)`, `buf[`, `unsafe {`), so the lexer's only
//! obligations are the ones a naive text scan gets wrong: comments
//! (including nesting), string literals (including raw strings with `#`
//! fences), char literals vs lifetimes, and raw identifiers.  Everything
//! else is a single-character punctuation token.
//!
//! Non-ASCII bytes only ever appear inside comments and strings in this
//! workspace, so the scanner works on bytes and treats `>= 0x80` as an
//! identifier-continue character; UTF-8 continuation bytes never collide
//! with the ASCII delimiters being matched.

/// One lexical token, classified just far enough for the lint rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.  Raw identifiers are normalized: `r#type`
    /// lexes as `Ident("type")`.
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any string literal: regular, raw, byte, or C string.
    Str,
    /// A char or byte-char literal.
    Char,
    /// A numeric literal.
    Number,
    /// A single punctuation character.
    Punct(char),
    /// A comment with its full text, `//` / `/* */` markers included.
    Comment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Lexes `src` into a token stream.  Unterminated literals and comments
/// are closed at end of input rather than reported: the workspace being
/// scanned always compiles, so recovery precision is not worth carrying.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let line = self.line;
            let b = self.at(self.pos);
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.at(self.pos + 1) == b'/' => self.line_comment(line),
                b'/' if self.at(self.pos + 1) == b'*' => self.block_comment(line),
                b'"' => {
                    self.string_body();
                    self.push(TokenKind::Str, line);
                }
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(line),
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct(b as char), line);
                }
            }
        }
        self.tokens
    }

    /// Byte at `i`, or 0 past the end (0 matches nothing the lexer tests).
    fn at(&self, i: usize) -> u8 {
        self.bytes.get(i).copied().unwrap_or(0)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.tokens.push(Token { kind, line });
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.at(self.pos) != b'\n' {
            self.pos += 1;
        }
        let text = self.src[start..self.pos].to_owned();
        self.push(TokenKind::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.at(self.pos), self.at(self.pos + 1)) {
                (b'/', b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = self.src[start..self.pos.min(self.src.len())].to_owned();
        self.push(TokenKind::Comment(text), line);
    }

    /// Consumes a regular (escaped) string body starting at the opening
    /// quote.
    fn string_body(&mut self) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.at(self.pos) {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a raw string body; `self.pos` sits on the first `#` or the
    /// opening quote.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.at(self.pos) == b'#' {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.at(self.pos), b'"');
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.at(self.pos) == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.at(self.pos) == b'"' {
                let fence = &self.bytes[self.pos + 1..];
                if fence.len() >= hashes && fence[..hashes].iter().all(|b| *b == b'#') {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.at(self.pos + 1);
        if next == b'\\' {
            // Escaped char literal: scan to the closing quote.
            self.pos += 2;
            while self.pos < self.bytes.len() {
                match self.at(self.pos) {
                    b'\\' => self.pos += 2,
                    b'\'' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.pos += 1,
                }
            }
            self.push(TokenKind::Char, line);
        } else if is_ident_start(next) {
            // `'a` is a lifetime unless a closing quote follows the run.
            let mut end = self.pos + 2;
            while is_ident_continue(self.at(end)) {
                end += 1;
            }
            if self.at(end) == b'\'' {
                self.pos = end + 1;
                self.push(TokenKind::Char, line);
            } else {
                self.pos = end;
                self.push(TokenKind::Lifetime, line);
            }
        } else if next != 0 && self.at(self.pos + 2) == b'\'' {
            // A punctuation char literal such as `'('`.
            self.pos += 3;
            self.push(TokenKind::Char, line);
        } else {
            self.pos += 1;
            self.push(TokenKind::Punct('\''), line);
        }
    }

    fn number(&mut self, line: u32) {
        loop {
            while is_ident_continue(self.at(self.pos)) {
                self.pos += 1;
            }
            // `1.5` continues the literal; `1..n` and `1.max(2)` do not.
            if self.at(self.pos) == b'.' && self.at(self.pos + 1).is_ascii_digit() {
                self.pos += 1;
                continue;
            }
            // Exponent sign: `1e-4`.
            if matches!(self.at(self.pos), b'+' | b'-')
                && matches!(self.at(self.pos.wrapping_sub(1)), b'e' | b'E')
                && self.at(self.pos + 1).is_ascii_digit()
            {
                self.pos += 1;
                continue;
            }
            break;
        }
        self.push(TokenKind::Number, line);
    }

    /// An identifier, or one of the literal prefixes `r"` `r#"` `b"` `b'`
    /// `br"` `c"` `cr"`, or a raw identifier `r#ident`.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let b0 = self.at(self.pos);
        let b1 = self.at(self.pos + 1);
        match (b0, b1) {
            (b'r', b'"') => {
                self.pos += 1;
                self.raw_string_body();
                self.push(TokenKind::Str, line);
                return;
            }
            (b'r', b'#') => {
                if is_ident_start(self.at(self.pos + 2)) {
                    // Raw identifier: emit the bare name.
                    let start = self.pos + 2;
                    let mut end = start;
                    while is_ident_continue(self.at(end)) {
                        end += 1;
                    }
                    let name = self.src[start..end].to_owned();
                    self.pos = end;
                    self.push(TokenKind::Ident(name), line);
                } else {
                    self.pos += 1;
                    self.raw_string_body();
                    self.push(TokenKind::Str, line);
                }
                return;
            }
            (b'b', b'"') | (b'c', b'"') => {
                self.pos += 1;
                self.string_body();
                self.push(TokenKind::Str, line);
                return;
            }
            (b'b', b'\'') => {
                self.pos += 1;
                self.char_or_lifetime(line);
                return;
            }
            (b'b' | b'c', b'r') => {
                let b2 = self.at(self.pos + 2);
                if b2 == b'"' || b2 == b'#' {
                    self.pos += 2;
                    self.raw_string_body();
                    self.push(TokenKind::Str, line);
                    return;
                }
            }
            _ => {}
        }
        let start = self.pos;
        while is_ident_continue(self.at(self.pos)) {
            self.pos += 1;
        }
        let name = self.src[start..self.pos].to_owned();
        self.push(TokenKind::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // The quote and the `unsafe` inside the raw string must not leak
        // out as tokens.
        let toks = kinds(r####"let x = r#"contains "quotes" and unsafe"#; y"####);
        assert!(toks.contains(&TokenKind::Str));
        assert!(!toks.contains(&TokenKind::Ident("unsafe".to_owned())));
        assert!(toks.contains(&TokenKind::Ident("y".to_owned())));
    }

    #[test]
    fn raw_strings_track_embedded_newlines() {
        let toks = lex("let a = r\"line\nline\";\nunsafe");
        let last = toks.last().expect("tokens");
        assert_eq!(last.kind, TokenKind::Ident("unsafe".to_owned()));
        assert_eq!(last.line, 3);
    }

    #[test]
    fn nested_block_comments_close_at_outer_depth() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0], TokenKind::Comment(_)));
        assert_eq!(toks[1], TokenKind::Ident("code".to_owned()));
    }

    #[test]
    fn raw_identifiers_normalize() {
        assert_eq!(
            idents("fn r#type(r#match: u8) {}"),
            ["fn", "type", "match", "u8"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks.iter().filter(|t| **t == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| **t == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals_do_not_eat_the_stream() {
        let toks = kinds(r"let q = '\''; let n = '\n'; done");
        assert_eq!(
            toks.iter().filter(|t| **t == TokenKind::Char).count(),
            2,
            "both escaped literals lex as chars"
        );
        assert!(toks.contains(&TokenKind::Ident("done".to_owned())));
    }

    #[test]
    fn line_comments_capture_text_and_numbers_lex_whole() {
        let toks = lex("x = 1.5e-3; // SAFETY: tail\n");
        assert!(toks.iter().any(|t| matches!(
            &t.kind,
            TokenKind::Comment(text) if text.contains("SAFETY: tail")
        )));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Number).count(),
            1,
            "1.5e-3 is one numeric token"
        );
    }

    #[test]
    fn byte_and_c_strings_lex_as_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr";"##);
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Str).count(), 3);
    }
}
