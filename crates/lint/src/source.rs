//! Per-file analysis context shared by every rule.
//!
//! A [`SourceFile`] is the lexed token stream plus the structural facts
//! rules keep needing: which lines sit inside `#[cfg(test)]` items, which
//! lines are covered by a `// SAFETY:` comment block, where the
//! `lint:allow` pragmas and `lint:hot-loop` marker regions are.

use crate::lexer::{lex, Token, TokenKind};

/// A parsed `// lint:allow(<rule>): <reason>` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment starts on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty reason follows the closing `):`.
    pub has_reason: bool,
}

/// A lexed source file plus derived structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// The token stream with comments stripped (what rules scan).
    pub code: Vec<Token>,
    /// All `lint:allow` pragmas, syntactically valid or not.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragma comments: (line, what is wrong).
    pub bad_pragmas: Vec<(u32, String)>,
    /// Line ranges (inclusive) of `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// `lint:hot-loop-start` / `lint:hot-loop-end` regions (marker lines,
    /// inclusive).
    pub hot_regions: Vec<(u32, u32)>,
    /// Lines of unmatched hot-loop markers.
    pub hot_unmatched: Vec<u32>,
    /// `covered[line]`: the line carries, or directly continues a comment
    /// block that carries, a `SAFETY:` annotation.
    safety_covered: Vec<bool>,
}

impl SourceFile {
    /// Lexes `text` and derives the structural facts.
    #[must_use]
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let tokens = lex(text);
        let code: Vec<Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
            .cloned()
            .collect();
        let mut src = SourceFile {
            rel_path: rel_path.to_owned(),
            tokens,
            code,
            pragmas: Vec::new(),
            bad_pragmas: Vec::new(),
            test_regions: Vec::new(),
            hot_regions: Vec::new(),
            hot_unmatched: Vec::new(),
            safety_covered: Vec::new(),
        };
        src.scan_comments();
        src.scan_test_regions();
        src
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|(start, end)| (*start..=*end).contains(&line))
    }

    /// Whether a valid pragma for `rule` covers `line`: a pragma suppresses
    /// findings on its own line (trailing comment) and on the next line
    /// (comment above the offending statement).
    #[must_use]
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.has_reason && p.rule == rule && (p.line == line || p.line + 1 == line))
    }

    /// Whether an `unsafe` token on `line` is covered by a `// SAFETY:`
    /// comment: the annotation may sit on the same line, or head a comment
    /// block ending at most three lines above (multi-line statements push
    /// the keyword below the comment).
    #[must_use]
    pub fn safety_covered(&self, line: u32) -> bool {
        let line = line as usize;
        (line.saturating_sub(3)..=line)
            .any(|l| self.safety_covered.get(l).copied().unwrap_or(false))
    }

    fn scan_comments(&mut self) {
        let mut comment_lines: Vec<u32> = Vec::new();
        let mut safety_lines: Vec<u32> = Vec::new();
        let mut hot_stack: Vec<u32> = Vec::new();
        let mut max_line = 0u32;
        let mut pragma_texts: Vec<(u32, String)> = Vec::new();
        for token in &self.tokens {
            max_line = max_line.max(token.line);
            let TokenKind::Comment(text) = &token.kind else {
                continue;
            };
            comment_lines.push(token.line);
            if text.contains("SAFETY:") {
                safety_lines.push(token.line);
            }
            if text.contains("lint:hot-loop-start") {
                hot_stack.push(token.line);
            } else if text.contains("lint:hot-loop-end") {
                if let Some(start) = hot_stack.pop() {
                    self.hot_regions.push((start, token.line));
                } else {
                    self.hot_unmatched.push(token.line);
                }
            }
            if let Some(at) = text.find("lint:allow") {
                pragma_texts.push((token.line, text[at..].to_owned()));
            }
        }
        for (line, text) in pragma_texts {
            self.parse_pragma(line, &text);
        }
        self.hot_unmatched.extend(hot_stack);

        // SAFETY coverage propagates down an unbroken run of comment lines
        // starting at the annotation, so a long explanation above an unsafe
        // block still counts.
        let mut covered = vec![false; max_line as usize + 2];
        let comment_set: std::collections::HashSet<u32> = comment_lines.into_iter().collect();
        for line in safety_lines {
            covered[line as usize] = true;
        }
        for line in 1..covered.len() {
            if !covered[line] && comment_set.contains(&(line as u32)) && covered[line - 1] {
                covered[line] = true;
            }
        }
        self.safety_covered = covered;
    }

    /// Parses one suppression pragma, recording it or the reason it is
    /// malformed.  Prose mentions of the pragma keyword without an opening
    /// parenthesis are ignored (docs talk about the syntax; only the
    /// parenthesized form is a suppression).
    fn parse_pragma(&mut self, line: u32, text: &str) {
        let Some(rest) = text.strip_prefix("lint:allow") else {
            return;
        };
        let Some(rest) = rest.strip_prefix('(') else {
            return;
        };
        let Some(close) = rest.find(')') else {
            self.bad_pragmas
                .push((line, "unterminated rule name in `lint:allow(`".to_owned()));
            return;
        };
        let rule = rest[..close].trim().to_owned();
        if rule.is_empty() {
            self.bad_pragmas
                .push((line, "empty rule name in `lint:allow()`".to_owned()));
            return;
        }
        let after = &rest[close + 1..];
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|reason| !reason.trim().is_empty());
        if !has_reason {
            self.bad_pragmas.push((
                line,
                format!("`lint:allow({rule})` needs a reason: `lint:allow({rule}): <why>`"),
            ));
        }
        self.pragmas.push(Pragma {
            line,
            rule,
            has_reason,
        });
    }

    /// Finds `#[cfg(test)]`-gated items by walking the comment-free token
    /// stream: after a matching attribute, the next top-level `{ ... }`
    /// group (skipping further attributes and the item header) is a test
    /// region; a `;` before any `{` means the item has no body.
    fn scan_test_regions(&mut self) {
        let code = &self.code;
        let mut i = 0;
        while i < code.len() {
            if !(is_punct(code.get(i), '#') && is_punct(code.get(i + 1), '[')) {
                i += 1;
                continue;
            }
            let Some(attr_end) = matching_bracket(code, i + 1) else {
                break;
            };
            if !attr_is_cfg_test(&code[i + 2..attr_end]) {
                i = attr_end + 1;
                continue;
            }
            // Scan forward for the item body, skipping nested (), []
            // groups in the header (parameter lists, array types).
            let mut j = attr_end + 1;
            let mut nest = 0i32;
            while j < code.len() {
                match code[j].kind {
                    TokenKind::Punct('(' | '[') => nest += 1,
                    TokenKind::Punct(')' | ']') => nest -= 1,
                    TokenKind::Punct(';') if nest == 0 => break,
                    TokenKind::Punct('{') if nest == 0 => {
                        if let Some(body_end) = matching_bracket(code, j) {
                            self.test_regions.push((code[i].line, code[body_end].line));
                            j = body_end;
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        }
    }
}

/// Whether the attribute tokens (the slice between `#[` and `]`) are a
/// `cfg(...)` whose predicate mentions the bare `test` flag.
fn attr_is_cfg_test(attr: &[Token]) -> bool {
    is_ident(attr.first(), "cfg") && attr.iter().any(|t| is_ident(Some(t), "test"))
}

/// Whether the token is the given punctuation character.
#[must_use]
pub fn is_punct(token: Option<&Token>, ch: char) -> bool {
    matches!(token, Some(t) if t.kind == TokenKind::Punct(ch))
}

/// Whether the token is the given identifier.
#[must_use]
pub fn is_ident(token: Option<&Token>, name: &str) -> bool {
    matches!(token, Some(t) if matches!(&t.kind, TokenKind::Ident(s) if s == name))
}

/// Index of the bracket closing the one at `open` (handles `()`, `[]`,
/// `{}` uniformly), or `None` when unbalanced.
#[must_use]
pub fn matching_bracket(code: &[Token], open: usize) -> Option<usize> {
    let (open_ch, close_ch) = match code.get(open).map(|t| &t.kind) {
        Some(TokenKind::Punct('(')) => ('(', ')'),
        Some(TokenKind::Punct('[')) => ('[', ']'),
        Some(TokenKind::Punct('{')) => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (i, token) in code.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct(c) if c == open_ch => depth += 1,
            TokenKind::Punct(c) if c == close_ch => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_module_bodies() {
        let src = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n",
        );
        assert!(!src.in_test(1));
        assert!(src.in_test(4));
        assert!(!src.in_test(6));
    }

    #[test]
    fn cfg_all_test_counts_and_cfg_unix_does_not() {
        let src = SourceFile::parse(
            "x.rs",
            "#[cfg(all(test, unix))]\nmod tests { fn t() {} }\n#[cfg(unix)]\nmod live { fn f() {} }\n",
        );
        assert!(src.in_test(2));
        assert!(!src.in_test(4));
    }

    #[test]
    fn safety_coverage_spans_comment_blocks() {
        let src = SourceFile::parse(
            "x.rs",
            "// SAFETY: a long explanation\n// that keeps going\n// and going\n// and going\nlet x = unsafe { f() };\n",
        );
        assert!(src.safety_covered(5));
    }

    #[test]
    fn safety_coverage_does_not_leak_across_code() {
        let src = SourceFile::parse(
            "x.rs",
            "// SAFETY: for the first site\nlet a = unsafe { f() };\nlet b = 1;\nlet c = 2;\nlet d = 3;\nlet e = unsafe { g() };\n",
        );
        assert!(src.safety_covered(2));
        assert!(!src.safety_covered(6));
    }

    #[test]
    fn pragmas_parse_and_demand_reasons() {
        let src = SourceFile::parse(
            "x.rs",
            "// lint:allow(no-panic-paths): index bounded by construction\nx();\n// lint:allow(no-panic-paths)\ny();\n",
        );
        assert!(src.allowed("no-panic-paths", 2));
        assert!(
            !src.allowed("no-panic-paths", 4),
            "reason-less pragma is inert"
        );
        assert_eq!(src.bad_pragmas.len(), 1);
    }

    #[test]
    fn hot_loop_markers_pair_up() {
        let src = SourceFile::parse(
            "x.rs",
            "// lint:hot-loop-start\nloop {}\n// lint:hot-loop-end\n// lint:hot-loop-end\n",
        );
        assert_eq!(src.hot_regions, vec![(1, 3)]);
        assert_eq!(src.hot_unmatched, vec![4]);
    }
}
