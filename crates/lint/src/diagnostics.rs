//! Findings and their textual / JSON rendering.

/// One diagnostic: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (kebab-case, e.g. `no-panic-paths`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// The human-readable one-line form: `file:line: [rule] message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON array (hand-rolled: this crate is std-only
/// by design, so the serializer stays three functions long).
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":");
        json_string(&mut out, f.rule);
        out.push_str(",\"file\":");
        json_string(&mut out, &f.file);
        out.push_str(&format!(",\"line\":{}", f.line));
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let findings = vec![Finding {
            rule: "no-panic-paths",
            file: "a/b.rs".to_owned(),
            line: 7,
            message: "quote \" backslash \\ newline \n".to_owned(),
        }];
        let json = render_json(&findings);
        assert!(json.contains(r#""rule":"no-panic-paths""#));
        assert!(json.contains(r#"\" backslash \\ newline \n"#));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        assert_eq!(render_json(&[]), "[]");
    }
}
