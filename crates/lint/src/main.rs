//! `micrograd-lint` CLI: the workspace static-analysis gate.
//!
//! ```text
//! micrograd-lint check [--json] [FILE...]   # no FILE: scan the whole workspace
//! micrograd-lint self-test [--json]         # run the committed fixtures
//! ```
//!
//! Exit status is 0 when clean, 1 on findings (or failed fixtures), 2 on
//! usage errors.

use micrograd_lint::{check_source, check_workspace, render_json, run_fixtures, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
USAGE:
    micrograd-lint check [--json] [FILE...]
    micrograd-lint self-test [--json]

Without FILE arguments, `check` scans every first-party .rs file in the
workspace with each rule's own path scoping.  With FILE arguments, all
rules run on each named file regardless of scope (fixture mode).
";

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest =
        std::env::var("CARGO_MANIFEST_DIR").map_or_else(|_| PathBuf::from("."), PathBuf::from);
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn emit(findings: &[Finding], json: bool) {
    if json {
        println!("{}", render_json(findings));
    } else {
        for finding in findings {
            println!("{}", finding.render());
        }
    }
}

fn cmd_check(json: bool, files: &[String]) -> ExitCode {
    let findings = if files.is_empty() {
        match check_workspace(&workspace_root()) {
            Ok(findings) => findings,
            Err(e) => {
                eprintln!("micrograd-lint: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        for file in files {
            match std::fs::read_to_string(file) {
                Ok(text) => findings.extend(check_source(file, &text, true)),
                Err(e) => {
                    eprintln!("micrograd-lint: cannot read `{file}`: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        findings
    };
    emit(&findings, json);
    if findings.is_empty() {
        if !json {
            println!("micrograd-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("micrograd-lint: {} finding(s)", findings.len());
        }
        ExitCode::FAILURE
    }
}

fn cmd_self_test(json: bool) -> ExitCode {
    let fixtures = workspace_root().join("crates/lint/tests/fixtures");
    let outcomes = match run_fixtures(&fixtures) {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!(
                "micrograd-lint: cannot run fixtures in {}: {e}",
                fixtures.display()
            );
            return ExitCode::from(2);
        }
    };
    if outcomes.is_empty() {
        eprintln!(
            "micrograd-lint: no fixtures found in {}",
            fixtures.display()
        );
        return ExitCode::from(2);
    }
    let mut failed = 0usize;
    for outcome in &outcomes {
        let status = if outcome.passed { "ok" } else { "FAILED" };
        if !json {
            let detail = if outcome.detail.is_empty() {
                String::new()
            } else {
                format!(" — {}", outcome.detail)
            };
            println!("{status:>6}  {} [{}]{detail}", outcome.name, outcome.rule);
        }
        if !outcome.passed {
            failed += 1;
        }
    }
    if !json {
        println!(
            "micrograd-lint: self-test {}/{} fixtures behaved",
            outcomes.len() - failed,
            outcomes.len()
        );
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<String> = args[1..]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    match command.as_str() {
        "check" => cmd_check(json, &files),
        "self-test" => cmd_self_test(json),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("micrograd-lint: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
