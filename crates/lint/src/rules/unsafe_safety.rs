//! `unsafe-needs-safety`: every `unsafe` keyword carries a `// SAFETY:`
//! comment.
//!
//! The comment may trail the same line or head the comment block directly
//! above the statement (see [`SourceFile::safety_covered`]); it must state
//! the invariant that makes the operation sound, which is exactly the
//! information a reviewer cannot reconstruct from the code alone.  Test
//! code is *not* exempt: the workspace's only unsafe test code (the
//! counting global allocator) documents its contracts like everything
//! else.

use super::{ident, Rule};
use crate::diagnostics::Finding;
use crate::source::SourceFile;

pub struct UnsafeNeedsSafety;

impl Rule for UnsafeNeedsSafety {
    fn name(&self) -> &'static str {
        "unsafe-needs-safety"
    }

    fn applies(&self, _rel_path: &str) -> bool {
        true
    }

    fn check(&self, src: &SourceFile, _forced: bool, out: &mut Vec<Finding>) {
        for (i, token) in src.code.iter().enumerate() {
            if ident(Some(token)) != Some("unsafe") {
                continue;
            }
            if src.safety_covered(token.line) {
                continue;
            }
            let what = if ident(src.code.get(i + 1)).is_some() {
                "unsafe item"
            } else {
                "unsafe block"
            };
            out.push(Finding {
                rule: self.name(),
                file: src.rel_path.clone(),
                line: token.line,
                message: format!(
                    "{what} without a `// SAFETY:` comment; state the invariant that \
                     makes this sound on the line above"
                ),
            });
        }
    }
}
