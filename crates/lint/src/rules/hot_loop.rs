//! `hot-loop-alloc`: marker-delimited simulator regions must not
//! allocate.
//!
//! The dynamic complement (`crates/sim/tests/alloc_free.rs`) proves the
//! retire loop performs zero heap operations under a counting global
//! allocator; this rule keeps the property reviewable at the line level.
//! Regions are delimited by `lint:hot-loop-start` / `lint:hot-loop-end`
//! comment markers; inside one, the allocating idioms below are denied:
//!
//! * `.clone()`, `.to_string()`, `.to_owned()`, `.to_vec()`, `.collect()`
//! * `format!` / `vec!`
//! * `Vec::new`, `Box::new`, `String::new/from`, `VecDeque`/`HashMap`/
//!   `HashSet`/`BTreeMap`/`BTreeSet` constructors, `with_capacity`

use super::{ident, is_method_call, Rule};
use crate::diagnostics::Finding;
use crate::source::SourceFile;

/// Method calls that allocate.
const ALLOC_METHODS: [&str; 5] = ["clone", "to_string", "to_owned", "to_vec", "collect"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Container types whose associated constructors allocate (lazily for
/// `Vec::new`, but capacity growth inside a hot loop is exactly the bug
/// the marker exists to catch).
const ALLOC_TYPES: [&str; 8] = [
    "Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Associated functions on [`ALLOC_TYPES`] that are denied.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

pub struct HotLoopAlloc;

impl Rule for HotLoopAlloc {
    fn name(&self) -> &'static str {
        "hot-loop-alloc"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/sim/")
    }

    fn check(&self, src: &SourceFile, _forced: bool, out: &mut Vec<Finding>) {
        for line in &src.hot_unmatched {
            out.push(Finding {
                rule: "hot-loop-alloc",
                file: src.rel_path.clone(),
                line: *line,
                message: "unmatched hot-loop marker; every `lint:hot-loop-start` needs a \
                          matching `lint:hot-loop-end`"
                    .to_owned(),
            });
        }
        if src.hot_regions.is_empty() {
            return;
        }
        let in_region = |line: u32| {
            src.hot_regions
                .iter()
                .any(|(start, end)| (*start..=*end).contains(&line))
        };
        let code = &src.code;
        for (i, token) in code.iter().enumerate() {
            let Some(name) = ident(Some(token)) else {
                continue;
            };
            if !in_region(token.line) {
                continue;
            }
            let mut report = |what: &str| {
                out.push(Finding {
                    rule: "hot-loop-alloc",
                    file: src.rel_path.clone(),
                    line: token.line,
                    message: format!(
                        "{what} allocates inside a hot-loop region; hoist it out of the \
                         loop or restructure"
                    ),
                });
            };
            if ALLOC_METHODS.contains(&name) && is_method_call(code, i, name) {
                report(&format!("`.{name}()`"));
            } else if ALLOC_MACROS.contains(&name) && crate::source::is_punct(code.get(i + 1), '!')
            {
                report(&format!("`{name}!`"));
            } else if ALLOC_TYPES.contains(&name)
                && crate::source::is_punct(code.get(i + 1), ':')
                && crate::source::is_punct(code.get(i + 2), ':')
                && ident(code.get(i + 3)).is_some_and(|f| ALLOC_CTORS.contains(&f))
            {
                report(&format!(
                    "`{name}::{}`",
                    ident(code.get(i + 3)).unwrap_or_default()
                ));
            }
        }
    }
}
