//! The rule registry and the token-navigation helpers rules share.

use crate::diagnostics::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

mod atomics;
mod hot_loop;
mod lock_io;
mod no_panic;
mod nondeterminism;
mod unsafe_safety;

/// One static-analysis rule.
pub trait Rule {
    /// Kebab-case rule name, as used in pragmas and diagnostics.
    fn name(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path during a
    /// workspace check.  Ignored in forced (single-file / fixture) mode.
    fn applies(&self, rel_path: &str) -> bool;
    /// Scans the file and appends findings.  `forced` is set in fixture /
    /// single-file mode, where path-based policy lookups fall back to a
    /// generic policy instead of being skipped.
    fn check(&self, src: &SourceFile, forced: bool, out: &mut Vec<Finding>);
}

/// Every rule this build knows, in diagnostic order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(unsafe_safety::UnsafeNeedsSafety),
        Box::new(atomics::AtomicOrdering),
        Box::new(no_panic::NoPanicPaths),
        Box::new(hot_loop::HotLoopAlloc),
        Box::new(lock_io::LockAcrossIo),
        Box::new(nondeterminism::Nondeterminism),
    ]
}

/// The identifier text of the token, if it is one.
pub(crate) fn ident(token: Option<&Token>) -> Option<&str> {
    match token.map(|t| &t.kind) {
        Some(TokenKind::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

/// Whether `code[i]` is the identifier `name` called as a method:
/// preceded by `.` and followed by `(`.
pub(crate) fn is_method_call(code: &[Token], i: usize, name: &str) -> bool {
    ident(code.get(i)) == Some(name)
        && i > 0
        && crate::source::is_punct(code.get(i - 1), '.')
        && crate::source::is_punct(code.get(i + 1), '(')
}

/// The identifiers making up the receiver chain of a method call whose
/// `.` sits at `dot`: walks backward over `a.b[i].c()`-shaped chains,
/// skipping balanced `[...]` / `(...)` groups, and collects the chain's
/// identifiers (innermost first).
pub(crate) fn receiver_idents(code: &[Token], dot: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut i = dot;
    while i > 0 {
        match &code[i - 1].kind {
            TokenKind::Ident(name) => {
                idents.push(name.clone());
                i -= 1;
                // A `.` or `::` continues the chain.
                if i >= 1 && crate::source::is_punct(code.get(i - 1), '.') {
                    i -= 1;
                } else if i >= 2
                    && crate::source::is_punct(code.get(i - 1), ':')
                    && crate::source::is_punct(code.get(i - 2), ':')
                {
                    i -= 2;
                } else {
                    break;
                }
            }
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                let close = match code[i - 1].kind {
                    TokenKind::Punct(')') => ')',
                    _ => ']',
                };
                let open = if close == ')' { '(' } else { '[' };
                let mut depth = 0i32;
                let mut j = i - 1;
                loop {
                    match code[j].kind {
                        TokenKind::Punct(c) if c == close => depth += 1,
                        TokenKind::Punct(c) if c == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if j == 0 {
                    break;
                }
                i = j;
            }
            _ => break,
        }
    }
    idents
}

/// The index of the token closing the argument list that opens at
/// `open_paren` (which must be a `(`).
pub(crate) fn args_end(code: &[Token], open_paren: usize) -> usize {
    crate::source::matching_bracket(code, open_paren).unwrap_or(code.len().saturating_sub(1))
}
