//! `lock-across-io`: no lock guard may live across file or socket I/O in
//! service code.
//!
//! This is the PR-5 review-hardening bug class: a store write performed
//! while holding the scheduler mutex serializes every connection behind
//! one disk flush.  The rule tracks `let`-bound guards (statements whose
//! initializer calls `.lock(..)` or the crate's `lock_or_recover`
//! helper), scopes them to their enclosing block or an explicit
//! `drop(guard)`, and flags I/O markers — filesystem/socket calls and the
//! durable store's own seam methods — while any guard is live.
//!
//! Lexical limits, by design: guards bound by `if let`/`while let`
//! conditions and temporary guards inside a single expression are not
//! tracked.  The service crate uses neither shape for locks; new code
//! should not either.

use super::{ident, is_method_call, Rule};
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Method names that perform file/socket I/O (or block the thread).
const IO_METHODS: [&str; 16] = [
    "write_all",
    "write_fmt",
    "flush",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "read_line",
    "sync_all",
    "sync_data",
    "accept",
    "connect",
    // The durable store's seam methods are disk I/O by contract.
    "load_report",
    "save_report",
    "load_cache",
    "save_cache",
    "write_atomically",
];

/// Free functions / types whose mention means I/O is happening.
const IO_IDENTS: [&str; 7] = [
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "sleep",
    "rename",
];

/// Method names that acquire a lock inside a `let` initializer.  The
/// service crate holds no `RwLock`, so `.read()`/`.write()` guards are
/// deliberately not tracked (those names mean socket I/O here).
const LOCK_CALLS: [&str; 2] = ["lock", "lock_or_recover"];

pub struct LockAcrossIo;

#[derive(Debug)]
struct Guard {
    depth: u32,
    name: Option<String>,
    line: u32,
}

#[derive(Debug)]
struct PendingLet {
    depth: u32,
    name: Option<String>,
    line: u32,
    takes_lock: bool,
}

impl Rule for LockAcrossIo {
    fn name(&self) -> &'static str {
        "lock-across-io"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/service/src/")
    }

    #[allow(clippy::too_many_lines)]
    fn check(&self, src: &SourceFile, _forced: bool, out: &mut Vec<Finding>) {
        let code = &src.code;
        let mut depth = 0u32;
        let mut guards: Vec<Guard> = Vec::new();
        let mut pending: Vec<PendingLet> = Vec::new();
        for (i, token) in code.iter().enumerate() {
            match &token.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    guards.retain(|g| g.depth < depth);
                    depth = depth.saturating_sub(1);
                }
                TokenKind::Punct(';') if pending.last().is_some_and(|p| p.depth == depth) => {
                    let p = pending.pop().unwrap_or(PendingLet {
                        depth,
                        name: None,
                        line: token.line,
                        takes_lock: false,
                    });
                    if p.takes_lock {
                        guards.push(Guard {
                            depth: p.depth,
                            name: p.name,
                            line: p.line,
                        });
                    }
                }
                TokenKind::Ident(name) if name == "let" => {
                    // `if let` / `while let` bind into a condition, not a
                    // `;`-terminated statement; skip those (see module
                    // docs).
                    let prev = i.checked_sub(1).and_then(|j| ident(code.get(j)));
                    if matches!(prev, Some("if" | "while")) {
                        continue;
                    }
                    let mut j = i + 1;
                    while ident(code.get(j)) == Some("mut") {
                        j += 1;
                    }
                    pending.push(PendingLet {
                        depth,
                        name: ident(code.get(j)).map(str::to_owned),
                        line: token.line,
                        takes_lock: false,
                    });
                }
                TokenKind::Ident(name)
                    if LOCK_CALLS.contains(&name.as_str()) && is_method_call(code, i, name) =>
                {
                    if let Some(p) = pending.last_mut() {
                        if p.depth == depth {
                            p.takes_lock = true;
                        }
                    }
                }
                // The crate's free-function lock helper.
                TokenKind::Ident(name)
                    if name == "lock_or_recover"
                        && crate::source::is_punct(code.get(i + 1), '(') =>
                {
                    if let Some(p) = pending.last_mut() {
                        if p.depth == depth {
                            p.takes_lock = true;
                        }
                    }
                }
                TokenKind::Ident(name)
                    if name == "drop" && crate::source::is_punct(code.get(i + 1), '(') =>
                {
                    if let Some(dropped) = ident(code.get(i + 2)) {
                        guards.retain(|g| g.name.as_deref() != Some(dropped));
                    }
                }
                TokenKind::Ident(name) => {
                    if guards.is_empty() || src.in_test(token.line) {
                        continue;
                    }
                    let is_io = (IO_METHODS.contains(&name.as_str())
                        && is_method_call(code, i, name))
                        || IO_IDENTS.contains(&name.as_str());
                    if is_io {
                        let held: Vec<String> = guards
                            .iter()
                            .map(|g| {
                                format!(
                                    "`{}` (line {})",
                                    g.name.as_deref().unwrap_or("<guard>"),
                                    g.line
                                )
                            })
                            .collect();
                        out.push(Finding {
                            rule: "lock-across-io",
                            file: src.rel_path.clone(),
                            line: token.line,
                            message: format!(
                                "I/O (`{name}`) while lock guard {} is live; do the I/O \
                                 outside the critical section",
                                held.join(", ")
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}
