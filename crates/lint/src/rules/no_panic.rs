//! `no-panic-paths`: non-test service code must not contain reachable
//! panic sites.
//!
//! A panic on the reactor thread kills the event loop for every
//! connection; a panic on a worker thread deadlocks anything waiting on
//! the job (the scheduler fences job execution with `catch_unwind`, but
//! its own bookkeeping must never rely on that fence).  Denied in
//! `crates/service/src` outside `#[cfg(test)]` items:
//!
//! * `.unwrap()` / `.expect(..)` (and the `Err` variants) — use real error
//!   handling, the poison-recovering lock helpers, or `unwrap_or*`;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * slice/str indexing `x[..]` — use `.get(..)` with a graceful
//!   fallback.
//!
//! Genuinely infallible sites keep a `lint:allow` pragma whose mandatory
//! reason documents the invariant.

use super::{is_method_call, Rule};
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Method calls that panic on the error/none path.
const PANICKING_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that are panics by definition.
const PANICKING_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede a `[` that is *not* an indexing
/// expression (slice patterns, array types, array literals).
const NON_INDEX_KEYWORDS: [&str; 20] = [
    "let", "mut", "ref", "dyn", "in", "for", "if", "while", "return", "else", "match", "move",
    "as", "box", "const", "static", "pub", "use", "where", "impl",
];

pub struct NoPanicPaths;

impl Rule for NoPanicPaths {
    fn name(&self) -> &'static str {
        "no-panic-paths"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/service/src/")
    }

    fn check(&self, src: &SourceFile, _forced: bool, out: &mut Vec<Finding>) {
        let code = &src.code;
        for (i, token) in code.iter().enumerate() {
            if src.in_test(token.line) {
                continue;
            }
            let mut report = |message: String| {
                out.push(Finding {
                    rule: "no-panic-paths",
                    file: src.rel_path.clone(),
                    line: token.line,
                    message,
                });
            };
            match &token.kind {
                TokenKind::Ident(name) => {
                    if PANICKING_METHODS.contains(&name.as_str()) && is_method_call(code, i, name) {
                        report(format!(
                            "`.{name}()` can panic on a service thread; handle the error \
                             (or document the invariant with a pragma)"
                        ));
                    } else if PANICKING_MACROS.contains(&name.as_str())
                        && crate::source::is_punct(code.get(i + 1), '!')
                    {
                        report(format!(
                            "`{name}!` on a service path kills the thread that runs it; \
                             return an error instead"
                        ));
                    }
                }
                TokenKind::Punct('[') if i > 0 && is_index_expr(&code[i - 1].kind) => {
                    report(
                        "slice indexing panics when out of bounds; use `.get(..)` with a \
                         fallback"
                            .to_owned(),
                    );
                }
                _ => {}
            }
        }
    }
}

/// Whether a `[` after this token is an indexing expression rather than a
/// slice pattern, array type, attribute, or macro-bracket.
fn is_index_expr(prev: &TokenKind) -> bool {
    match prev {
        TokenKind::Ident(name) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
        TokenKind::Punct(')' | ']') | TokenKind::Str | TokenKind::Number => true,
        _ => false,
    }
}
