//! `atomic-ordering`: atomic operations in the lock-free modules obey a
//! per-module ordering policy.
//!
//! The default contract for a policy module is publication-grade: loads
//! whose result is dereferenced or trusted must be `Acquire`, stores that
//! publish data must be `Release`, read-modify-writes that do both must be
//! `AcqRel` (`SeqCst` always passes).  Plain statistics counters are the
//! exception — they carry no happens-before obligation — so each module
//! allowlists its counter fields for `Relaxed`.
//!
//! Detection is lexical: a method call named like an atomic op whose
//! argument list mentions a memory-ordering identifier.  Calls that pass
//! an ordering through a variable are invisible to this rule; the policy
//! modules use literal orderings everywhere, and new code should too.

use super::{args_end, ident, is_method_call, receiver_idents, Rule};
use crate::diagnostics::Finding;
use crate::source::SourceFile;

/// Memory-ordering identifiers recognized in argument lists.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic read-modify-write method names (one ordering argument).
const RMW_OPS: [&str; 9] = [
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
];

/// Atomic compare-exchange method names (success + failure orderings).
const CAS_OPS: [&str; 3] = ["compare_exchange", "compare_exchange_weak", "fetch_update"];

/// Orderings acceptable for the failure side of a compare-exchange.
const CAS_FAILURE_OK: [&str; 3] = ["Acquire", "Relaxed", "SeqCst"];

#[derive(Clone, Copy)]
struct FieldPolicy {
    /// Receiver identifier this policy binds to ("" = module default).
    field: &'static str,
    load: &'static [&'static str],
    store: &'static [&'static str],
    rmw: &'static [&'static str],
}

/// The publication-grade default: Acquire loads, Release stores, AcqRel
/// read-modify-writes.
const PUBLISH: FieldPolicy = FieldPolicy {
    field: "",
    load: &["Acquire", "SeqCst"],
    store: &["Release", "SeqCst"],
    rmw: &["AcqRel", "SeqCst"],
};

/// Statistics counters: no happens-before obligation in any direction.
const fn counter(field: &'static str) -> FieldPolicy {
    FieldPolicy {
        field,
        load: &["Relaxed"],
        store: &["Relaxed"],
        rmw: &["Relaxed"],
    }
}

struct ModulePolicy {
    suffix: &'static str,
    fields: &'static [FieldPolicy],
}

/// The policy table.  Every module scanned by this rule must appear here;
/// fields not listed fall back to [`PUBLISH`].
const POLICIES: [ModulePolicy; 6] = [
    ModulePolicy {
        // Lock-free memo table: bucket pointers are published via
        // AcqRel swaps/CAS and acquired before dereference; the occupancy
        // and replacement statistics are plain counters.
        suffix: "crates/core/src/memo.rs",
        fields: &[counter("occupied"), counter("replacements")],
    },
    ModulePolicy {
        // Cancellation token: `cancelled` is a monotonic latch.  Setting
        // it publishes with Release; polling it may be Relaxed because a
        // stale `false` only delays cancellation by one check interval and
        // the token carries no payload to acquire.
        suffix: "crates/sim/src/cancel.rs",
        fields: &[FieldPolicy {
            field: "cancelled",
            load: &["Relaxed", "Acquire"],
            store: &["Release", "SeqCst"],
            rmw: &["AcqRel", "SeqCst"],
        }],
    },
    ModulePolicy {
        // Event-loop reactor: all its atomics are monitoring counters
        // mirrored into stats responses; none publish memory.
        suffix: "crates/service/src/reactor.rs",
        fields: &[
            counter("connections_open"),
            counter("connections_accepted"),
            counter("connections_closed"),
            counter("loop_wakeups"),
            counter("write_queue_hwm"),
            counter("notifications_pushed"),
            counter("watches_active"),
        ],
    },
    ModulePolicy {
        // Metrics registry: counter and gauge cells are plain statistics
        // (both store their payload in a field named `value`); scrapes
        // tolerate torn cross-metric snapshots by design.
        suffix: "crates/obs/src/registry.rs",
        fields: &[counter("value")],
    },
    ModulePolicy {
        // Latency histogram: every cell is a statistics counter.  A scrape
        // may observe `count` ahead of `buckets`; the encoder clamps
        // instead of acquiring.
        suffix: "crates/obs/src/histogram.rs",
        fields: &[
            counter("buckets"),
            counter("count"),
            counter("sum"),
            counter("min"),
            counter("max"),
        ],
    },
    ModulePolicy {
        // Per-thread trace ring: a seqlock.  `seq` publishes with
        // Release/Acquire (the PUBLISH default); the payload words between
        // the seq bumps are Relaxed stores ordered by them, and `head` is
        // single-writer (Relaxed self-reads, Release publication).
        suffix: "crates/obs/src/trace.rs",
        fields: &[
            FieldPolicy {
                field: "head",
                load: &["Relaxed", "Acquire"],
                store: &["Release", "SeqCst"],
                rmw: &["AcqRel", "SeqCst"],
            },
            FieldPolicy {
                field: "job",
                load: &["Acquire", "SeqCst"],
                store: &["Relaxed", "Release"],
                rmw: &["AcqRel", "SeqCst"],
            },
            FieldPolicy {
                field: "stage_arg",
                load: &["Acquire", "SeqCst"],
                store: &["Relaxed", "Release"],
                rmw: &["AcqRel", "SeqCst"],
            },
            FieldPolicy {
                field: "at_ns",
                load: &["Acquire", "SeqCst"],
                store: &["Relaxed", "Release"],
                rmw: &["AcqRel", "SeqCst"],
            },
            counter("NEXT_SINK_ID"),
        ],
    },
];

/// Fixture-mode fields: receivers mentioning `counter` are counters, and
/// `value` mirrors the metric cells of `micrograd_obs::registry` so the
/// obs fixture pair can exercise that policy shape.
const FIXTURE_FIELDS: [FieldPolicy; 2] = [counter("counter"), counter("value")];

pub struct AtomicOrdering;

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn applies(&self, rel_path: &str) -> bool {
        POLICIES.iter().any(|p| rel_path.ends_with(p.suffix))
    }

    fn check(&self, src: &SourceFile, forced: bool, out: &mut Vec<Finding>) {
        let fields: &[FieldPolicy] =
            match POLICIES.iter().find(|p| src.rel_path.ends_with(p.suffix)) {
                Some(policy) => policy.fields,
                None if forced => &FIXTURE_FIELDS,
                None => return,
            };
        let code = &src.code;
        for i in 0..code.len() {
            let Some(op) = ident(code.get(i)) else {
                continue;
            };
            let is_atomic_op =
                op == "load" || op == "store" || RMW_OPS.contains(&op) || CAS_OPS.contains(&op);
            if !is_atomic_op || !is_method_call(code, i, op) {
                continue;
            }
            let line = code[i].line;
            if src.in_test(line) {
                continue;
            }
            let close = args_end(code, i + 1);
            let orderings: Vec<&str> = code[i + 1..=close]
                .iter()
                .filter_map(|t| ident(Some(t)))
                .filter(|name| ORDERINGS.contains(name))
                .collect();
            if orderings.is_empty() {
                // Not an atomic call (Vec::swap, serde load, ...), or the
                // ordering is behind a variable and invisible to us.
                continue;
            }
            let receiver = receiver_idents(code, i - 1);
            let policy = fields
                .iter()
                .find(|f| receiver.iter().any(|r| r == f.field))
                .copied()
                .unwrap_or(PUBLISH);
            let receiver_text = {
                let mut parts: Vec<&str> = receiver.iter().map(String::as_str).collect();
                parts.reverse();
                parts.join(".")
            };
            let mut complain = |allowed: &[&str], got: &str, side: &str| {
                out.push(Finding {
                    rule: "atomic-ordering",
                    file: src.rel_path.clone(),
                    line,
                    message: format!(
                        "`{receiver_text}.{op}` uses Ordering::{got}{side}; module policy \
                         allows {allowed:?} here"
                    ),
                });
            };
            if CAS_OPS.contains(&op) {
                if let Some(success) = orderings.first() {
                    if !policy.rmw.contains(success) {
                        complain(policy.rmw, success, " (success ordering)");
                    }
                }
                if let Some(failure) = orderings.get(1) {
                    let relaxed_cas = policy.rmw.contains(&"Relaxed");
                    if !CAS_FAILURE_OK.contains(failure) && !relaxed_cas {
                        complain(&CAS_FAILURE_OK, failure, " (failure ordering)");
                    }
                }
            } else {
                let allowed = match op {
                    "load" => policy.load,
                    "store" => policy.store,
                    _ => policy.rmw,
                };
                for got in &orderings {
                    if !allowed.contains(got) {
                        complain(allowed, got, "");
                    }
                }
            }
        }
    }
}
