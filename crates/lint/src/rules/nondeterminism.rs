//! `nondeterminism`: wall-clock and ambient-randomness reads are confined
//! to an allowlist of modules.
//!
//! Bit-identical cloning is the paper's core claim; a single
//! `Instant::now` on an evaluation path quietly breaks replayability.
//! Evaluation crates (`isa`, `codegen`, `sim`, `power`, `workloads`,
//! `core`, `obs`, and the facade) may not read clocks or entropy — all
//! randomness flows through explicitly seeded ChaCha8 streams.  Two
//! modules are allowlisted: the simulator's cancellation token, whose
//! whole purpose is deadline latching, and the observability clock
//! (`micrograd_obs::clock`), the single monotonic anchor every trace
//! timestamp flows through; the service crates (wall-clock timeouts,
//! jittered retries) are outside this rule's scope entirely.

use super::{ident, Rule};
use crate::diagnostics::Finding;
use crate::source::SourceFile;

/// Crate source trees that must stay deterministic.
const SCOPES: [&str; 8] = [
    "crates/isa/src/",
    "crates/codegen/src/",
    "crates/sim/src/",
    "crates/power/src/",
    "crates/workloads/src/",
    "crates/core/src/",
    "crates/obs/src/",
    "src/",
];

/// Modules allowed to read the clock: cancellation deadlines are
/// wall-clock by definition and never feed evaluation results, and the
/// observability layer's anchored monotonic clock stamps trace metadata
/// only — never job identity or tuning output.
const ALLOWLIST: [&str; 2] = ["crates/sim/src/cancel.rs", "crates/obs/src/clock.rs"];

/// `Type::now()` clock sources.
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

/// Ambient entropy sources (any mention is a finding).
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

pub struct Nondeterminism;

impl Rule for Nondeterminism {
    fn name(&self) -> &'static str {
        "nondeterminism"
    }

    fn applies(&self, rel_path: &str) -> bool {
        SCOPES.iter().any(|s| rel_path.starts_with(s)) && !ALLOWLIST.contains(&rel_path)
    }

    fn check(&self, src: &SourceFile, _forced: bool, out: &mut Vec<Finding>) {
        let code = &src.code;
        for (i, token) in code.iter().enumerate() {
            let Some(name) = ident(Some(token)) else {
                continue;
            };
            if src.in_test(token.line) {
                continue;
            }
            let mut report = |message: String| {
                out.push(Finding {
                    rule: "nondeterminism",
                    file: src.rel_path.clone(),
                    line: token.line,
                    message,
                });
            };
            if CLOCK_TYPES.contains(&name)
                && crate::source::is_punct(code.get(i + 1), ':')
                && crate::source::is_punct(code.get(i + 2), ':')
                && ident(code.get(i + 3)) == Some("now")
            {
                report(format!(
                    "`{name}::now()` in a deterministic crate; clocks are confined to \
                     the cancellation module — thread a seed or deadline in instead"
                ));
            } else if ENTROPY_IDENTS.contains(&name) {
                report(format!(
                    "ambient entropy (`{name}`) in a deterministic crate; use an \
                     explicitly seeded ChaCha8 stream"
                ));
            }
        }
    }
}
