//! Assembly emission: render a test case as RISC-V assembly text.

use crate::TestCase;
use std::fmt::Write as _;

/// Renders a [`TestCase`] as a self-contained RISC-V assembly listing.
///
/// The output is what a user would assemble and run on native hardware or
/// feed to a full-system simulator: a data section sized to the memory
/// streams, a register-initialization preamble, and the endless loop body.
///
/// # Example
///
/// ```
/// use micrograd_codegen::{AssemblyEmitter, Generator, GeneratorInput};
///
/// let input = GeneratorInput { loop_size: 16, ..GeneratorInput::default() };
/// let tc = Generator::new().generate(&input)?;
/// let asm = AssemblyEmitter::new().emit(&tc);
/// assert!(asm.contains(".globl _start"));
/// assert!(asm.contains("loop_body:"));
/// # Ok::<(), micrograd_codegen::CodegenError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AssemblyEmitter {
    include_comments: bool,
}

impl AssemblyEmitter {
    /// Creates an emitter that includes explanatory comments.
    #[must_use]
    pub fn new() -> Self {
        AssemblyEmitter {
            include_comments: true,
        }
    }

    /// Disables comments in the output.
    #[must_use]
    pub fn without_comments(mut self) -> Self {
        self.include_comments = false;
        self
    }

    /// Emits the assembly listing.
    #[must_use]
    pub fn emit(&self, test_case: &TestCase) -> String {
        let mut out = String::new();
        if self.include_comments {
            let _ = writeln!(
                out,
                "# MicroGrad synthetic test case: {}",
                test_case.metadata().name
            );
            let _ = writeln!(out, "# seed: {}", test_case.metadata().seed);
            let _ = writeln!(
                out,
                "# passes: {}",
                test_case.metadata().applied_passes.join(", ")
            );
        }
        let _ = writeln!(out, "    .section .data");
        for stream in test_case.streams() {
            let _ = writeln!(out, "stream_{}:", stream.id);
            let _ = writeln!(out, "    .zero {}", stream.footprint);
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "    .section .text");
        let _ = writeln!(out, "    .globl _start");
        let _ = writeln!(out, "_start:");
        // register initialization preamble
        let init = test_case.metadata().init_reg_value;
        let _ = writeln!(out, "    li x5, {init}");
        let _ = writeln!(out, "    fcvt.d.w f5, x5");
        for stream in test_case.streams() {
            let base_reg = crate::passes::GenericMemoryStreamsPass::stream_base_reg(stream.id);
            let _ = writeln!(out, "    la {base_reg}, stream_{}", stream.id);
        }
        let _ = writeln!(out, "    li x31, 0");
        let _ = writeln!(out, "    li x30, -1");
        let _ = writeln!(out);
        let _ = writeln!(out, "loop_body:");
        for instr in test_case.block().iter() {
            if self.include_comments {
                let _ = writeln!(
                    out,
                    "    {:<40} # pc {:#x}",
                    instr.to_asm(),
                    instr.address()
                );
            } else {
                let _ = writeln!(out, "    {}", instr.to_asm());
            }
        }
        let _ = writeln!(out, "    j loop_body");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Generator, GeneratorInput};

    fn testcase() -> TestCase {
        let input = GeneratorInput {
            loop_size: 32,
            ..GeneratorInput::default()
        };
        Generator::new().generate(&input).unwrap()
    }

    #[test]
    fn emits_all_sections() {
        let asm = AssemblyEmitter::new().emit(&testcase());
        assert!(asm.contains(".section .data"));
        assert!(asm.contains(".section .text"));
        assert!(asm.contains("_start:"));
        assert!(asm.contains("loop_body:"));
        assert!(asm.contains("stream_0:"));
        assert!(asm.contains("stream_1:"));
    }

    #[test]
    fn one_line_per_instruction() {
        let tc = testcase();
        let asm = AssemblyEmitter::new().without_comments().emit(&tc);
        let body_lines = asm
            .lines()
            .skip_while(|l| !l.starts_with("loop_body:"))
            .skip(1)
            .take_while(|l| !l.contains("j loop_body"))
            .count();
        assert_eq!(body_lines, tc.block().len());
    }

    #[test]
    fn comments_toggle() {
        let tc = testcase();
        let with = AssemblyEmitter::new().emit(&tc);
        let without = AssemblyEmitter::new().without_comments().emit(&tc);
        assert!(with.contains('#'));
        assert!(!without.lines().any(|l| l.trim_start().starts_with('#')));
        assert!(with.len() > without.len());
    }

    #[test]
    fn data_section_sizes_match_footprints() {
        let tc = testcase();
        let asm = AssemblyEmitter::new().emit(&tc);
        for stream in tc.streams() {
            assert!(asm.contains(&format!(".zero {}", stream.footprint)));
        }
    }
}
