//! The synthesizer: applies passes in the MicroGrad-defined order.

use crate::passes::{Pass, PassContext};
use crate::{CodegenError, TestCase};

/// Applies an ordered sequence of passes to produce a [`TestCase`].
///
/// The synthesizer owns the ordering rules: passes run in the order they
/// were added, each pass name is recorded in the test-case metadata, and the
/// whole run shares a single deterministic random number generator seeded
/// from the synthesizer seed.
///
/// # Example
///
/// ```
/// use micrograd_codegen::passes::{
///     SimpleBuildingBlockPass, SetInstructionTypeByProfilePass, UpdateInstructionAddressesPass,
/// };
/// use micrograd_codegen::{InstructionProfile, Synthesizer};
/// use micrograd_isa::Opcode;
///
/// let profile = InstructionProfile::new().with(Opcode::Add, 1.0);
/// let test_case = Synthesizer::new(42)
///     .with_pass(SimpleBuildingBlockPass::new(32))
///     .with_pass(SetInstructionTypeByProfilePass::new(profile))
///     .with_pass(UpdateInstructionAddressesPass::new())
///     .synthesize()?;
/// assert_eq!(test_case.block().len(), 32);
/// # Ok::<(), micrograd_codegen::CodegenError>(())
/// ```
pub struct Synthesizer {
    passes: Vec<Box<dyn Pass>>,
    seed: u64,
    name: String,
}

impl std::fmt::Debug for Synthesizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synthesizer")
            .field("seed", &self.seed)
            .field("name", &self.name)
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Synthesizer {
    /// Creates an empty synthesizer with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Synthesizer {
            passes: Vec::new(),
            seed,
            name: "testcase".to_owned(),
        }
    }

    /// Sets the human-readable name recorded in the test-case metadata.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Number of passes currently registered.
    #[must_use]
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Runs every pass in order and returns the synthesized test case.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn synthesize(&self) -> Result<TestCase, CodegenError> {
        let mut test_case = TestCase::new();
        let mut ctx = PassContext::new(self.seed);
        test_case.metadata_mut().name = self.name.clone();
        test_case.metadata_mut().seed = self.seed;
        for pass in &self.passes {
            pass.apply(&mut test_case, &mut ctx)?;
            test_case
                .metadata_mut()
                .applied_passes
                .push(pass.name().to_owned());
        }
        Ok(test_case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{
        DefaultRegisterAllocationPass, GenericMemoryStreamsPass, MemoryStreamSpec,
        RandomizeByTypePass, ReserveRegistersPass, SetInstructionTypeByProfilePass,
        SimpleBuildingBlockPass, UpdateInstructionAddressesPass,
    };
    use crate::InstructionProfile;
    use micrograd_isa::{InstrClass, Opcode};

    fn full_pipeline(seed: u64) -> Synthesizer {
        let profile = InstructionProfile::new()
            .with(Opcode::Add, 2.0)
            .with(Opcode::FmulD, 1.0)
            .with(Opcode::Beq, 1.0)
            .with(Opcode::Ld, 2.0)
            .with(Opcode::Sd, 1.0);
        Synthesizer::new(seed)
            .with_name("full")
            .with_pass(SimpleBuildingBlockPass::new(128))
            .with_pass(ReserveRegistersPass::new(vec![
                SimpleBuildingBlockPass::loop_counter_reg(),
                SimpleBuildingBlockPass::loop_bound_reg(),
            ]))
            .with_pass(SetInstructionTypeByProfilePass::new(profile))
            .with_pass(RandomizeByTypePass::new(InstrClass::Branch, 0.5))
            .with_pass(GenericMemoryStreamsPass::new(vec![
                MemoryStreamSpec::sequential(0, 64 * 1024, 8),
            ]))
            .with_pass(DefaultRegisterAllocationPass::new(4))
            .with_pass(UpdateInstructionAddressesPass::new())
    }

    #[test]
    fn full_pipeline_produces_complete_testcase() {
        let tc = full_pipeline(1).synthesize().unwrap();
        assert_eq!(tc.block().len(), 128);
        assert!(tc.block().iter().all(|i| i.opcode() != Opcode::Nop));
        assert_eq!(tc.metadata().applied_passes.len(), 7);
        assert_eq!(tc.metadata().name, "full");
        assert_eq!(tc.metadata().seed, 1);
        // every memory op has a stream and every non-memory op does not
        for i in tc.block().iter() {
            assert_eq!(i.mem().is_some(), i.opcode().is_memory());
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = full_pipeline(9).synthesize().unwrap();
        let b = full_pipeline(9).synthesize().unwrap();
        let c = full_pipeline(10).synthesize().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pass_error_propagates() {
        let result = Synthesizer::new(0)
            .with_pass(SetInstructionTypeByProfilePass::new(
                InstructionProfile::new().with(Opcode::Add, 1.0),
            ))
            .synthesize();
        assert!(matches!(result, Err(CodegenError::InvalidState { .. })));
    }

    #[test]
    fn add_pass_and_num_passes() {
        let mut s = Synthesizer::new(0);
        assert_eq!(s.num_passes(), 0);
        s.add_pass(Box::new(SimpleBuildingBlockPass::new(16)));
        assert_eq!(s.num_passes(), 1);
        assert!(format!("{s:?}").contains("SimpleBuildingBlockPass"));
    }
}
