//! The test-case intermediate representation produced by the passes.

use micrograd_isa::{InstrClass, Instruction, Reg};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A building block: the loop body of a synthetic test case.
///
/// MicroGrad test cases are "roughly 500 static instructions in an endless
/// loop"; the building block holds those static instructions in program
/// order.  The final instruction is conventionally the loop back-edge
/// branch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildingBlock {
    instructions: Vec<Instruction>,
}

impl BuildingBlock {
    /// Creates an empty building block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a building block from existing instructions.
    #[must_use]
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        BuildingBlock { instructions }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the block holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Immutable view of the instructions in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable view of the instructions in program order.
    pub fn instructions_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instructions
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Static instruction-class distribution of the block, normalized to 1.0
    /// (empty map if the block is empty).
    #[must_use]
    pub fn class_distribution(&self) -> BTreeMap<InstrClass, f64> {
        micrograd_isa::class_distribution(self.instructions.iter().map(Instruction::class))
    }
}

impl<'a> IntoIterator for &'a BuildingBlock {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// A memory stream attached to a test case.
///
/// Mirrors the `GenericMemoryStreamsPass` arguments of Listing 2:
/// each stream has a footprint, an access-ratio weight, a stride and a
/// temporal-locality description; loads and stores in the block are
/// assigned to streams according to the ratio weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryStream {
    /// Stream identifier (also recorded in each `MemAccess`).
    pub id: u32,
    /// Footprint of the stream in bytes (the `MEM_SIZE` knob, resolved).
    pub footprint: u64,
    /// Relative weight: fraction of memory instructions mapped to this stream.
    pub ratio: f64,
    /// Per-iteration stride in bytes (the `MEM_STRIDE` knob).
    pub stride: u64,
    /// Temporal-locality window: how many recent addresses are candidates
    /// for re-use (the `MEM_TEMP1` knob).
    pub reuse_window: u64,
    /// Temporal-locality period: re-use is attempted once every this many
    /// accesses (the `MEM_TEMP2` knob); larger values mean *less* re-use.
    pub reuse_period: u64,
    /// Base virtual address of the stream's data region.
    pub base: u64,
}

impl MemoryStream {
    /// Probability that a dynamic access to this stream re-uses a recent
    /// address instead of advancing, derived from the temporal knobs.
    ///
    /// `reuse_period == 1` means no re-use (the stream always advances);
    /// larger periods increase the re-use fraction asymptotically towards 1.
    #[must_use]
    pub fn reuse_probability(&self) -> f64 {
        if self.reuse_period <= 1 {
            0.0
        } else {
            1.0 - 1.0 / self.reuse_period as f64
        }
    }
}

/// Metadata recorded alongside a generated test case.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TestCaseMetadata {
    /// Human-readable name.
    pub name: String,
    /// Seed used for all stochastic decisions during generation.
    pub seed: u64,
    /// Initial integer value loaded into each initialized register.
    pub init_reg_value: i64,
    /// Names of the passes applied, in order.
    pub applied_passes: Vec<String>,
}

/// A synthesized test case: the unit exchanged between the code generator,
/// the evaluation platform and the tuner.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    block: BuildingBlock,
    streams: Vec<MemoryStream>,
    reserved_regs: Vec<Reg>,
    metadata: TestCaseMetadata,
}

impl TestCase {
    /// Creates an empty test case (no instructions, no streams).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The loop body.
    #[must_use]
    pub fn block(&self) -> &BuildingBlock {
        &self.block
    }

    /// Mutable access to the loop body (used by passes).
    pub fn block_mut(&mut self) -> &mut BuildingBlock {
        &mut self.block
    }

    /// The memory streams attached to this test case.
    #[must_use]
    pub fn streams(&self) -> &[MemoryStream] {
        &self.streams
    }

    /// Mutable access to the memory streams (used by passes).
    pub fn streams_mut(&mut self) -> &mut Vec<MemoryStream> {
        &mut self.streams
    }

    /// Registers reserved for infrastructure (loop counter, stream bases)
    /// that the register allocator must not clobber.
    #[must_use]
    pub fn reserved_regs(&self) -> &[Reg] {
        &self.reserved_regs
    }

    /// Mutable access to the reserved register list (used by passes).
    pub fn reserved_regs_mut(&mut self) -> &mut Vec<Reg> {
        &mut self.reserved_regs
    }

    /// Returns `true` if `reg` is reserved.
    #[must_use]
    pub fn is_reserved(&self, reg: Reg) -> bool {
        self.reserved_regs.contains(&reg)
    }

    /// Test-case metadata.
    #[must_use]
    pub fn metadata(&self) -> &TestCaseMetadata {
        &self.metadata
    }

    /// Mutable access to the metadata (used by passes).
    pub fn metadata_mut(&mut self) -> &mut TestCaseMetadata {
        &mut self.metadata
    }

    /// Static instruction-class distribution of the loop body.
    #[must_use]
    pub fn class_distribution(&self) -> BTreeMap<InstrClass, f64> {
        self.block.class_distribution()
    }

    /// Total footprint (bytes) across all memory streams.
    #[must_use]
    pub fn total_footprint(&self) -> u64 {
        self.streams.iter().map(|s| s.footprint).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micrograd_isa::{Instruction, Opcode, Reg};

    #[test]
    fn building_block_push_and_len() {
        let mut b = BuildingBlock::new();
        assert!(b.is_empty());
        b.push(Instruction::rrr(
            Opcode::Add,
            Reg::x(1),
            Reg::x(2),
            Reg::x(3),
        ));
        b.push(Instruction::new(Opcode::Nop));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.iter().count(), 2);
        assert_eq!((&b).into_iter().count(), 2);
    }

    #[test]
    fn class_distribution_normalizes() {
        let mut b = BuildingBlock::new();
        for _ in 0..3 {
            b.push(Instruction::rrr(
                Opcode::Add,
                Reg::x(1),
                Reg::x(2),
                Reg::x(3),
            ));
        }
        b.push(Instruction::rrr(
            Opcode::FaddD,
            Reg::f(1),
            Reg::f(2),
            Reg::f(3),
        ));
        let d = b.class_distribution();
        assert!((d[&InstrClass::Integer] - 0.75).abs() < 1e-12);
        assert!((d[&InstrClass::Float] - 0.25).abs() < 1e-12);
        let total: f64 = d.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_block_distribution_is_empty() {
        assert!(BuildingBlock::new().class_distribution().is_empty());
    }

    #[test]
    fn stream_reuse_probability() {
        let mut s = MemoryStream {
            id: 0,
            footprint: 1024,
            ratio: 1.0,
            stride: 8,
            reuse_window: 16,
            reuse_period: 1,
            base: 0x1000,
        };
        assert_eq!(s.reuse_probability(), 0.0);
        s.reuse_period = 2;
        assert!((s.reuse_probability() - 0.5).abs() < 1e-12);
        s.reuse_period = 10;
        assert!((s.reuse_probability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn testcase_reserved_registers() {
        let mut tc = TestCase::new();
        tc.reserved_regs_mut().push(Reg::x(10));
        assert!(tc.is_reserved(Reg::x(10)));
        assert!(!tc.is_reserved(Reg::x(11)));
    }

    #[test]
    fn testcase_total_footprint() {
        let mut tc = TestCase::new();
        tc.streams_mut().push(MemoryStream {
            id: 0,
            footprint: 4096,
            ratio: 0.5,
            stride: 8,
            reuse_window: 1,
            reuse_period: 1,
            base: 0,
        });
        tc.streams_mut().push(MemoryStream {
            id: 1,
            footprint: 8192,
            ratio: 0.5,
            stride: 64,
            reuse_window: 1,
            reuse_period: 1,
            base: 0x10000,
        });
        assert_eq!(tc.total_footprint(), 12288);
    }

    #[test]
    fn serde_round_trip() {
        let mut tc = TestCase::new();
        tc.block_mut().push(Instruction::rrr(
            Opcode::Add,
            Reg::x(1),
            Reg::x(2),
            Reg::x(3),
        ));
        tc.metadata_mut().name = "t".into();
        let json = serde_json::to_string(&tc).unwrap();
        let back: TestCase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tc);
    }
}
