//! # micrograd-codegen
//!
//! A Microprobe-like, pass-based synthetic test-case generator.
//!
//! The MicroGrad paper uses IBM's [Microprobe] code-generation framework as
//! its back-end: the tuning mechanism hands Microprobe a *knob
//! configuration* (instruction-class fractions, register dependency
//! distance, memory footprint / stride / temporal locality, branch pattern
//! randomness) and Microprobe produces a test case — a loop of roughly 500
//! static instructions — by running a sequence of code-synthesis *passes*
//! (Listing 2 of the paper).
//!
//! This crate reproduces that pipeline for the RISC-V subset defined in
//! `micrograd_isa`:
//!
//! * [`TestCase`] — the generated artifact: a building block (loop body),
//!   its memory streams, reserved registers and metadata.
//! * [`passes`] — the pass framework and the concrete passes named in the
//!   paper (`SimpleBuildingBlockPass`, `SetInstructionTypeByProfilePass`,
//!   `RandomizeByTypePass`, `GenericMemoryStreamsPass`,
//!   `DefaultRegisterAllocationPass`, `UpdateInstructionAddressesPass`, …).
//! * [`Synthesizer`] — applies passes in the MicroGrad-defined order.
//! * [`GeneratorInput`] / [`Generator`] — the knob-level entry point used by
//!   the tuner: resolved knob values in, [`TestCase`] out.
//! * [`Trace`] / [`TraceExpander`] — expansion of the static loop into a
//!   dynamic instruction stream (branch outcomes, memory addresses) that the
//!   performance simulator consumes.
//! * [`TraceSource`] — the streaming trace abstraction: dynamic
//!   instructions on demand, in O(loop size) memory.  Implemented by
//!   [`StreamingExpander`] (the cursor form of [`TraceExpander::expand`],
//!   bit-identical stream), [`TraceCursor`] (replay of a materialized
//!   [`Trace`]), [`PhaseSchedule`] (concatenation of per-phase sources —
//!   phase-structured workloads) and [`WindowedSource`]
//!   ([`TraceSource::window`]: skip/take by dynamic index — SimPoint
//!   interval replay without materialization, see `docs/simpoint.md`).
//!   See `docs/streaming.md` at the repository root for the architecture
//!   and memory model.
//! * [`AssemblyEmitter`] — renders the test case as RISC-V assembly text,
//!   which is what a user would compile and run on native hardware.
//!
//! [Microprobe]: https://github.com/IBM/microprobe
//!
//! # Example
//!
//! ```
//! use micrograd_codegen::{Generator, GeneratorInput, TraceExpander};
//!
//! let input = GeneratorInput {
//!     loop_size: 64,
//!     seed: 7,
//!     ..GeneratorInput::default()
//! };
//! let test_case = Generator::new().generate(&input)?;
//! assert_eq!(test_case.block().len(), 64);
//!
//! // Expand to a dynamic trace for the simulator.
//! let trace = TraceExpander::new(10_000, 7).expand(&test_case);
//! assert_eq!(trace.len(), 10_000);
//! # Ok::<(), micrograd_codegen::CodegenError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod asm;
mod error;
mod generator;
pub mod passes;
mod profile;
mod source;
mod synth;
mod testcase;
mod trace;

pub use asm::AssemblyEmitter;
pub use error::CodegenError;
pub use generator::{Generator, GeneratorInput};
pub use profile::InstructionProfile;
pub use source::{
    collect_trace, PhaseSchedule, StreamingExpander, TraceCursor, TraceSource, WindowedSource,
};
pub use synth::Synthesizer;
pub use testcase::{BuildingBlock, MemoryStream, TestCase, TestCaseMetadata};
pub use trace::{DynamicInstr, Trace, TraceExpander};
