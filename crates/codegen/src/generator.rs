//! The knob-level generator: resolved knob values in, test case out.

use crate::passes::{
    DefaultRegisterAllocationPass, GenericMemoryStreamsPass, InitializeRegistersPass,
    MemoryStreamSpec, RandomizeByTypePass, ReserveRegistersPass, SetInstructionTypeByProfilePass,
    SimpleBuildingBlockPass, UpdateInstructionAddressesPass,
};
use crate::{CodegenError, InstructionProfile, Synthesizer, TestCase};
use micrograd_isa::{InstrClass, Opcode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Resolved knob values, the input to the code generator.
///
/// This structure is the concrete realization of the "knob interface"
/// described in Section III-B of the paper (Listing 1): the tuning mechanism
/// manipulates knob *indices*, resolves them to these values, and hands them
/// to the generator, which assembles the pass pipeline of Listing 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorInput {
    /// Number of static instructions in the loop body (paper: ~500).
    pub loop_size: usize,
    /// Relative weights per opcode — the instruction-fraction knobs
    /// (`ADD`, `MUL`, `FADDD`, `FMULD`, `BEQ`, `BNE`, `LD`, `LW`, `SD`, `SW`).
    pub instr_weights: BTreeMap<Opcode, f64>,
    /// Register dependency distance (`REG_DIST`).
    pub reg_dependency_distance: u32,
    /// Memory footprint in kilobytes (`MEM_SIZE`).
    pub mem_footprint_kb: u64,
    /// Memory stride in bytes (`MEM_STRIDE`).
    pub mem_stride: u64,
    /// Temporal-locality window: how many recent addresses are re-use
    /// candidates (`MEM_TEMP1`).
    pub mem_temporal_window: u64,
    /// Temporal-locality period: re-use attempted every N accesses
    /// (`MEM_TEMP2`); 1 disables re-use.
    pub mem_temporal_period: u64,
    /// Branch pattern randomization ratio (`B_PATTERN`), 0.0–1.0.
    pub branch_randomness: f64,
    /// Initial value loaded into registers before the loop.
    pub init_reg_value: i64,
    /// Seed for all stochastic generation decisions.
    pub seed: u64,
    /// Name recorded in the test-case metadata.
    pub name: String,
}

impl Default for GeneratorInput {
    fn default() -> Self {
        let mut instr_weights = BTreeMap::new();
        for op in [
            Opcode::Add,
            Opcode::Mul,
            Opcode::FaddD,
            Opcode::FmulD,
            Opcode::Beq,
            Opcode::Bne,
            Opcode::Ld,
            Opcode::Lw,
            Opcode::Sd,
            Opcode::Sw,
        ] {
            instr_weights.insert(op, 1.0);
        }
        GeneratorInput {
            loop_size: 500,
            instr_weights,
            reg_dependency_distance: 4,
            mem_footprint_kb: 64,
            mem_stride: 16,
            mem_temporal_window: 8,
            mem_temporal_period: 1,
            branch_randomness: 0.2,
            init_reg_value: 1,
            seed: 0,
            name: "micrograd-testcase".to_owned(),
        }
    }
}

impl GeneratorInput {
    /// Sets the weight of one instruction knob.
    pub fn set_weight(&mut self, opcode: Opcode, weight: f64) {
        self.instr_weights.insert(opcode, weight);
    }

    /// The instruction profile implied by the weights.
    #[must_use]
    pub fn profile(&self) -> InstructionProfile {
        self.instr_weights.iter().map(|(op, w)| (*op, *w)).collect()
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::InvalidParameter`] if a value is out of range.
    pub fn validate(&self) -> Result<(), CodegenError> {
        if self.loop_size < 4 {
            return Err(CodegenError::InvalidParameter {
                parameter: "loop_size".into(),
                reason: format!("must be at least 4, got {}", self.loop_size),
            });
        }
        if !(0.0..=1.0).contains(&self.branch_randomness) {
            return Err(CodegenError::InvalidParameter {
                parameter: "branch_randomness".into(),
                reason: format!("must be within [0, 1], got {}", self.branch_randomness),
            });
        }
        if self.mem_footprint_kb == 0 {
            return Err(CodegenError::InvalidParameter {
                parameter: "mem_footprint_kb".into(),
                reason: "must be positive".into(),
            });
        }
        if self.mem_stride == 0 {
            return Err(CodegenError::InvalidParameter {
                parameter: "mem_stride".into(),
                reason: "must be positive".into(),
            });
        }
        if self.instr_weights.values().all(|w| *w <= 0.0) {
            return Err(CodegenError::EmptyProfile);
        }
        Ok(())
    }
}

/// The knob-level code generator.
///
/// Builds the standard MicroGrad pass pipeline (Listing 2 of the paper) from
/// a [`GeneratorInput`] and synthesizes the test case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Generator {
    _private: (),
}

impl Generator {
    /// Creates a generator.
    #[must_use]
    pub fn new() -> Self {
        Generator::default()
    }

    /// Synthesizes a test case from resolved knob values.
    ///
    /// # Errors
    ///
    /// Returns a [`CodegenError`] if the input fails validation or a pass
    /// cannot be applied.
    pub fn generate(&self, input: &GeneratorInput) -> Result<TestCase, CodegenError> {
        input.validate()?;
        let footprint_bytes = input.mem_footprint_kb * 1024;
        // Two streams as in Listing 2 of the paper: a primary stream with
        // the requested stride and a secondary stream with a cache-line
        // stride, splitting the footprint 3:1.
        let streams = vec![
            MemoryStreamSpec {
                id: 0,
                footprint: (footprint_bytes * 3 / 4).max(64),
                ratio: 0.75,
                stride: input.mem_stride,
                reuse_window: input.mem_temporal_window,
                reuse_period: input.mem_temporal_period,
            },
            MemoryStreamSpec {
                id: 1,
                footprint: (footprint_bytes / 4).max(64),
                ratio: 0.25,
                stride: 64,
                reuse_window: input.mem_temporal_window,
                reuse_period: input.mem_temporal_period,
            },
        ];

        Synthesizer::new(input.seed)
            .with_name(input.name.clone())
            .with_pass(SimpleBuildingBlockPass::new(input.loop_size))
            .with_pass(ReserveRegistersPass::new(vec![
                SimpleBuildingBlockPass::loop_counter_reg(),
                SimpleBuildingBlockPass::loop_bound_reg(),
            ]))
            .with_pass(SetInstructionTypeByProfilePass::new(input.profile()))
            .with_pass(InitializeRegistersPass::new(input.init_reg_value))
            .with_pass(RandomizeByTypePass::new(
                InstrClass::Branch,
                input.branch_randomness,
            ))
            .with_pass(GenericMemoryStreamsPass::new(streams))
            .with_pass(DefaultRegisterAllocationPass::new(
                input.reg_dependency_distance as usize,
            ))
            .with_pass(UpdateInstructionAddressesPass::new())
            .synthesize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_input_generates_a_full_testcase() {
        let input = GeneratorInput::default();
        let tc = Generator::new().generate(&input).unwrap();
        assert_eq!(tc.block().len(), 500);
        assert_eq!(tc.streams().len(), 2);
        assert!(tc.metadata().applied_passes.len() >= 8);
        assert!(tc.block().iter().all(|i| i.opcode() != Opcode::Nop));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut input = GeneratorInput {
            loop_size: 100,
            ..GeneratorInput::default()
        };
        let a = Generator::new().generate(&input).unwrap();
        let b = Generator::new().generate(&input).unwrap();
        input.seed = 99;
        let c = Generator::new().generate(&input).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_shift_the_static_mix() {
        let mut input = GeneratorInput {
            loop_size: 500,
            ..GeneratorInput::default()
        };
        for w in input.instr_weights.values_mut() {
            *w = 0.0;
        }
        input.set_weight(Opcode::FmulD, 8.0);
        input.set_weight(Opcode::Add, 2.0);
        let tc = Generator::new().generate(&input).unwrap();
        let dist = tc.class_distribution();
        assert!(dist[&InstrClass::Float] > 0.7, "float fraction: {dist:?}");
    }

    #[test]
    fn footprint_knob_scales_stream_footprints() {
        let input = GeneratorInput {
            mem_footprint_kb: 2048,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).unwrap();
        assert_eq!(tc.total_footprint(), 2048 * 1024);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let input = GeneratorInput {
            loop_size: 2,
            ..GeneratorInput::default()
        };
        assert!(input.validate().is_err());

        let input = GeneratorInput {
            branch_randomness: 2.0,
            ..GeneratorInput::default()
        };
        assert!(input.validate().is_err());

        let input = GeneratorInput {
            mem_stride: 0,
            ..GeneratorInput::default()
        };
        assert!(input.validate().is_err());

        let mut input = GeneratorInput::default();
        for w in input.instr_weights.values_mut() {
            *w = 0.0;
        }
        assert_eq!(input.validate().unwrap_err(), CodegenError::EmptyProfile);
    }

    #[test]
    fn serde_round_trip() {
        let input = GeneratorInput::default();
        let json = serde_json::to_string(&input).unwrap();
        let back: GeneratorInput = serde_json::from_str(&json).unwrap();
        assert_eq!(back, input);
    }
}
