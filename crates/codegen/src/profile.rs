//! Instruction profiles: relative opcode weights for a test case.

use crate::CodegenError;
use micrograd_isa::{InstrClass, Opcode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A relative-weight instruction profile.
///
/// A profile maps opcodes to non-negative weights; the
/// `SetInstructionTypeByProfilePass` fills the building block so that the
/// static instruction distribution matches the normalized weights as closely
/// as an integer slot count allows (largest-remainder apportionment).
///
/// Profiles are how the instruction-fraction knobs of Listing 1 in the paper
/// (`ADD = [1..10]`, `FMULD = [1..10]`, …) reach the code generator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstructionProfile {
    weights: BTreeMap<Opcode, f64>,
}

impl InstructionProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the weight of `opcode`, replacing any previous weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn set(&mut self, opcode: Opcode, weight: f64) -> &mut Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "profile weight for {opcode} must be finite and non-negative, got {weight}"
        );
        self.weights.insert(opcode, weight);
        self
    }

    /// Builder-style variant of [`set`](Self::set).
    #[must_use]
    pub fn with(mut self, opcode: Opcode, weight: f64) -> Self {
        self.set(opcode, weight);
        self
    }

    /// The weight assigned to `opcode` (0.0 if absent).
    #[must_use]
    pub fn weight(&self, opcode: Opcode) -> f64 {
        self.weights.get(&opcode).copied().unwrap_or(0.0)
    }

    /// Iterates over `(opcode, weight)` pairs with positive weight.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, f64)> + '_ {
        self.weights
            .iter()
            .filter(|(_, w)| **w > 0.0)
            .map(|(op, w)| (*op, *w))
    }

    /// Sum of all weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.weights.values().sum()
    }

    /// Returns `true` if no opcode has positive weight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_weight() <= 0.0
    }

    /// Normalized fraction of `opcode` (0.0 if the profile is empty).
    #[must_use]
    pub fn fraction(&self, opcode: Opcode) -> f64 {
        let total = self.total_weight();
        if total <= 0.0 {
            0.0
        } else {
            self.weight(opcode) / total
        }
    }

    /// Aggregated normalized fraction per instruction class.
    #[must_use]
    pub fn class_fractions(&self) -> BTreeMap<InstrClass, f64> {
        let mut map = BTreeMap::new();
        for class in InstrClass::ALL {
            map.insert(class, 0.0);
        }
        let total = self.total_weight();
        if total > 0.0 {
            for (op, w) in self.iter() {
                *map.entry(op.class()).or_insert(0.0) += w / total;
            }
        }
        map
    }

    /// Apportions `slots` instruction slots to opcodes proportionally to
    /// their weights using the largest-remainder method, so the static
    /// distribution tracks the profile as closely as integers allow.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::EmptyProfile`] if the profile has no positive
    /// weight.
    pub fn apportion(&self, slots: usize) -> Result<Vec<(Opcode, usize)>, CodegenError> {
        let total = self.total_weight();
        if total <= 0.0 {
            return Err(CodegenError::EmptyProfile);
        }
        let entries: Vec<(Opcode, f64)> = self.iter().collect();
        let mut counts: Vec<(Opcode, usize, f64)> = entries
            .iter()
            .map(|(op, w)| {
                let exact = w / total * slots as f64;
                (*op, exact.floor() as usize, exact - exact.floor())
            })
            .collect();
        let assigned: usize = counts.iter().map(|(_, c, _)| *c).sum();
        let mut remaining = slots.saturating_sub(assigned);
        // hand the leftover slots to the largest fractional remainders
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| {
            counts[b]
                .2
                .partial_cmp(&counts[a].2)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut idx = 0;
        while remaining > 0 && !order.is_empty() {
            let target = order[idx % order.len()];
            counts[target].1 += 1;
            remaining -= 1;
            idx += 1;
        }
        Ok(counts.into_iter().map(|(op, c, _)| (op, c)).collect())
    }
}

impl FromIterator<(Opcode, f64)> for InstructionProfile {
    fn from_iter<T: IntoIterator<Item = (Opcode, f64)>>(iter: T) -> Self {
        let mut profile = InstructionProfile::new();
        for (op, w) in iter {
            profile.set(op, w);
        }
        profile
    }
}

impl Extend<(Opcode, f64)> for InstructionProfile {
    fn extend<T: IntoIterator<Item = (Opcode, f64)>>(&mut self, iter: T) {
        for (op, w) in iter {
            self.set(op, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstructionProfile {
        InstructionProfile::new()
            .with(Opcode::Add, 4.0)
            .with(Opcode::Mul, 1.0)
            .with(Opcode::FaddD, 2.0)
            .with(Opcode::Ld, 2.0)
            .with(Opcode::Sd, 1.0)
    }

    #[test]
    fn fractions_normalize() {
        let p = sample();
        assert!((p.fraction(Opcode::Add) - 0.4).abs() < 1e-12);
        assert!((p.fraction(Opcode::Mul) - 0.1).abs() < 1e-12);
        assert!((p.total_weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn class_fractions_aggregate() {
        let p = sample();
        let classes = p.class_fractions();
        assert!((classes[&InstrClass::Integer] - 0.5).abs() < 1e-12);
        assert!((classes[&InstrClass::Float] - 0.2).abs() < 1e-12);
        assert!((classes[&InstrClass::Load] - 0.2).abs() < 1e-12);
        assert!((classes[&InstrClass::Store] - 0.1).abs() < 1e-12);
        assert!((classes[&InstrClass::Branch]).abs() < 1e-12);
    }

    #[test]
    fn apportion_sums_to_slot_count() {
        let p = sample();
        for slots in [1, 7, 10, 99, 500] {
            let counts = p.apportion(slots).unwrap();
            let total: usize = counts.iter().map(|(_, c)| c).sum();
            assert_eq!(total, slots, "slots={slots}");
        }
    }

    #[test]
    fn apportion_tracks_fractions() {
        let p = sample();
        let counts = p.apportion(1000).unwrap();
        let add = counts.iter().find(|(op, _)| *op == Opcode::Add).unwrap().1;
        assert!((395..=405).contains(&add), "add count {add} should be ~400");
    }

    #[test]
    fn apportion_empty_profile_errors() {
        let p = InstructionProfile::new();
        assert_eq!(p.apportion(10).unwrap_err(), CodegenError::EmptyProfile);
        assert!(p.is_empty());
    }

    #[test]
    fn zero_weight_entries_are_ignored() {
        let p = InstructionProfile::new()
            .with(Opcode::Add, 1.0)
            .with(Opcode::Div, 0.0);
        assert_eq!(p.iter().count(), 1);
        let counts = p.apportion(10).unwrap();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0], (Opcode::Add, 10));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = InstructionProfile::new().with(Opcode::Add, -1.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: InstructionProfile = vec![(Opcode::Add, 1.0), (Opcode::Ld, 2.0)]
            .into_iter()
            .collect();
        p.extend(vec![(Opcode::Sd, 3.0)]);
        assert_eq!(p.weight(Opcode::Sd), 3.0);
        assert_eq!(p.weight(Opcode::Ld), 2.0);
    }

    #[test]
    fn serde_round_trip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: InstructionProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
