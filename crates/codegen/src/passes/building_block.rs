//! `SimpleBuildingBlockPass`: create the loop skeleton.

use super::{Pass, PassContext};
use crate::{CodegenError, TestCase};
use micrograd_isa::{Instruction, Opcode, Reg};

/// Creates the building block: `loop_size` instruction slots ending in the
/// loop-control pair (`addi` counter increment + back-edge branch).
///
/// All slots other than the loop control are filled with `nop` placeholders
/// that later passes replace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleBuildingBlockPass {
    loop_size: usize,
}

impl SimpleBuildingBlockPass {
    /// Register holding the loop counter (reserved).
    #[must_use]
    pub fn loop_counter_reg() -> Reg {
        Reg::x(31)
    }

    /// Register holding the loop bound (reserved).
    #[must_use]
    pub fn loop_bound_reg() -> Reg {
        Reg::x(30)
    }

    /// Creates the pass.
    ///
    /// `loop_size` is the total number of static instructions in the loop
    /// body, including the two loop-control instructions.
    #[must_use]
    pub fn new(loop_size: usize) -> Self {
        SimpleBuildingBlockPass { loop_size }
    }
}

impl Pass for SimpleBuildingBlockPass {
    fn name(&self) -> &'static str {
        "SimpleBuildingBlockPass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        if self.loop_size < 4 {
            return Err(CodegenError::InvalidParameter {
                parameter: "loop_size".into(),
                reason: format!("must be at least 4, got {}", self.loop_size),
            });
        }
        if !test_case.block().is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "building block already exists".into(),
            });
        }

        let block = test_case.block_mut();
        for _ in 0..self.loop_size - 2 {
            block.push(Instruction::new(Opcode::Nop));
        }
        // Loop control: increment the counter and branch back while it
        // differs from the bound.  The branch offset is patched by
        // `UpdateInstructionAddressesPass`.
        block.push(Instruction::rri(
            Opcode::Addi,
            Self::loop_counter_reg(),
            Self::loop_counter_reg(),
            1,
        ));
        let mut backedge = Instruction::branch(
            Opcode::Bne,
            Self::loop_counter_reg(),
            Self::loop_bound_reg(),
            0,
        );
        // The back-edge is (almost) always taken.
        backedge.set_branch_taken_prob(0.0); // 0 => never randomized
        block.push(backedge);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micrograd_isa::InstrClass;

    #[test]
    fn creates_requested_number_of_slots() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(1);
        SimpleBuildingBlockPass::new(100)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        assert_eq!(tc.block().len(), 100);
        let last = tc.block().instructions().last().unwrap();
        assert_eq!(last.opcode(), Opcode::Bne);
        assert_eq!(last.class(), InstrClass::Branch);
        let penultimate = &tc.block().instructions()[98];
        assert_eq!(penultimate.opcode(), Opcode::Addi);
    }

    #[test]
    fn rejects_tiny_loops() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(1);
        let err = SimpleBuildingBlockPass::new(2)
            .apply(&mut tc, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_double_application() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(1);
        let pass = SimpleBuildingBlockPass::new(10);
        pass.apply(&mut tc, &mut ctx).unwrap();
        let err = pass.apply(&mut tc, &mut ctx).unwrap_err();
        assert!(matches!(err, CodegenError::InvalidState { .. }));
    }

    #[test]
    fn placeholder_slots_are_nops() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(1);
        SimpleBuildingBlockPass::new(16)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let nops = tc
            .block()
            .iter()
            .filter(|i| i.opcode() == Opcode::Nop)
            .count();
        assert_eq!(nops, 14);
    }

    #[test]
    fn loop_registers_are_distinct() {
        assert_ne!(
            SimpleBuildingBlockPass::loop_counter_reg(),
            SimpleBuildingBlockPass::loop_bound_reg()
        );
    }
}
