//! `GenericMemoryStreamsPass`: attach memory streams to loads and stores.

use super::{Pass, PassContext};
use crate::testcase::MemoryStream;
use crate::{CodegenError, TestCase};
use micrograd_isa::{InstrClass, MemAccess, Reg};

/// Specification of one memory stream, mirroring the
/// `GenericMemoryStreamsPass([[id, SIZE, RATIO, STRIDE, …]])` arguments of
/// Listing 2 in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryStreamSpec {
    /// Stream identifier.
    pub id: u32,
    /// Footprint in bytes (resolved `MEM_SIZE` knob).
    pub footprint: u64,
    /// Fraction of memory instructions assigned to this stream (weights are
    /// normalized across streams).
    pub ratio: f64,
    /// Stride in bytes between consecutive iterations (`MEM_STRIDE` knob).
    pub stride: u64,
    /// Temporal re-use window in accesses (`MEM_TEMP1` knob).
    pub reuse_window: u64,
    /// Temporal re-use period in accesses (`MEM_TEMP2` knob).
    pub reuse_period: u64,
}

impl MemoryStreamSpec {
    /// A simple sequential stream covering `footprint` bytes with the given
    /// stride, no temporal re-use.
    #[must_use]
    pub fn sequential(id: u32, footprint: u64, stride: u64) -> Self {
        MemoryStreamSpec {
            id,
            footprint,
            ratio: 1.0,
            stride,
            reuse_window: 1,
            reuse_period: 1,
        }
    }
}

/// Attaches [`MemoryStream`]s to the test case and assigns every load and
/// store instruction to a stream (weighted by the stream ratios), giving it
/// a concrete [`MemAccess`] descriptor and a base address register.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericMemoryStreamsPass {
    specs: Vec<MemoryStreamSpec>,
}

impl GenericMemoryStreamsPass {
    /// Base register used for stream `id` (streams use `x10`, `x11`, …).
    #[must_use]
    pub fn stream_base_reg(id: u32) -> Reg {
        Reg::x(10 + (id % 8) as u8)
    }

    /// Base virtual address of the data region of stream `id`.
    ///
    /// Streams are spaced far apart so they never alias.
    #[must_use]
    pub fn stream_base_addr(id: u32) -> u64 {
        0x1000_0000 + u64::from(id) * 0x400_0000
    }

    /// Creates the pass from stream specifications.
    #[must_use]
    pub fn new(specs: Vec<MemoryStreamSpec>) -> Self {
        GenericMemoryStreamsPass { specs }
    }
}

impl Pass for GenericMemoryStreamsPass {
    fn name(&self) -> &'static str {
        "GenericMemoryStreamsPass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        if test_case.block().is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "building block is empty".into(),
            });
        }
        if self.specs.is_empty() {
            return Err(CodegenError::InvalidParameter {
                parameter: "streams".into(),
                reason: "at least one memory stream is required".into(),
            });
        }
        let ratio_total: f64 = self.specs.iter().map(|s| s.ratio.max(0.0)).sum();
        if ratio_total <= 0.0 {
            return Err(CodegenError::InvalidParameter {
                parameter: "streams".into(),
                reason: "stream ratios must sum to a positive value".into(),
            });
        }

        // Register the streams and reserve their base registers.
        test_case.streams_mut().clear();
        for spec in &self.specs {
            let stream = MemoryStream {
                id: spec.id,
                footprint: spec.footprint.max(64),
                ratio: spec.ratio.max(0.0) / ratio_total,
                stride: spec.stride.max(1),
                reuse_window: spec.reuse_window.max(1),
                reuse_period: spec.reuse_period.max(1),
                base: Self::stream_base_addr(spec.id),
            };
            test_case.streams_mut().push(stream);
            let base_reg = Self::stream_base_reg(spec.id);
            if !test_case.is_reserved(base_reg) {
                test_case.reserved_regs_mut().push(base_reg);
            }
        }

        // Assign memory instructions to streams using deterministic weighted
        // round-robin (largest accumulated deficit first), so the realized
        // split matches the requested ratios as closely as integers allow.
        let streams: Vec<MemoryStream> = test_case.streams().to_vec();
        let mut deficits: Vec<f64> = vec![0.0; streams.len()];
        let mut per_stream_count: Vec<u64> = vec![0; streams.len()];

        for instr in test_case.block_mut().instructions_mut().iter_mut() {
            let class = instr.opcode().class();
            if !matches!(class, InstrClass::Load | InstrClass::Store) {
                continue;
            }
            for (i, s) in streams.iter().enumerate() {
                deficits[i] += s.ratio;
            }
            let chosen = deficits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            deficits[chosen] -= 1.0;

            let stream = &streams[chosen];
            let offset = per_stream_count[chosen] * instr.opcode().access_bytes().max(1);
            per_stream_count[chosen] += 1;
            let mem = MemAccess {
                stream: stream.id,
                base: stream.base,
                stride: stream.stride,
                footprint: stream.footprint,
                offset,
            };
            instr.set_mem(Some(mem));
            let base_reg = Self::stream_base_reg(stream.id);
            let mut sources = instr.sources().to_vec();
            match class {
                InstrClass::Load => {
                    instr.set_sources(vec![base_reg]);
                }
                InstrClass::Store => {
                    let data = sources.first().copied().unwrap_or(Reg::x(5));
                    sources = vec![data, base_reg];
                    instr.set_sources(sources);
                }
                _ => unreachable!("filtered to memory classes above"),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{SetInstructionTypeByProfilePass, SimpleBuildingBlockPass};
    use crate::InstructionProfile;
    use micrograd_isa::Opcode;

    fn memory_heavy_testcase() -> (TestCase, PassContext) {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(9);
        SimpleBuildingBlockPass::new(202)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let profile = InstructionProfile::new()
            .with(Opcode::Ld, 2.0)
            .with(Opcode::Sd, 1.0)
            .with(Opcode::Add, 1.0);
        SetInstructionTypeByProfilePass::new(profile)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        (tc, ctx)
    }

    #[test]
    fn every_memory_instruction_gets_a_stream() {
        let (mut tc, mut ctx) = memory_heavy_testcase();
        GenericMemoryStreamsPass::new(vec![
            MemoryStreamSpec::sequential(0, 64 * 1024, 8),
            MemoryStreamSpec {
                id: 1,
                footprint: 1024 * 1024,
                ratio: 1.0,
                stride: 64,
                reuse_window: 8,
                reuse_period: 4,
            },
        ])
        .apply(&mut tc, &mut ctx)
        .unwrap();
        for instr in tc.block().iter() {
            if instr.opcode().is_memory() {
                assert!(
                    instr.mem().is_some(),
                    "memory instruction without stream: {instr}"
                );
            } else {
                assert!(instr.mem().is_none());
            }
        }
        assert_eq!(tc.streams().len(), 2);
    }

    #[test]
    fn ratios_control_the_split() {
        let (mut tc, mut ctx) = memory_heavy_testcase();
        GenericMemoryStreamsPass::new(vec![
            MemoryStreamSpec {
                id: 0,
                footprint: 4096,
                ratio: 3.0,
                stride: 8,
                reuse_window: 1,
                reuse_period: 1,
            },
            MemoryStreamSpec {
                id: 1,
                footprint: 4096,
                ratio: 1.0,
                stride: 8,
                reuse_window: 1,
                reuse_period: 1,
            },
        ])
        .apply(&mut tc, &mut ctx)
        .unwrap();
        let mut counts = [0u32; 2];
        for instr in tc.block().iter() {
            if let Some(m) = instr.mem() {
                counts[m.stream as usize] += 1;
            }
        }
        let total = counts[0] + counts[1];
        assert!(total > 50);
        let frac0 = counts[0] as f64 / total as f64;
        assert!(
            (frac0 - 0.75).abs() < 0.05,
            "expected ~75% on stream 0, got {frac0}"
        );
    }

    #[test]
    fn stream_base_registers_are_reserved() {
        let (mut tc, mut ctx) = memory_heavy_testcase();
        GenericMemoryStreamsPass::new(vec![MemoryStreamSpec::sequential(0, 4096, 8)])
            .apply(&mut tc, &mut ctx)
            .unwrap();
        assert!(tc.is_reserved(GenericMemoryStreamsPass::stream_base_reg(0)));
    }

    #[test]
    fn rejects_empty_or_zero_ratio_specs() {
        let (mut tc, mut ctx) = memory_heavy_testcase();
        let err = GenericMemoryStreamsPass::new(vec![])
            .apply(&mut tc, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidParameter { .. }));

        let err = GenericMemoryStreamsPass::new(vec![MemoryStreamSpec {
            id: 0,
            footprint: 4096,
            ratio: 0.0,
            stride: 8,
            reuse_window: 1,
            reuse_period: 1,
        }])
        .apply(&mut tc, &mut ctx)
        .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidParameter { .. }));
    }

    #[test]
    fn stream_bases_do_not_alias() {
        let a = GenericMemoryStreamsPass::stream_base_addr(0);
        let b = GenericMemoryStreamsPass::stream_base_addr(1);
        assert!(b - a >= 0x400_0000);
    }

    #[test]
    fn footprint_and_stride_are_clamped_to_sane_minimums() {
        let (mut tc, mut ctx) = memory_heavy_testcase();
        GenericMemoryStreamsPass::new(vec![MemoryStreamSpec {
            id: 0,
            footprint: 0,
            ratio: 1.0,
            stride: 0,
            reuse_window: 0,
            reuse_period: 0,
        }])
        .apply(&mut tc, &mut ctx)
        .unwrap();
        let s = tc.streams()[0];
        assert!(s.footprint >= 64);
        assert!(s.stride >= 1);
        assert!(s.reuse_window >= 1);
        assert!(s.reuse_period >= 1);
    }
}
