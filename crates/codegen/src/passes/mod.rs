//! The pass framework: code synthesis as an ordered sequence of passes.
//!
//! Microprobe structures code generation as a list of passes applied to a
//! test case under construction (Listing 2 of the MicroGrad paper).  Each
//! pass implements [`Pass`] and mutates the [`TestCase`]; the
//! [`Synthesizer`](crate::Synthesizer) owns the ordering rules.

mod address;
mod branch;
mod building_block;
mod memory;
mod profile_pass;
mod registers;

pub use address::UpdateInstructionAddressesPass;
pub use branch::RandomizeByTypePass;
pub use building_block::SimpleBuildingBlockPass;
pub use memory::{GenericMemoryStreamsPass, MemoryStreamSpec};
pub use profile_pass::SetInstructionTypeByProfilePass;
pub use registers::{DefaultRegisterAllocationPass, InitializeRegistersPass, ReserveRegistersPass};

use crate::{CodegenError, TestCase};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shared mutable state threaded through the passes of one synthesis run.
#[derive(Debug)]
pub struct PassContext {
    rng: ChaCha8Rng,
    seed: u64,
}

impl PassContext {
    /// Creates a context with a deterministic random number generator
    /// seeded from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        PassContext {
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this context was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The context's random number generator.
    ///
    /// All stochastic decisions made by passes draw from this generator so a
    /// given `(knob configuration, seed)` pair always produces the same test
    /// case — a requirement for gradient estimation to be meaningful.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// A code-synthesis pass.
///
/// Passes are applied in sequence by the [`Synthesizer`](crate::Synthesizer);
/// each one refines the test case (create slots, pick opcodes, attach memory
/// streams, allocate registers, fix addresses…).
pub trait Pass {
    /// Human-readable pass name, recorded in the test-case metadata.
    fn name(&self) -> &'static str;

    /// Applies the pass to `test_case`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodegenError`] if the test case is not in a state this
    /// pass can operate on or the pass parameters are invalid.
    fn apply(&self, test_case: &mut TestCase, ctx: &mut PassContext) -> Result<(), CodegenError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn context_rng_is_deterministic_per_seed() {
        let mut a = PassContext::new(42);
        let mut b = PassContext::new(42);
        let mut c = PassContext::new(43);
        let xa: Vec<u32> = (0..4).map(|_| a.rng().next_u32()).collect();
        let xb: Vec<u32> = (0..4).map(|_| b.rng().next_u32()).collect();
        let xc: Vec<u32> = (0..4).map(|_| c.rng().next_u32()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
        assert_eq!(a.seed(), 42);
    }
}
