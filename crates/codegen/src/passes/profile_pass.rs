//! `SetInstructionTypeByProfilePass`: choose opcodes according to a profile.

use super::{Pass, PassContext};
use crate::{CodegenError, InstructionProfile, TestCase};
use micrograd_isa::{Instruction, Opcode};
use rand::seq::SliceRandom;

/// Replaces the placeholder (`nop`) slots of the building block with
/// concrete opcodes whose static distribution matches an
/// [`InstructionProfile`].
///
/// Slots are apportioned with the largest-remainder method and then placed
/// in a deterministic shuffled order (seeded by the pass context) so that
/// instruction classes interleave rather than cluster — clustering would
/// artificially serialize functional-unit usage and distort the gradient
/// signal the tuner relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct SetInstructionTypeByProfilePass {
    profile: InstructionProfile,
}

impl SetInstructionTypeByProfilePass {
    /// Creates the pass from a profile.
    #[must_use]
    pub fn new(profile: InstructionProfile) -> Self {
        SetInstructionTypeByProfilePass { profile }
    }

    /// The profile this pass applies.
    #[must_use]
    pub fn profile(&self) -> &InstructionProfile {
        &self.profile
    }
}

impl Pass for SetInstructionTypeByProfilePass {
    fn name(&self) -> &'static str {
        "SetInstructionTypeByProfilePass"
    }

    fn apply(&self, test_case: &mut TestCase, ctx: &mut PassContext) -> Result<(), CodegenError> {
        if test_case.block().is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "building block is empty".into(),
            });
        }
        // Indices of placeholder slots available for profile instructions.
        let slots: Vec<usize> = test_case
            .block()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.opcode() == Opcode::Nop)
            .map(|(idx, _)| idx)
            .collect();
        if slots.is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "no placeholder slots remain".into(),
            });
        }
        let apportioned = self.profile.apportion(slots.len())?;
        let mut opcodes: Vec<Opcode> = Vec::with_capacity(slots.len());
        for (op, count) in apportioned {
            opcodes.extend(std::iter::repeat_n(op, count));
        }
        opcodes.shuffle(ctx.rng());

        let block = test_case.block_mut();
        for (slot, opcode) in slots.into_iter().zip(opcodes) {
            block.instructions_mut()[slot] = Instruction::new(opcode);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::SimpleBuildingBlockPass;
    use micrograd_isa::InstrClass;

    fn prepared_testcase(loop_size: usize) -> (TestCase, PassContext) {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(11);
        SimpleBuildingBlockPass::new(loop_size)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        (tc, ctx)
    }

    #[test]
    fn fills_every_placeholder() {
        let (mut tc, mut ctx) = prepared_testcase(102);
        let profile = InstructionProfile::new()
            .with(Opcode::Add, 5.0)
            .with(Opcode::Ld, 3.0)
            .with(Opcode::Sd, 2.0);
        SetInstructionTypeByProfilePass::new(profile)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        assert!(tc.block().iter().all(|i| i.opcode() != Opcode::Nop));
    }

    #[test]
    fn static_distribution_tracks_profile() {
        let (mut tc, mut ctx) = prepared_testcase(502);
        let profile = InstructionProfile::new()
            .with(Opcode::Add, 4.0)
            .with(Opcode::FmulD, 3.0)
            .with(Opcode::Ld, 2.0)
            .with(Opcode::Sd, 1.0);
        SetInstructionTypeByProfilePass::new(profile)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let dist = tc.class_distribution();
        // 500 profile slots + 2 loop-control instructions, so fractions are
        // within ~1% of the requested 0.4 / 0.3 / 0.2 / 0.1 split.
        assert!((dist[&InstrClass::Integer] - 0.4).abs() < 0.02);
        assert!((dist[&InstrClass::Float] - 0.3).abs() < 0.02);
        assert!((dist[&InstrClass::Load] - 0.2).abs() < 0.02);
        assert!((dist[&InstrClass::Store] - 0.1).abs() < 0.02);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let profile = InstructionProfile::new()
            .with(Opcode::Add, 1.0)
            .with(Opcode::Mul, 1.0)
            .with(Opcode::FaddD, 1.0);
        let run = |seed: u64| {
            let mut tc = TestCase::new();
            let mut ctx = PassContext::new(seed);
            SimpleBuildingBlockPass::new(64)
                .apply(&mut tc, &mut ctx)
                .unwrap();
            SetInstructionTypeByProfilePass::new(profile.clone())
                .apply(&mut tc, &mut ctx)
                .unwrap();
            tc.block().iter().map(|i| i.opcode()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn empty_profile_is_rejected() {
        let (mut tc, mut ctx) = prepared_testcase(16);
        let err = SetInstructionTypeByProfilePass::new(InstructionProfile::new())
            .apply(&mut tc, &mut ctx)
            .unwrap_err();
        assert_eq!(err, CodegenError::EmptyProfile);
    }

    #[test]
    fn requires_building_block() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        let err =
            SetInstructionTypeByProfilePass::new(InstructionProfile::new().with(Opcode::Add, 1.0))
                .apply(&mut tc, &mut ctx)
                .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidState { .. }));
    }
}
