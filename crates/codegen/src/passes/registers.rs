//! Register-related passes: reservation, initialization and allocation.

use super::{Pass, PassContext};
use crate::{CodegenError, TestCase};
use micrograd_isa::{InstrClass, Reg};

/// Reserves a set of registers so the register allocator never assigns them
/// as scratch destinations (loop counter, loop bound, stream base pointers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReserveRegistersPass {
    registers: Vec<Reg>,
}

impl ReserveRegistersPass {
    /// Creates the pass reserving `registers`.
    #[must_use]
    pub fn new(registers: Vec<Reg>) -> Self {
        ReserveRegistersPass { registers }
    }
}

impl Pass for ReserveRegistersPass {
    fn name(&self) -> &'static str {
        "ReserveRegistersPass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        for reg in &self.registers {
            if !test_case.is_reserved(*reg) {
                test_case.reserved_regs_mut().push(*reg);
            }
        }
        Ok(())
    }
}

/// Records the initial value loaded into every architectural register before
/// the loop starts (emitted in the assembly preamble).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitializeRegistersPass {
    value: i64,
}

impl InitializeRegistersPass {
    /// Creates the pass with the given initial register value.
    #[must_use]
    pub fn new(value: i64) -> Self {
        InitializeRegistersPass { value }
    }
}

impl Pass for InitializeRegistersPass {
    fn name(&self) -> &'static str {
        "InitializeRegistersPass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        test_case.metadata_mut().init_reg_value = self.value;
        Ok(())
    }
}

/// Assigns destination and source registers so the *register dependency
/// distance* — the number of instructions between a value's producer and its
/// consumer — matches the `REG_DIST` knob.
///
/// Destinations are allocated round-robin from the non-reserved registers of
/// the appropriate register file.  Each source operand is wired to the
/// destination of the instruction `dd` positions earlier (searching
/// backwards for the nearest producer of the right class), so smaller `dd`
/// serializes the loop body while larger `dd` exposes more instruction-level
/// parallelism — exactly the lever the stress-testing use case pushes to its
/// maximum (Section IV-C of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultRegisterAllocationPass {
    dependency_distance: usize,
}

impl DefaultRegisterAllocationPass {
    /// Creates the pass with dependency distance `dd`.
    #[must_use]
    pub fn new(dd: usize) -> Self {
        DefaultRegisterAllocationPass {
            dependency_distance: dd.max(1),
        }
    }

    /// Fallback integer source register when no producer exists yet.
    fn int_init_reg() -> Reg {
        Reg::x(5)
    }

    /// Fallback floating point source register when no producer exists yet.
    fn fp_init_reg() -> Reg {
        Reg::f(5)
    }

    /// Scratch destination pool for a register class, excluding reserved
    /// registers, the zero register and the init registers.
    fn dest_pool(test_case: &TestCase, fp: bool) -> Vec<Reg> {
        let mut pool = Vec::new();
        for idx in 6..30u8 {
            let reg = if fp { Reg::f(idx) } else { Reg::x(idx) };
            if !test_case.is_reserved(reg) {
                pool.push(reg);
            }
        }
        pool
    }

    /// Finds the destination register of the nearest producer at or before
    /// `target` (falling back to any earlier producer) in `dests`.
    fn producer_at_distance(
        dests: &[Option<(Reg, bool)>],
        index: usize,
        dd: usize,
        want_fp: bool,
    ) -> Option<Reg> {
        if index == 0 {
            return None;
        }
        let target = index.saturating_sub(dd);
        // search backwards from the target for a producer of the right file
        for j in (0..=target.min(index - 1)).rev() {
            if let Some((reg, is_fp)) = dests[j] {
                if is_fp == want_fp {
                    return Some(reg);
                }
            }
        }
        // otherwise search forward between target and the current instruction
        for (reg, is_fp) in dests[target.min(index - 1)..index].iter().flatten() {
            if *is_fp == want_fp {
                return Some(*reg);
            }
        }
        None
    }
}

impl Pass for DefaultRegisterAllocationPass {
    fn name(&self) -> &'static str {
        "DefaultRegisterAllocationPass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        if test_case.block().is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "building block is empty".into(),
            });
        }
        let int_pool = Self::dest_pool(test_case, false);
        let fp_pool = Self::dest_pool(test_case, true);
        if int_pool.is_empty() || fp_pool.is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "no allocatable registers remain after reservations".into(),
            });
        }
        let dd = self.dependency_distance;
        let len = test_case.block().len();
        let reserved: Vec<Reg> = test_case.reserved_regs().to_vec();

        // Destination register of each already-processed instruction,
        // tagged with whether it is a floating point register.
        let mut dests: Vec<Option<(Reg, bool)>> = vec![None; len];
        let mut int_rr = 0usize;
        let mut fp_rr = 0usize;

        let block = test_case.block_mut();
        for (i, instr) in block.instructions_mut().iter_mut().enumerate() {
            let opcode = instr.opcode();
            let class = opcode.class();
            // Leave the loop-control instructions (which use reserved
            // registers) untouched.
            let uses_reserved = instr
                .sources()
                .iter()
                .chain(instr.dest().iter())
                .any(|r| reserved.contains(r) && !r.is_zero());
            if uses_reserved && !class.is_memory() {
                if let Some(d) = instr.dest() {
                    dests[i] = Some((d, opcode.writes_fp_reg()));
                }
                continue;
            }

            match class {
                InstrClass::Integer | InstrClass::Float => {
                    let want_fp = opcode.reads_fp_regs();
                    let n_src = opcode.num_sources();
                    let mut sources = Vec::with_capacity(n_src);
                    for k in 0..n_src {
                        let src = Self::producer_at_distance(&dests, i, dd + k, want_fp).unwrap_or(
                            if want_fp {
                                Self::fp_init_reg()
                            } else {
                                Self::int_init_reg()
                            },
                        );
                        sources.push(src);
                    }
                    instr.set_sources(sources);
                    if opcode.has_dest() {
                        let (pool, rr) = if opcode.writes_fp_reg() {
                            (&fp_pool, &mut fp_rr)
                        } else {
                            (&int_pool, &mut int_rr)
                        };
                        let dest = pool[*rr % pool.len()];
                        *rr += 1;
                        instr.set_dest(Some(dest));
                        dests[i] = Some((dest, opcode.writes_fp_reg()));
                    }
                }
                InstrClass::Branch => {
                    if opcode.is_conditional_branch() {
                        let s1 = Self::producer_at_distance(&dests, i, dd, false)
                            .unwrap_or(Self::int_init_reg());
                        let s2 = Self::producer_at_distance(&dests, i, dd + 1, false)
                            .unwrap_or(Reg::ZERO);
                        let imm = instr.imm().unwrap_or(8);
                        let prob = instr.branch_taken_prob();
                        *instr = micrograd_isa::Instruction::branch(opcode, s1, s2, imm);
                        instr.set_branch_taken_prob(prob);
                    }
                }
                InstrClass::Load => {
                    // keep the base register chosen by the memory pass, pick
                    // a destination from the pool
                    if opcode.has_dest() {
                        let (pool, rr) = if opcode.writes_fp_reg() {
                            (&fp_pool, &mut fp_rr)
                        } else {
                            (&int_pool, &mut int_rr)
                        };
                        let dest = pool[*rr % pool.len()];
                        *rr += 1;
                        instr.set_dest(Some(dest));
                        dests[i] = Some((dest, opcode.writes_fp_reg()));
                    }
                }
                InstrClass::Store => {
                    // wire the store data register to a producer at the
                    // requested distance; keep the base register
                    let want_fp = opcode.reads_fp_regs();
                    let data =
                        Self::producer_at_distance(&dests, i, dd, want_fp).unwrap_or(if want_fp {
                            Self::fp_init_reg()
                        } else {
                            Self::int_init_reg()
                        });
                    let mut sources = instr.sources().to_vec();
                    if sources.is_empty() {
                        sources = vec![data, Reg::x(10)];
                    } else {
                        sources[0] = data;
                    }
                    instr.set_sources(sources);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{SetInstructionTypeByProfilePass, SimpleBuildingBlockPass};
    use crate::InstructionProfile;
    use micrograd_isa::Opcode;

    fn build_block(dd: usize, profile: &InstructionProfile) -> TestCase {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(3);
        SimpleBuildingBlockPass::new(64)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        ReserveRegistersPass::new(vec![
            SimpleBuildingBlockPass::loop_counter_reg(),
            SimpleBuildingBlockPass::loop_bound_reg(),
        ])
        .apply(&mut tc, &mut ctx)
        .unwrap();
        SetInstructionTypeByProfilePass::new(profile.clone())
            .apply(&mut tc, &mut ctx)
            .unwrap();
        DefaultRegisterAllocationPass::new(dd)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        tc
    }

    fn int_profile() -> InstructionProfile {
        InstructionProfile::new().with(Opcode::Add, 1.0)
    }

    #[test]
    fn reserve_registers_is_idempotent() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        let pass = ReserveRegistersPass::new(vec![Reg::x(30), Reg::x(31)]);
        pass.apply(&mut tc, &mut ctx).unwrap();
        pass.apply(&mut tc, &mut ctx).unwrap();
        assert_eq!(tc.reserved_regs().len(), 2);
    }

    #[test]
    fn initialize_registers_records_value() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        InitializeRegistersPass::new(0x1234)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        assert_eq!(tc.metadata().init_reg_value, 0x1234);
    }

    #[test]
    fn allocation_requires_building_block() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        let err = DefaultRegisterAllocationPass::new(3)
            .apply(&mut tc, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidState { .. }));
    }

    #[test]
    fn no_reserved_register_is_used_as_destination() {
        let tc = build_block(3, &int_profile());
        for instr in tc.block().iter() {
            if let Some(d) = instr.dest() {
                if instr.opcode() != Opcode::Addi
                    || d != SimpleBuildingBlockPass::loop_counter_reg()
                {
                    assert!(
                        !tc.reserved_regs().contains(&d)
                            || d == SimpleBuildingBlockPass::loop_counter_reg(),
                        "reserved register {d} used as destination by {instr}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_distance_creates_tight_dependencies() {
        let tc = build_block(1, &int_profile());
        // With dd=1, most ADDs should read the destination of the previous
        // ADD, creating a long serial chain.
        let instrs = tc.block().instructions();
        let mut chained = 0;
        let mut considered = 0;
        for i in 1..instrs.len() {
            if instrs[i].opcode() != Opcode::Add || instrs[i - 1].dest().is_none() {
                continue;
            }
            considered += 1;
            let prev_dest = instrs[i - 1].dest().unwrap();
            if instrs[i].sources().contains(&prev_dest) {
                chained += 1;
            }
        }
        assert!(considered > 10);
        assert!(
            chained as f64 / considered as f64 > 0.8,
            "expected most instructions chained, got {chained}/{considered}"
        );
    }

    #[test]
    fn large_distance_avoids_adjacent_dependencies() {
        let tc = build_block(10, &int_profile());
        let instrs = tc.block().instructions();
        let mut adjacent = 0;
        let mut considered = 0;
        for i in 1..instrs.len() {
            if instrs[i].opcode() != Opcode::Add || instrs[i - 1].dest().is_none() {
                continue;
            }
            considered += 1;
            let prev_dest = instrs[i - 1].dest().unwrap();
            if instrs[i].sources().contains(&prev_dest) {
                adjacent += 1;
            }
        }
        assert!(considered > 10);
        assert!(
            (adjacent as f64) / (considered as f64) < 0.3,
            "expected few adjacent dependencies with dd=10, got {adjacent}/{considered}"
        );
    }

    #[test]
    fn fp_instructions_get_fp_registers() {
        let profile = InstructionProfile::new().with(Opcode::FmulD, 1.0);
        let tc = build_block(4, &profile);
        for instr in tc.block().iter() {
            if instr.opcode() == Opcode::FmulD {
                assert!(instr.dest().unwrap().class() == micrograd_isa::RegClass::Fp);
                for s in instr.sources() {
                    assert_eq!(s.class(), micrograd_isa::RegClass::Fp);
                }
            }
        }
    }
}
