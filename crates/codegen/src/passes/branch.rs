//! `RandomizeByTypePass`: control branch-pattern randomness.

use super::{Pass, PassContext};
use crate::{CodegenError, TestCase};
use micrograd_isa::InstrClass;

/// Sets the *branch pattern randomization ratio* (`B_PATTERN` knob) on every
/// conditional branch in the loop body.
///
/// A ratio of 0.0 makes every body branch follow a fixed, perfectly
/// predictable direction; a ratio of 1.0 makes every dynamic instance an
/// independent coin flip, which defeats any history-based predictor.  The
/// loop back-edge (the final branch of the block) is never randomized — it
/// is the instruction that keeps the test case running.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizeByTypePass {
    class: InstrClass,
    randomize_ratio: f64,
}

impl RandomizeByTypePass {
    /// Creates the pass.
    ///
    /// # Panics
    ///
    /// Panics if `randomize_ratio` is outside `0.0..=1.0`.
    #[must_use]
    pub fn new(class: InstrClass, randomize_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&randomize_ratio),
            "randomize ratio {randomize_ratio} outside [0, 1]"
        );
        RandomizeByTypePass {
            class,
            randomize_ratio,
        }
    }

    /// The class of instructions this pass randomizes.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        self.class
    }

    /// The randomization ratio applied.
    #[must_use]
    pub fn randomize_ratio(&self) -> f64 {
        self.randomize_ratio
    }
}

impl Pass for RandomizeByTypePass {
    fn name(&self) -> &'static str {
        "RandomizeByTypePass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        if test_case.block().is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "building block is empty".into(),
            });
        }
        if self.class != InstrClass::Branch {
            // Only branch randomization is meaningful in this model.
            return Ok(());
        }
        let len = test_case.block().len();
        for (i, instr) in test_case
            .block_mut()
            .instructions_mut()
            .iter_mut()
            .enumerate()
        {
            if i + 1 == len {
                continue; // never randomize the loop back-edge
            }
            if instr.opcode().is_conditional_branch() {
                instr.set_branch_taken_prob(self.randomize_ratio);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{SetInstructionTypeByProfilePass, SimpleBuildingBlockPass};
    use crate::InstructionProfile;
    use micrograd_isa::Opcode;

    fn branchy_testcase() -> (TestCase, PassContext) {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(5);
        SimpleBuildingBlockPass::new(66)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let profile = InstructionProfile::new()
            .with(Opcode::Add, 1.0)
            .with(Opcode::Beq, 1.0)
            .with(Opcode::Bne, 1.0);
        SetInstructionTypeByProfilePass::new(profile)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        (tc, ctx)
    }

    #[test]
    fn sets_ratio_on_body_branches_only() {
        let (mut tc, mut ctx) = branchy_testcase();
        RandomizeByTypePass::new(InstrClass::Branch, 0.7)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let len = tc.block().len();
        for (i, instr) in tc.block().iter().enumerate() {
            if instr.opcode().is_conditional_branch() {
                if i + 1 == len {
                    assert_eq!(
                        instr.branch_taken_prob(),
                        0.0,
                        "back-edge must stay deterministic"
                    );
                } else {
                    assert!((instr.branch_taken_prob() - 0.7).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn non_branch_class_is_a_no_op() {
        let (mut tc, mut ctx) = branchy_testcase();
        RandomizeByTypePass::new(InstrClass::Integer, 0.9)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        for instr in tc.block().iter() {
            assert_eq!(instr.branch_taken_prob(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn ratio_outside_unit_interval_panics() {
        let _ = RandomizeByTypePass::new(InstrClass::Branch, 1.2);
    }

    #[test]
    fn accessors() {
        let p = RandomizeByTypePass::new(InstrClass::Branch, 0.4);
        assert_eq!(p.class(), InstrClass::Branch);
        assert!((p.randomize_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn requires_building_block() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        let err = RandomizeByTypePass::new(InstrClass::Branch, 0.5)
            .apply(&mut tc, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidState { .. }));
    }
}
