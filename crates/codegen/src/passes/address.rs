//! `UpdateInstructionAddressesPass`: finalize instruction addresses.

use super::{Pass, PassContext};
use crate::{CodegenError, TestCase};

/// Assigns each static instruction its address in the synthetic text section
/// and patches the loop back-edge offset so the final branch targets the
/// first instruction of the block.
///
/// This is always the final pass of a synthesis run, mirroring Listing 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateInstructionAddressesPass {
    text_base: u64,
}

/// Byte size of one encoded instruction (RV64 without compressed extension).
pub(crate) const INSTR_BYTES: u64 = 4;

impl UpdateInstructionAddressesPass {
    /// Default base address of the synthetic text section.
    pub const DEFAULT_TEXT_BASE: u64 = 0x0040_0000;

    /// Creates the pass with the default text base.
    #[must_use]
    pub fn new() -> Self {
        UpdateInstructionAddressesPass {
            text_base: Self::DEFAULT_TEXT_BASE,
        }
    }

    /// Creates the pass with an explicit text base address.
    #[must_use]
    pub fn with_text_base(text_base: u64) -> Self {
        UpdateInstructionAddressesPass { text_base }
    }
}

impl Pass for UpdateInstructionAddressesPass {
    fn name(&self) -> &'static str {
        "UpdateInstructionAddressesPass"
    }

    fn apply(&self, test_case: &mut TestCase, _ctx: &mut PassContext) -> Result<(), CodegenError> {
        if test_case.block().is_empty() {
            return Err(CodegenError::InvalidState {
                pass: self.name().into(),
                reason: "building block is empty".into(),
            });
        }
        let base = self.text_base;
        let len = test_case.block().len();
        for (i, instr) in test_case
            .block_mut()
            .instructions_mut()
            .iter_mut()
            .enumerate()
        {
            instr.set_address(base + i as u64 * INSTR_BYTES);
        }
        // Patch the back-edge so it branches to the top of the loop.
        let back_offset = -((len as i64 - 1) * INSTR_BYTES as i64);
        if let Some(last) = test_case.block_mut().instructions_mut().last_mut() {
            if last.opcode().is_conditional_branch() {
                let prob = last.branch_taken_prob();
                let srcs = last.sources().to_vec();
                let op = last.opcode();
                let mut patched = micrograd_isa::Instruction::branch(
                    op,
                    srcs.first().copied().unwrap_or(micrograd_isa::Reg::ZERO),
                    srcs.get(1).copied().unwrap_or(micrograd_isa::Reg::ZERO),
                    back_offset,
                );
                patched.set_branch_taken_prob(prob);
                patched.set_address(base + (len as u64 - 1) * INSTR_BYTES);
                *last = patched;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::SimpleBuildingBlockPass;

    #[test]
    fn addresses_are_sequential() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        SimpleBuildingBlockPass::new(32)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        UpdateInstructionAddressesPass::new()
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let instrs = tc.block().instructions();
        for (i, instr) in instrs.iter().enumerate() {
            assert_eq!(
                instr.address(),
                UpdateInstructionAddressesPass::DEFAULT_TEXT_BASE + i as u64 * 4
            );
        }
    }

    #[test]
    fn backedge_targets_loop_start() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        SimpleBuildingBlockPass::new(32)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        UpdateInstructionAddressesPass::new()
            .apply(&mut tc, &mut ctx)
            .unwrap();
        let last = tc.block().instructions().last().unwrap();
        assert_eq!(last.imm(), Some(-(31 * 4)));
        let target = (last.address() as i64 + last.imm().unwrap()) as u64;
        assert_eq!(target, tc.block().instructions()[0].address());
    }

    #[test]
    fn custom_text_base() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        SimpleBuildingBlockPass::new(8)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        UpdateInstructionAddressesPass::with_text_base(0x8000)
            .apply(&mut tc, &mut ctx)
            .unwrap();
        assert_eq!(tc.block().instructions()[0].address(), 0x8000);
    }

    #[test]
    fn requires_building_block() {
        let mut tc = TestCase::new();
        let mut ctx = PassContext::new(0);
        let err = UpdateInstructionAddressesPass::new()
            .apply(&mut tc, &mut ctx)
            .unwrap_err();
        assert!(matches!(err, CodegenError::InvalidState { .. }));
    }
}
