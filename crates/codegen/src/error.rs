//! Error type for the code generator.

use std::fmt;

/// Errors produced while synthesizing a test case.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// A pass received a test case it cannot operate on
    /// (e.g. register allocation before the building block exists).
    InvalidState {
        /// The pass that failed.
        pass: String,
        /// Why the state is invalid.
        reason: String,
    },
    /// A generator input parameter is outside its legal range.
    InvalidParameter {
        /// The offending parameter name.
        parameter: String,
        /// Why the value is not acceptable.
        reason: String,
    },
    /// The instruction profile is empty or sums to a non-positive weight.
    EmptyProfile,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::InvalidState { pass, reason } => {
                write!(f, "pass `{pass}` cannot run: {reason}")
            }
            CodegenError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid generator parameter `{parameter}`: {reason}")
            }
            CodegenError::EmptyProfile => {
                write!(
                    f,
                    "instruction profile is empty or has non-positive total weight"
                )
            }
        }
    }
}

impl std::error::Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CodegenError::InvalidState {
            pass: "DefaultRegisterAllocationPass".into(),
            reason: "building block is empty".into(),
        };
        assert!(e.to_string().contains("DefaultRegisterAllocationPass"));
        assert!(e.to_string().contains("building block is empty"));

        let e = CodegenError::InvalidParameter {
            parameter: "loop_size".into(),
            reason: "must be at least 4".into(),
        };
        assert!(e.to_string().contains("loop_size"));

        assert!(CodegenError::EmptyProfile.to_string().contains("profile"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodegenError>();
    }
}
