//! Streaming trace sources: dynamic instructions on demand.
//!
//! The materialized [`Trace`] is convenient for analysis but costs
//! O(`dynamic_len`) memory and a second traversal on the hottest path of the
//! framework (every tuning evaluation expands a trace, then simulates it).
//! A [`TraceSource`] instead yields [`DynamicInstr`]s one at a time, so the
//! simulator can fuse expansion and simulation into a single pass whose
//! memory footprint is bounded by the core's window sizes — see
//! `docs/streaming.md` for the memory model.
//!
//! Four implementations ship here:
//!
//! * [`StreamingExpander`] — the cursor form of [`TraceExpander::expand`];
//!   same ChaCha8 seed discipline, bit-identical stream.
//! * [`TraceCursor`] — replays an already-materialized [`Trace`]
//!   (obtained via [`Trace::source`]).
//! * [`PhaseSchedule`] — concatenates per-phase sources with per-phase
//!   lengths, which is how phase-structured workloads (one behaviour per
//!   SimPoint-like phase) are composed without ever materializing the
//!   combined stream.
//! * [`WindowedSource`] — one dynamic-index window of another source
//!   ([`TraceSource::window`]: skip/take), which is how per-SimPoint
//!   reference measurement and interval replay avoid materialization
//!   (see `docs/simpoint.md`).

use crate::trace::{DynamicInstr, Trace};
use crate::{TestCase, TraceExpander};
use micrograd_isa::Instruction;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// A stream of dynamic instructions plus the static code they refer to.
///
/// This is the contract between trace producers (the knob-driven
/// [`TraceExpander`], application models, phase schedules, materialized
/// traces) and trace consumers (the simulator, characterization code).  A
/// source is an owning cursor: [`next_dynamic`](TraceSource::next_dynamic)
/// advances it and returns `None` once the stream is exhausted.
///
/// `DynamicInstr::static_index` values index into
/// [`statics`](TraceSource::statics), which must remain stable for the
/// lifetime of the source.
pub trait TraceSource {
    /// The static instructions referenced by
    /// [`DynamicInstr::static_index`].
    fn statics(&self) -> &[Instruction];

    /// Produces the next dynamic instruction, or `None` when the stream is
    /// exhausted.
    fn next_dynamic(&mut self) -> Option<DynamicInstr>;

    /// Number of dynamic instructions left, when the source knows it.
    fn remaining(&self) -> Option<usize>;

    /// Restricts this source to the dynamic-index window
    /// `[start, start + len)`: the first `start` instructions are consumed
    /// and discarded (advancing the underlying stream state exactly as a
    /// full replay would), then at most `len` are yielded.
    ///
    /// This is how SimPoint interval replay and per-simpoint reference
    /// measurement work without materializing the trace: a fresh source is
    /// windowed onto the representative interval and fed straight to the
    /// simulator, in O(window) memory.
    fn window(self, start: usize, len: usize) -> WindowedSource<Self>
    where
        Self: Sized,
    {
        WindowedSource::new(self, start, len)
    }
}

/// Drains a source into a materialized [`Trace`].
///
/// This is the compatibility bridge for analysis code that wants random
/// access; the hot evaluation path feeds sources to the simulator directly.
#[must_use]
pub fn collect_trace<S: TraceSource + ?Sized>(source: &mut S) -> Trace {
    let mut dynamics = Vec::with_capacity(source.remaining().unwrap_or(0));
    while let Some(d) = source.next_dynamic() {
        dynamics.push(d);
    }
    Trace::new(source.statics().to_vec(), dynamics)
}

/// A [`TraceSource`] replaying a materialized [`Trace`] in program order.
///
/// Created by [`Trace::source`]; lets every consumer of the streaming
/// interface also accept recorded traces (SimPoint interval slices, test
/// fixtures) without a copy.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceCursor<'a> {
    /// Creates a cursor at the start of `trace`.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor { trace, pos: 0 }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn statics(&self) -> &[Instruction] {
        self.trace.statics()
    }

    fn next_dynamic(&mut self) -> Option<DynamicInstr> {
        let d = self.trace.dynamics().get(self.pos).copied()?;
        self.pos += 1;
        Some(d)
    }

    fn remaining(&self) -> Option<usize> {
        Some(self.trace.len() - self.pos)
    }
}

/// A [`TraceSource`] adapter exposing one dynamic-index window of another
/// source: skip `start` instructions, then yield at most `len`.
///
/// Created by [`TraceSource::window`].  The skipped prefix is *consumed*
/// from the inner source (not recomputed), so the yielded instructions are
/// bit-identical to positions `start..start + len` of the inner stream —
/// which is what makes windowed replay equivalent to slicing a
/// materialized trace's `dynamics()`, at O(window) memory instead of
/// O(trace).  Skipping is deferred to the first
/// [`next_dynamic`](TraceSource::next_dynamic)/
/// [`remaining`](TraceSource::remaining) call, so constructing windows is
/// free.
#[derive(Debug, Clone)]
pub struct WindowedSource<S> {
    inner: S,
    start: usize,
    len: usize,
    skipped: bool,
    emitted: usize,
}

impl<S: TraceSource> WindowedSource<S> {
    /// Creates a window over `inner` spanning dynamic indices
    /// `[start, start + len)`.
    #[must_use]
    pub fn new(inner: S, start: usize, len: usize) -> Self {
        WindowedSource {
            inner,
            start,
            len,
            skipped: false,
            emitted: 0,
        }
    }

    fn skip_prefix(&mut self) {
        if self.skipped {
            return;
        }
        for _ in 0..self.start {
            if self.inner.next_dynamic().is_none() {
                break;
            }
        }
        self.skipped = true;
    }
}

impl<S: TraceSource> TraceSource for WindowedSource<S> {
    fn statics(&self) -> &[Instruction] {
        self.inner.statics()
    }

    fn next_dynamic(&mut self) -> Option<DynamicInstr> {
        self.skip_prefix();
        if self.emitted >= self.len {
            return None;
        }
        let d = self.inner.next_dynamic()?;
        self.emitted += 1;
        Some(d)
    }

    fn remaining(&self) -> Option<usize> {
        let budget = self.len - self.emitted;
        let inner_left = if self.skipped {
            self.inner.remaining()
        } else {
            self.inner.remaining().map(|r| r.saturating_sub(self.start))
        };
        inner_left.map(|r| r.min(budget))
    }
}

/// The streaming form of [`TraceExpander::expand`].
///
/// Holds the expansion state (ChaCha8 RNG, per-stream positions and re-use
/// histories, loop cursor) and produces the **bit-identical** dynamic
/// stream the materializing expander would, one instruction at a time.
/// Memory is O(loop size + temporal-reuse windows) regardless of
/// `dynamic_len`, which is what makes 100 M-instruction evaluations
/// feasible.
///
/// Created by [`TraceExpander::stream`].
#[derive(Debug, Clone)]
pub struct StreamingExpander {
    statics: Vec<Instruction>,
    dynamic_len: usize,
    emitted: usize,
    /// Index of the next static instruction to execute.
    cursor: usize,
    rng: ChaCha8Rng,
    /// Per-stream temporal-reuse state: recently issued addresses.
    recent: BTreeMap<u32, Vec<u64>>,
    /// Per-stream access counters (circular-buffer walk, see
    /// [`TraceExpander`]).
    stream_pos: BTreeMap<u32, u64>,
    reuse_prob: BTreeMap<u32, (f64, usize)>,
}

impl StreamingExpander {
    /// Creates a streaming expander over `test_case`, producing
    /// `dynamic_len` instructions with `seed` — the same seed discipline as
    /// [`TraceExpander::new`], so the stream matches the materialized
    /// expansion bit for bit.
    #[must_use]
    pub fn new(test_case: &TestCase, dynamic_len: usize, seed: u64) -> Self {
        let statics: Vec<Instruction> = test_case.block().instructions().to_vec();
        let reuse_prob: BTreeMap<u32, (f64, usize)> = test_case
            .streams()
            .iter()
            .map(|s| (s.id, (s.reuse_probability(), s.reuse_window as usize)))
            .collect();
        StreamingExpander {
            statics,
            dynamic_len,
            emitted: 0,
            cursor: 0,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_7ACE),
            recent: BTreeMap::new(),
            stream_pos: BTreeMap::new(),
            reuse_prob,
        }
    }

    /// Consumes the expander, returning the static instruction table.
    ///
    /// [`TraceExpander::expand`] drains the cursor and then takes the
    /// statics through here, building the materialized [`Trace`] without a
    /// second copy of the loop body.
    #[must_use]
    pub fn into_statics(self) -> Vec<Instruction> {
        self.statics
    }
}

impl TraceSource for StreamingExpander {
    fn statics(&self) -> &[Instruction] {
        &self.statics
    }

    fn next_dynamic(&mut self) -> Option<DynamicInstr> {
        if self.emitted >= self.dynamic_len || self.statics.is_empty() {
            return None;
        }
        // Disjoint field borrows: the instruction is read from `statics`
        // while the RNG and stream state advance.
        let StreamingExpander {
            statics,
            dynamic_len,
            emitted,
            cursor,
            rng,
            recent,
            stream_pos,
            reuse_prob,
        } = self;
        let body_len = statics.len();
        let idx = *cursor;
        let instr = &statics[idx];
        let is_last_static = idx + 1 == body_len;
        let mem_addr = instr.mem().map(|m| {
            let (prob, window) = reuse_prob.get(&m.stream).copied().unwrap_or((0.0, 1));
            let history = recent.entry(m.stream).or_default();
            let addr = if prob > 0.0 && !history.is_empty() && rng.gen::<f64>() < prob {
                let pick = rng.gen_range(0..history.len().min(window.max(1)));
                history[history.len() - 1 - pick]
            } else {
                let pos = stream_pos.entry(m.stream).or_insert(0);
                let addr = m.address_at(*pos);
                *pos += 1;
                addr
            };
            history.push(addr);
            let cap = window.max(1) * 2;
            if history.len() > cap {
                let drop = history.len() - cap;
                history.drain(0..drop);
            }
            addr
        });
        let taken = if instr.opcode().is_conditional_branch() {
            if is_last_static {
                // loop back-edge: taken unless this is the final dynamic
                // instruction
                Some(*emitted + 1 < *dynamic_len)
            } else {
                // body branch: deterministic taken, flipped randomly with
                // the randomization ratio
                let randomize = instr.branch_taken_prob();
                if randomize > 0.0 && rng.gen::<f64>() < randomize {
                    Some(rng.gen::<bool>())
                } else {
                    Some(true)
                }
            }
        } else {
            None
        };
        let dynamic = DynamicInstr {
            static_index: idx as u32,
            pc: instr.address(),
            mem_addr,
            taken,
        };
        *emitted += 1;
        *cursor = if is_last_static { 0 } else { idx + 1 };
        Some(dynamic)
    }

    fn remaining(&self) -> Option<usize> {
        if self.statics.is_empty() {
            Some(0)
        } else {
            Some(self.dynamic_len - self.emitted)
        }
    }
}

impl TraceExpander {
    /// Creates the streaming cursor form of this expander over `test_case`.
    ///
    /// The cursor yields the bit-identical stream [`expand`] would
    /// materialize, in O(loop size) memory.
    ///
    /// [`expand`]: TraceExpander::expand
    #[must_use]
    pub fn stream(&self, test_case: &TestCase) -> StreamingExpander {
        StreamingExpander::new(test_case, self.dynamic_len(), self.seed())
    }
}

struct ScheduledPhase<'a> {
    source: Box<dyn TraceSource + 'a>,
    len: usize,
    emitted: usize,
    static_base: u32,
    pc_offset: u64,
    data_offset: u64,
}

/// A [`TraceSource`] that concatenates per-phase sources, each cut at a
/// per-phase dynamic length.
///
/// This is the combinator behind phase-structured workloads: each phase is
/// its own source (typically a [`StreamingExpander`] over a phase-specific
/// test case, or an application-model stream) and the schedule plays them
/// back to back.  `static_index` values are rebased into a combined static
/// table, so the result is a single coherent stream for the simulator.
///
/// [`then_in_region`](PhaseSchedule::then_in_region) additionally offsets a
/// phase's fetch addresses and data addresses, placing phases in disjoint
/// code/data regions — without it, phases built from similar test cases
/// would alias in the instruction cache and branch predictor as if they
/// shared code.
///
/// Because every phase streams, a schedule's memory footprint is the sum of
/// its cursors' O(loop size) states — independent of the total dynamic
/// length, which is what makes long multi-phase scenarios affordable.
#[derive(Default)]
pub struct PhaseSchedule<'a> {
    statics: Vec<Instruction>,
    phases: Vec<ScheduledPhase<'a>>,
    current: usize,
}

impl<'a> PhaseSchedule<'a> {
    /// Creates an empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase that plays `len` instructions from `source` (fewer
    /// if the source runs dry first).
    #[must_use]
    pub fn then(self, source: impl TraceSource + 'a, len: usize) -> Self {
        self.then_in_region(source, len, 0, 0)
    }

    /// Appends a phase like [`then`](PhaseSchedule::then), additionally
    /// offsetting every yielded fetch address by `pc_offset` and every data
    /// address by `data_offset`, so the phase occupies its own code and
    /// data regions.
    #[must_use]
    pub fn then_in_region(
        mut self,
        source: impl TraceSource + 'a,
        len: usize,
        pc_offset: u64,
        data_offset: u64,
    ) -> Self {
        let static_base =
            u32::try_from(self.statics.len()).expect("combined static table fits u32");
        self.statics.extend_from_slice(source.statics());
        self.phases.push(ScheduledPhase {
            source: Box::new(source),
            len,
            emitted: 0,
            static_base,
            pc_offset,
            data_offset,
        });
        self
    }

    /// Number of scheduled phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Total scheduled dynamic length (the sum of per-phase lengths; the
    /// actual stream may be shorter if a phase source runs dry).
    #[must_use]
    pub fn scheduled_len(&self) -> usize {
        self.phases.iter().map(|p| p.len).sum()
    }
}

impl TraceSource for PhaseSchedule<'_> {
    fn statics(&self) -> &[Instruction] {
        &self.statics
    }

    fn next_dynamic(&mut self) -> Option<DynamicInstr> {
        while let Some(phase) = self.phases.get_mut(self.current) {
            if phase.emitted < phase.len {
                if let Some(mut d) = phase.source.next_dynamic() {
                    phase.emitted += 1;
                    d.static_index += phase.static_base;
                    d.pc = d.pc.wrapping_add(phase.pc_offset);
                    d.mem_addr = d.mem_addr.map(|a| a.wrapping_add(phase.data_offset));
                    return Some(d);
                }
            }
            self.current += 1;
        }
        None
    }

    fn remaining(&self) -> Option<usize> {
        let mut total = 0usize;
        for phase in &self.phases[self.current.min(self.phases.len())..] {
            let budget = phase.len - phase.emitted;
            total += match phase.source.remaining() {
                Some(r) => budget.min(r),
                None => return None,
            };
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Generator, GeneratorInput};

    fn testcase(seed: u64) -> TestCase {
        let input = GeneratorInput {
            loop_size: 80,
            seed,
            ..GeneratorInput::default()
        };
        Generator::new().generate(&input).unwrap()
    }

    #[test]
    fn streaming_expander_is_bit_identical_to_expand() {
        for seed in [1u64, 7, 42] {
            let tc = testcase(seed);
            let expander = TraceExpander::new(12_345, seed);
            let materialized = expander.expand(&tc);
            let streamed = collect_trace(&mut expander.stream(&tc));
            assert_eq!(materialized, streamed, "seed {seed}");
        }
    }

    #[test]
    fn streaming_expander_reports_remaining() {
        let tc = testcase(3);
        let mut s = TraceExpander::new(100, 3).stream(&tc);
        assert_eq!(s.remaining(), Some(100));
        for left in (0..100).rev() {
            assert!(s.next_dynamic().is_some());
            assert_eq!(s.remaining(), Some(left));
        }
        assert!(s.next_dynamic().is_none());
        assert_eq!(s.remaining(), Some(0));
    }

    #[test]
    fn empty_testcase_stream_is_empty() {
        let tc = TestCase::new();
        let mut s = TraceExpander::new(50, 1).stream(&tc);
        assert_eq!(s.remaining(), Some(0));
        assert!(s.next_dynamic().is_none());
    }

    #[test]
    fn trace_cursor_replays_the_trace() {
        let tc = testcase(5);
        let trace = TraceExpander::new(2_000, 5).expand(&tc);
        let replayed = collect_trace(&mut trace.source());
        assert_eq!(trace, replayed);
    }

    #[test]
    fn windowed_source_matches_materialized_slice() {
        // A window over a fresh stream must yield exactly the dynamics()
        // slice of the materialized expansion — the equivalence per-simpoint
        // replay relies on.
        let tc = testcase(21);
        let expander = TraceExpander::new(5_000, 21);
        let trace = expander.expand(&tc);
        for (start, len) in [(0usize, 500usize), (1_234, 777), (4_900, 100), (4_900, 500)] {
            let mut window = expander.stream(&tc).window(start, len);
            assert_eq!(window.statics(), trace.statics());
            let windowed = collect_trace(&mut window);
            let end = (start + len).min(trace.len());
            assert_eq!(
                windowed.dynamics(),
                &trace.dynamics()[start.min(trace.len())..end],
                "window [{start}, {start}+{len})"
            );
        }
    }

    #[test]
    fn windowed_source_reports_remaining() {
        let tc = testcase(22);
        let expander = TraceExpander::new(1_000, 22);
        // Before any pull, remaining accounts for the still-unskipped prefix.
        let mut w = expander.stream(&tc).window(200, 300);
        assert_eq!(w.remaining(), Some(300));
        assert!(w.next_dynamic().is_some());
        assert_eq!(w.remaining(), Some(299));
        // A window extending past the stream is truncated.
        let mut tail = expander.stream(&tc).window(900, 300);
        assert_eq!(tail.remaining(), Some(100));
        assert_eq!(collect_trace(&mut tail).len(), 100);
        // A window starting past the stream is empty.
        let mut past = expander.stream(&tc).window(2_000, 10);
        assert_eq!(past.remaining(), Some(0));
        assert!(past.next_dynamic().is_none());
    }

    #[test]
    fn phase_schedule_concatenates_and_rebases() {
        let tc_a = testcase(11);
        let tc_b = testcase(12);
        let a_len = tc_a.block().len();
        let expander = TraceExpander::new(1_000, 11);
        let mut schedule = PhaseSchedule::new()
            .then(expander.stream(&tc_a), 300)
            .then_in_region(expander.stream(&tc_b), 200, 0x0100_0000, 0x1000_0000);
        assert_eq!(schedule.phase_count(), 2);
        assert_eq!(schedule.scheduled_len(), 500);
        assert_eq!(
            schedule.statics().len(),
            tc_a.block().len() + tc_b.block().len()
        );
        assert_eq!(schedule.remaining(), Some(500));

        let trace = collect_trace(&mut schedule);
        assert_eq!(trace.len(), 500);
        // First phase indices stay in the first static table...
        for d in &trace.dynamics()[..300] {
            assert!((d.static_index as usize) < a_len);
            assert!(d.pc < 0x0100_0000);
        }
        // ...second-phase indices and addresses are rebased.
        for d in &trace.dynamics()[300..] {
            assert!((d.static_index as usize) >= a_len);
            assert!(d.pc >= 0x0100_0000);
            if let Some(addr) = d.mem_addr {
                assert!(addr >= 0x1000_0000);
            }
        }

        // The first phase's prefix is the untouched underlying stream.
        let raw = expander.expand(&tc_a);
        assert_eq!(&trace.dynamics()[..300], &raw.dynamics()[..300]);
    }

    #[test]
    fn phase_schedule_stops_when_a_source_runs_dry() {
        let tc = testcase(13);
        // Source only holds 50 instructions but the phase asks for 200.
        let schedule = PhaseSchedule::new()
            .then(TraceExpander::new(50, 13).stream(&tc), 200)
            .then(TraceExpander::new(40, 13).stream(&tc), 40);
        let mut schedule = schedule;
        assert_eq!(schedule.remaining(), Some(90));
        let trace = collect_trace(&mut schedule);
        assert_eq!(trace.len(), 90);
    }

    #[test]
    fn empty_schedule_is_empty() {
        let mut s = PhaseSchedule::new();
        assert_eq!(s.remaining(), Some(0));
        assert!(s.next_dynamic().is_none());
        assert!(s.statics().is_empty());
        assert_eq!(s.scheduled_len(), 0);
    }
}
