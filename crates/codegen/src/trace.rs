//! Dynamic trace expansion: turning the static loop into the instruction
//! stream the performance simulator consumes.

use crate::source::{TraceCursor, TraceSource};
use crate::TestCase;
use micrograd_isa::{InstrClass, Instruction};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One dynamic instruction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicInstr {
    /// Index of the static instruction in the test case block.
    pub static_index: u32,
    /// Program counter of this instance.
    pub pc: u64,
    /// Effective data address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Branch direction, for conditional branches.
    pub taken: Option<bool>,
}

/// A dynamic instruction trace plus the static instructions it refers to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    statics: Vec<Instruction>,
    dynamics: Vec<DynamicInstr>,
}

impl Trace {
    /// Creates a trace from its parts.
    #[must_use]
    pub fn new(statics: Vec<Instruction>, dynamics: Vec<DynamicInstr>) -> Self {
        Trace { statics, dynamics }
    }

    /// The static instructions (the loop body, or an application's static
    /// code) referenced by [`DynamicInstr::static_index`].
    #[must_use]
    pub fn statics(&self) -> &[Instruction] {
        &self.statics
    }

    /// The dynamic instruction stream in program order.
    #[must_use]
    pub fn dynamics(&self) -> &[DynamicInstr] {
        &self.dynamics
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dynamics.len()
    }

    /// Returns `true` if the trace holds no dynamic instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dynamics.is_empty()
    }

    /// The static instruction behind a dynamic instance.
    ///
    /// # Panics
    ///
    /// Panics if the dynamic instruction's static index is out of range
    /// (which would indicate a malformed trace).
    #[must_use]
    pub fn static_of(&self, dynamic: &DynamicInstr) -> &Instruction {
        &self.statics[dynamic.static_index as usize]
    }

    /// Dynamic instruction-class distribution, normalized to 1.0.
    #[must_use]
    pub fn class_distribution(&self) -> BTreeMap<InstrClass, f64> {
        micrograd_isa::class_distribution(self.dynamics.iter().map(|d| self.static_of(d).class()))
    }

    /// A streaming cursor over this trace (see
    /// [`TraceSource`](crate::TraceSource)).
    #[must_use]
    pub fn source(&self) -> TraceCursor<'_> {
        TraceCursor::new(self)
    }
}

/// Expands a [`TestCase`] into a dynamic [`Trace`] of a requested length.
///
/// The expansion models the endless-loop execution of the test case:
///
/// * every loop iteration executes the whole body in order (body branches
///   are "hammock" branches whose direction only affects predictability,
///   not the executed path — a deliberate simplification documented in
///   DESIGN.md);
/// * memory instructions produce addresses from their stream descriptor:
///   each stream is walked like a circular buffer that advances by its
///   stride on every access and wraps at its footprint (so `MEM_SIZE` sets
///   the working-set size and `MEM_STRIDE` the spatial locality), and with
///   probability [`reuse_probability`] the access instead revisits one of
///   the last `reuse_window` addresses (temporal locality knobs
///   `MEM_TEMP1`/`MEM_TEMP2`);
/// * conditional body branches flip direction with the randomization ratio
///   assigned by `RandomizeByTypePass` (`B_PATTERN` knob) — ratio 0 means a
///   always-taken, perfectly predictable branch;
/// * the loop back-edge is always taken except on the final dynamic
///   instruction.
///
/// [`reuse_probability`]: crate::MemoryStream::reuse_probability
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceExpander {
    dynamic_len: usize,
    seed: u64,
}

impl TraceExpander {
    /// Creates an expander that produces `dynamic_len` dynamic instructions
    /// using `seed` for all stochastic decisions.
    #[must_use]
    pub fn new(dynamic_len: usize, seed: u64) -> Self {
        TraceExpander { dynamic_len, seed }
    }

    /// Number of dynamic instructions this expander produces.
    #[must_use]
    pub fn dynamic_len(&self) -> usize {
        self.dynamic_len
    }

    /// The seed used for all stochastic decisions.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Expands `test_case` into a materialized dynamic trace.
    ///
    /// This drains the streaming cursor of [`stream`](TraceExpander::stream)
    /// into a [`Trace`], so the materialized and streaming paths are
    /// bit-identical by construction.  The hot evaluation path feeds the
    /// cursor to the simulator directly instead (O(loop size) memory, one
    /// pass); materialize only when random access to the dynamics is needed.
    #[must_use]
    pub fn expand(&self, test_case: &TestCase) -> Trace {
        let mut source = self.stream(test_case);
        let mut dynamics = Vec::with_capacity(source.remaining().unwrap_or(0));
        while let Some(d) = source.next_dynamic() {
            dynamics.push(d);
        }
        Trace::new(source.into_statics(), dynamics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Generator, GeneratorInput};
    use micrograd_isa::Opcode;

    fn testcase(seed: u64) -> TestCase {
        let input = GeneratorInput {
            loop_size: 100,
            seed,
            ..GeneratorInput::default()
        };
        Generator::new().generate(&input).unwrap()
    }

    #[test]
    fn trace_has_requested_length() {
        let tc = testcase(1);
        for len in [0, 1, 99, 100, 1000, 12_345] {
            let trace = TraceExpander::new(len, 1).expand(&tc);
            assert_eq!(trace.len(), len);
            assert_eq!(trace.is_empty(), len == 0);
        }
    }

    #[test]
    fn dynamic_distribution_matches_static_distribution() {
        let tc = testcase(2);
        let trace = TraceExpander::new(50_000, 2).expand(&tc);
        let static_dist = tc.class_distribution();
        let dyn_dist = trace.class_distribution();
        for (class, frac) in static_dist {
            let d = dyn_dist.get(&class).copied().unwrap_or(0.0);
            assert!(
                (frac - d).abs() < 0.02,
                "class {class:?}: static {frac} vs dynamic {d}"
            );
        }
    }

    #[test]
    fn memory_addresses_stay_within_stream_bounds() {
        let tc = testcase(3);
        let trace = TraceExpander::new(20_000, 3).expand(&tc);
        let streams: std::collections::BTreeMap<u32, _> =
            tc.streams().iter().map(|s| (s.id, *s)).collect();
        for d in trace.dynamics() {
            if let Some(addr) = d.mem_addr {
                let m = trace.static_of(d).mem().unwrap();
                let s = streams[&m.stream];
                assert!(addr >= s.base, "address below stream base");
                assert!(
                    addr < s.base + s.footprint + 64,
                    "address {addr:#x} beyond stream footprint"
                );
            }
        }
    }

    #[test]
    fn backedge_is_taken_until_the_end() {
        let tc = testcase(4);
        let trace = TraceExpander::new(1_000, 4).expand(&tc);
        let body_len = tc.block().len();
        let mut backedges = 0;
        for (i, d) in trace.dynamics().iter().enumerate() {
            if d.static_index as usize + 1 == body_len {
                backedges += 1;
                let is_final = i + 1 == trace.len();
                assert_eq!(d.taken, Some(!is_final));
            }
        }
        assert!(backedges > 5);
    }

    #[test]
    fn expansion_is_deterministic() {
        let tc = testcase(5);
        let a = TraceExpander::new(5_000, 7).expand(&tc);
        let b = TraceExpander::new(5_000, 7).expand(&tc);
        let c = TraceExpander::new(5_000, 8).expand(&tc);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn branch_randomness_increases_direction_entropy() {
        let entropy_for = |randomness: f64| {
            let input = GeneratorInput {
                loop_size: 100,
                branch_randomness: randomness,
                seed: 6,
                ..GeneratorInput::default()
            };
            let tc = Generator::new().generate(&input).unwrap();
            let trace = TraceExpander::new(50_000, 6).expand(&tc);
            let body_len = tc.block().len();
            let mut taken = 0u64;
            let mut total = 0u64;
            for d in trace.dynamics() {
                let s = trace.static_of(d);
                if s.opcode().is_conditional_branch() && (d.static_index as usize + 1) != body_len {
                    total += 1;
                    if d.taken == Some(true) {
                        taken += 1;
                    }
                }
            }
            assert!(total > 100);
            taken as f64 / total as f64
        };
        let predictable = entropy_for(0.0);
        let random = entropy_for(1.0);
        assert!(predictable > 0.99, "no randomness should mean always taken");
        assert!(
            (random - 0.5).abs() < 0.05,
            "full randomness should be a coin flip, got {random}"
        );
    }

    #[test]
    fn temporal_locality_reduces_unique_addresses() {
        let unique_addrs = |period: u64| {
            let input = GeneratorInput {
                loop_size: 100,
                mem_footprint_kb: 512,
                mem_temporal_period: period,
                seed: 8,
                ..GeneratorInput::default()
            };
            let tc = Generator::new().generate(&input).unwrap();
            let trace = TraceExpander::new(30_000, 8).expand(&tc);
            let set: std::collections::BTreeSet<u64> =
                trace.dynamics().iter().filter_map(|d| d.mem_addr).collect();
            set.len()
        };
        let no_reuse = unique_addrs(1);
        let heavy_reuse = unique_addrs(10);
        assert!(
            heavy_reuse < no_reuse / 2,
            "temporal re-use should shrink the unique address set: {heavy_reuse} vs {no_reuse}"
        );
    }

    #[test]
    fn empty_testcase_produces_empty_trace() {
        let tc = TestCase::new();
        let trace = TraceExpander::new(100, 0).expand(&tc);
        assert!(trace.is_empty());
        assert!(trace.class_distribution().is_empty());
    }

    #[test]
    fn nop_only_testcase_still_traces() {
        let mut tc = TestCase::new();
        tc.block_mut().push(Instruction::new(Opcode::Nop));
        let trace = TraceExpander::new(10, 0).expand(&tc);
        assert_eq!(trace.len(), 10);
        assert!(trace.dynamics().iter().all(|d| d.static_index == 0));
    }
}
