//! Deterministic fault injection for chaos testing the service path.
//!
//! A [`FaultPlan`] decides, at a handful of named [`FaultSite`]s threaded
//! through the store, the scheduler and the connection handler, whether to
//! force a failure: an I/O error, a truncated or delayed store write, a
//! connection dropped mid-line, or a worker panic.  Decisions are derived
//! purely from the plan's seed, the site, and a per-site operation counter
//! through the vendored ChaCha8 generator — no wall clock, no OS
//! randomness — so a chaos run is replayable: the same plan against the
//! same workload injects the same faults.
//!
//! Every site is bounded by a `max_injections` budget, so faults *exhaust*:
//! a retry loop that keeps going provably escapes the failure window, which
//! is exactly what the recovery tests in `tests/chaos.rs` assert.
//!
//! The default plan ([`FaultPlan::none`]) has no armed sites and reduces
//! every seam to one array load, so production paths pay nothing.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A point in the service where a fault can be forced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Reading a stored report or cache dump: the read is treated as an
    /// I/O error (the store degrades to a miss).
    StoreRead,
    /// Persisting a report or cache dump: the write fails with an injected
    /// I/O error before anything reaches disk.
    StoreWrite,
    /// Persisting a report or cache dump: only a prefix of the document is
    /// committed, simulating a crash between write and fsync.  The
    /// truncated file *is* renamed into place, so recovery has something
    /// corrupt to find.
    StoreTruncate,
    /// Persisting a report or cache dump: the write is delayed by the
    /// plan's fixed [`FaultPlan::write_delay`] before proceeding normally.
    StoreDelay,
    /// Writing a response line to a client: the connection is closed after
    /// a partial line, simulating a mid-message network failure.
    ConnectionDrop,
    /// Executing a job on a worker: the worker panics at the start of
    /// execution, exercising the scheduler's panic isolation.
    WorkerPanic,
}

impl FaultSite {
    /// All sites, in index order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::StoreTruncate,
        FaultSite::StoreDelay,
        FaultSite::ConnectionDrop,
        FaultSite::WorkerPanic,
    ];

    const COUNT: usize = Self::ALL.len();

    fn index(self) -> usize {
        match self {
            FaultSite::StoreRead => 0,
            FaultSite::StoreWrite => 1,
            FaultSite::StoreTruncate => 2,
            FaultSite::StoreDelay => 3,
            FaultSite::ConnectionDrop => 4,
            FaultSite::WorkerPanic => 5,
        }
    }

    /// Stable lower-case name, used in injected error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StoreRead => "store-read",
            FaultSite::StoreWrite => "store-write",
            FaultSite::StoreTruncate => "store-truncate",
            FaultSite::StoreDelay => "store-delay",
            FaultSite::ConnectionDrop => "connection-drop",
            FaultSite::WorkerPanic => "worker-panic",
        }
    }
}

/// When and how often one site fires.
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    /// Probability in `[0, 1]` that a given operation at the site is
    /// faulted (drawn deterministically from the plan seed).
    rate: f64,
    /// Hard cap on total injections at the site; once reached the site
    /// goes quiet and recovery can proceed.
    max_injections: u64,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    rules: [Option<FaultRule>; FaultSite::COUNT],
    write_delay: Duration,
    /// Operations observed per site (injected or not).
    ops: [AtomicU64; FaultSite::COUNT],
    /// Faults actually injected per site.
    injected: [AtomicU64; FaultSite::COUNT],
}

/// A seeded, bounded, replayable fault schedule shared by every component
/// of one daemon (store, scheduler, connection handlers).
///
/// Cloning is cheap and shares the counters, so the plan handed to a
/// server is the same object the test later queries via
/// [`FaultPlan::injections`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        // Plans are equal when they would make the same decisions; the
        // mutable counters are runtime state, not identity.
        let rule_bits = |r: &Option<FaultRule>| r.map(|r| (r.rate.to_bits(), r.max_injections));
        self.inner.seed == other.inner.seed
            && self.inner.write_delay == other.inner.write_delay
            && self
                .inner
                .rules
                .iter()
                .map(rule_bits)
                .eq(other.inner.rules.iter().map(rule_bits))
    }
}

impl Eq for FaultPlan {}

impl FaultPlan {
    /// The inert plan: no site ever fires.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::from_parts(0, [None; FaultSite::COUNT], Duration::from_millis(20))
    }

    /// A plan with the given seed and no armed sites; arm sites with
    /// [`FaultPlan::with_fault`].
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan::from_parts(seed, [None; FaultSite::COUNT], Duration::from_millis(20))
    }

    fn from_parts(
        seed: u64,
        rules: [Option<FaultRule>; FaultSite::COUNT],
        write_delay: Duration,
    ) -> Self {
        FaultPlan {
            inner: Arc::new(PlanInner {
                seed,
                rules,
                write_delay,
                ops: Default::default(),
                injected: Default::default(),
            }),
        }
    }

    /// Arms `site` to fire with probability `rate` per operation, at most
    /// `max_injections` times in total.  Returns a plan with fresh
    /// counters, so arm everything before sharing the plan.
    #[must_use]
    pub fn with_fault(self, site: FaultSite, rate: f64, max_injections: u64) -> Self {
        let mut rules = self.inner.rules;
        if let Some(slot) = rules.get_mut(site.index()) {
            *slot = Some(FaultRule {
                rate: rate.clamp(0.0, 1.0),
                max_injections,
            });
        }
        FaultPlan::from_parts(self.inner.seed, rules, self.inner.write_delay)
    }

    /// Sets the fixed delay applied when [`FaultSite::StoreDelay`] fires.
    #[must_use]
    pub fn with_write_delay(self, delay: Duration) -> Self {
        FaultPlan::from_parts(self.inner.seed, self.inner.rules, delay)
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Whether no site is armed (the seams then cost one array load).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.inner.rules.iter().all(Option::is_none)
    }

    /// Records one operation at `site` and decides whether to fault it.
    ///
    /// The decision depends only on (seed, site, per-site operation
    /// index), so a single-threaded replay of the same workload faults the
    /// same operations.
    #[must_use]
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let i = site.index();
        let Some(rule) = self.inner.rules.get(i).copied().flatten() else {
            return false;
        };
        let Some(ops) = self.inner.ops.get(i) else {
            return false;
        };
        let op = ops.fetch_add(1, Ordering::Relaxed);
        if !fires(self.inner.seed, i as u64, op, rule.rate) {
            return false;
        }
        // Charge the injection budget; once exhausted the site goes quiet.
        let Some(injected) = self.inner.injected.get(i) else {
            return false;
        };
        let mut current = injected.load(Ordering::Relaxed);
        loop {
            if current >= rule.max_injections {
                return false;
            }
            match injected.compare_exchange(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Like [`FaultPlan::should_inject`] for [`FaultSite::StoreDelay`],
    /// returning the delay to apply when it fires.
    #[must_use]
    pub fn write_delay(&self) -> Option<Duration> {
        self.should_inject(FaultSite::StoreDelay)
            .then_some(self.inner.write_delay)
    }

    /// An injected I/O error naming the site, for store seams.
    #[must_use]
    pub fn io_error(&self, site: FaultSite) -> std::io::Error {
        std::io::Error::other(format!(
            "injected fault at {} (plan seed {})",
            site.name(),
            self.inner.seed
        ))
    }

    /// Faults injected so far at `site`.
    #[must_use]
    pub fn injections(&self, site: FaultSite) -> u64 {
        self.inner
            .injected
            .get(site.index())
            .map_or(0, |count| count.load(Ordering::Relaxed))
    }

    /// Faults injected so far across all sites.
    #[must_use]
    pub fn total_injections(&self) -> u64 {
        FaultSite::ALL.iter().map(|s| self.injections(*s)).sum()
    }

    /// Operations observed so far at `site` (faulted or not).
    #[must_use]
    pub fn operations(&self, site: FaultSite) -> u64 {
        self.inner
            .ops
            .get(site.index())
            .map_or(0, |count| count.load(Ordering::Relaxed))
    }
}

/// The deterministic coin flip: a ChaCha8 draw keyed on (seed, site, op).
fn fires(seed: u64, site: u64, op: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let key =
        seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ op.wrapping_mul(0xD1B5_4A32_D192_ED03);
    let mut rng = ChaCha8Rng::seed_from_u64(key);
    let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    draw < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        for site in FaultSite::ALL {
            assert!(!plan.should_inject(site));
            assert_eq!(plan.injections(site), 0);
        }
        assert_eq!(plan.total_injections(), 0);
        assert!(plan.write_delay().is_none());
    }

    #[test]
    fn rate_one_fires_until_the_budget_is_spent() {
        let plan = FaultPlan::new(7).with_fault(FaultSite::StoreWrite, 1.0, 3);
        let fired: Vec<bool> = (0..10)
            .map(|_| plan.should_inject(FaultSite::StoreWrite))
            .collect();
        assert_eq!(fired.iter().filter(|f| **f).count(), 3);
        assert_eq!(fired[..3], [true, true, true], "budget spends up front");
        assert_eq!(plan.injections(FaultSite::StoreWrite), 3);
        assert_eq!(plan.operations(FaultSite::StoreWrite), 10);
        // Other sites stay quiet.
        assert!(!plan.should_inject(FaultSite::WorkerPanic));
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let schedule = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).with_fault(FaultSite::ConnectionDrop, 0.5, u64::MAX);
            (0..64)
                .map(|_| plan.should_inject(FaultSite::ConnectionDrop))
                .collect()
        };
        let a = schedule(42);
        assert_eq!(a, schedule(42), "same seed, same schedule");
        assert_ne!(a, schedule(43), "different seed, different schedule");
        let hits = a.iter().filter(|f| **f).count();
        assert!(
            (8..=56).contains(&hits),
            "rate 0.5 over 64 draws fired {hits} times"
        );
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::new(1).with_fault(FaultSite::StoreRead, 1.0, 1);
        let clone = plan.clone();
        assert!(clone.should_inject(FaultSite::StoreRead));
        assert_eq!(plan.injections(FaultSite::StoreRead), 1);
        assert!(!plan.should_inject(FaultSite::StoreRead), "budget shared");
    }

    #[test]
    fn plan_equality_ignores_counters() {
        let a = FaultPlan::new(5).with_fault(FaultSite::StoreWrite, 1.0, 2);
        let b = FaultPlan::new(5).with_fault(FaultSite::StoreWrite, 1.0, 2);
        assert_eq!(a, b);
        let _ = a.should_inject(FaultSite::StoreWrite);
        assert_eq!(a, b, "spent budget does not change identity");
        assert_ne!(
            a,
            FaultPlan::new(6).with_fault(FaultSite::StoreWrite, 1.0, 2)
        );
        assert_ne!(a, FaultPlan::none());
    }

    #[test]
    fn delay_site_reports_the_configured_delay() {
        let plan = FaultPlan::new(2)
            .with_fault(FaultSite::StoreDelay, 1.0, 1)
            .with_write_delay(Duration::from_millis(5));
        assert_eq!(plan.write_delay(), Some(Duration::from_millis(5)));
        assert_eq!(plan.write_delay(), None, "budget of one");
    }

    #[test]
    fn injected_errors_name_the_site() {
        let plan = FaultPlan::new(9);
        let err = plan.io_error(FaultSite::StoreTruncate);
        assert!(err.to_string().contains("store-truncate"));
        assert!(err.to_string().contains("seed 9"));
    }
}
