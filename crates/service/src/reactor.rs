//! The readiness-driven event loop behind the daemon's sockets.
//!
//! One reactor thread owns the listener and every client socket.  It
//! blocks in `poll(2)` — a thin `extern "C"` shim, no crates — until a
//! socket is readable/writable, a handler finished a request, a job a
//! client is watching completed, or a shutdown was requested (the last
//! three arrive through a self-pipe).  Idle connections therefore cost a
//! slab entry and a pollfd, not a thread, and an idle daemon performs
//! *zero* timer-driven wakeups: the poll timeout is infinite unless a
//! `watch` deadline or a shutdown drain is actually pending.
//!
//! Per connection the reactor keeps:
//!
//! * a [`LineDecoder`] accumulating partial request lines across reads,
//! * an ordered queue of *response slots* — one per dispatched request —
//!   so responses go out in request order even though handlers run on a
//!   pool and `watch` responses resolve much later,
//! * a bounded write queue with nonblocking drains: a slow reader
//!   first stops being read from (soft cap) and is eventually closed
//!   (hard cap), so it can never block the loop or other clients.
//!
//! Request execution stays *serial per connection* (one dispatched line
//! at a time), preserving the threaded server's semantics for pipelined
//! requests; different connections execute concurrently on the handler
//! pool.  Handler results come back through the inbox tagged with a
//! connection generation, so a result for a connection that died (and
//! whose slab slot was reused) is discarded instead of misdelivered.
//!
//! Fault injection ([`FaultSite::ConnectionDrop`]) is seated at the
//! response-commit seam: the victim connection gets half its response
//! line and is closed once that fragment flushes, exactly the failure
//! shape the threaded server injected.

use crate::fault::{FaultPlan, FaultSite};
use crate::protocol::{encode_line, JobState, LineDecoder, ReactorStats, Response, ResponseBody};
use crate::scheduler::Scheduler;
use crate::server::ShutdownSignal;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Longest accepted request line; a line still incomplete past this is
/// answered with an error and the connection is closed (slow-loris and
/// runaway-payload bound).
const MAX_LINE: usize = 4 * 1024 * 1024;

/// Write-queue depth at which the reactor stops *reading* a connection:
/// a client that pipelines faster than it drains responses gets
/// backpressure instead of unbounded buffering.
const SOFT_WRITE_CAP: usize = 256 * 1024;

/// Write-queue depth at which the connection is forcibly closed — the
/// peer stopped reading entirely.
const HARD_WRITE_CAP: usize = 8 * 1024 * 1024;

/// Drained-prefix size that triggers compaction of the write queue.
const COMPACT_AT: usize = 64 * 1024;

/// How long a shutdown drain may spend flushing response queues before
/// remaining connections are cut.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Thin `poll(2)`/`pipe(2)` shim over the platform libc — the daemon's
/// only syscall surface beyond `std`.  The build stays crate-free; on
/// non-unix targets the stubs report `Unsupported` and the server
/// refuses to start rather than mis-serving.
#[cfg(unix)]
mod sys {
    /// Readable.
    pub const POLLIN: i16 = 0x001;
    /// Writable.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition.
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up.
    pub const POLLHUP: i16 = 0x010;
    /// Invalid fd.
    pub const POLLNVAL: i16 = 0x020;

    #[cfg(target_os = "linux")]
    type NfdsT = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::ffi::c_uint;

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;

    /// One entry of the poll set, ABI-compatible with `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events.
        pub events: i16,
        /// Returned events.
        pub revents: i16,
    }

    mod ffi {
        use super::{NfdsT, PollFd};
        // SAFETY: declarations match the libc prototypes exactly (POSIX
        // poll/pipe/fcntl/read/write/close); `PollFd` is `#[repr(C)]` and
        // layout-identical to `struct pollfd`, `NfdsT` matches `nfds_t`.
        unsafe extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
            pub fn pipe(fds: *mut i32) -> i32;
            pub fn fcntl(fd: i32, cmd: i32, ...) -> i32;
            pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
            pub fn close(fd: i32) -> i32;
        }
    }

    /// Blocks until an fd in `fds` is ready or `timeout_ms` elapses
    /// (`-1` blocks forever).  Returns the number of ready fds.
    pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        #[allow(clippy::cast_possible_truncation)]
        // SAFETY: `fds` is a live, exclusively-borrowed slice, so the
        // pointer is valid for `fds.len()` entries for the whole call.
        let rc = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(usize::try_from(rc).unwrap_or(0))
        }
    }

    /// Creates a pipe with both ends nonblocking: the write end is safe
    /// to poke from a signal handler (a full pipe means a wakeup is
    /// already pending, so a dropped byte is harmless), and the read end
    /// drains without blocking the event loop.
    pub fn pipe_nonblocking() -> std::io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a stack array of exactly two `i32`s, the shape
        // `pipe(2)` requires; the pointer is valid for the whole call.
        if unsafe { ffi::pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        let [read_end, write_end] = fds;
        for fd in [read_end, write_end] {
            // SAFETY: `fd` was just returned by a successful `pipe(2)`, so
            // it is open and owned here; F_GETFL/F_SETFL take no pointers.
            let flags = unsafe { ffi::fcntl(fd, F_GETFL) };
            // SAFETY: same open fd; F_SETFL with an integer flag argument.
            if flags < 0 || unsafe { ffi::fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let e = std::io::Error::last_os_error();
                close_fd(read_end);
                close_fd(write_end);
                return Err(e);
            }
        }
        Ok((read_end, write_end))
    }

    /// Nonblocking read from a raw fd.
    pub fn read_fd(fd: i32, buf: &mut [u8]) -> std::io::Result<usize> {
        // SAFETY: `buf` is a live, exclusively-borrowed slice; the kernel
        // writes at most `buf.len()` bytes into it.
        let n = unsafe { ffi::read(fd, buf.as_mut_ptr(), buf.len()) };
        if n < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(usize::try_from(n).unwrap_or(0))
        }
    }

    /// Write to a raw fd; a single syscall, async-signal-safe.
    pub fn write_fd(fd: i32, buf: &[u8]) -> std::io::Result<usize> {
        // SAFETY: `buf` is a live borrowed slice; the kernel reads at most
        // `buf.len()` bytes from it and never writes through the pointer.
        let n = unsafe { ffi::write(fd, buf.as_ptr(), buf.len()) };
        if n < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(usize::try_from(n).unwrap_or(0))
        }
    }

    /// Closes a raw fd, ignoring errors.
    pub fn close_fd(fd: i32) {
        // SAFETY: takes no pointers; closing an already-closed fd only
        // yields EBADF, which is deliberately ignored.
        let _ = unsafe { ffi::close(fd) };
    }
}

#[cfg(not(unix))]
mod sys {
    /// Readable.
    pub const POLLIN: i16 = 0x001;
    /// Writable.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition.
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up.
    pub const POLLHUP: i16 = 0x010;
    /// Invalid fd.
    pub const POLLNVAL: i16 = 0x020;

    /// One entry of the poll set (unused stub).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events.
        pub events: i16,
        /// Returned events.
        pub revents: i16,
    }

    fn unsupported() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "the poll(2) reactor requires a unix platform",
        )
    }

    /// Stub: always `Unsupported`.
    pub fn poll(_fds: &mut [PollFd], _timeout_ms: i32) -> std::io::Result<usize> {
        Err(unsupported())
    }

    /// Stub: always `Unsupported`, so `Server::start` fails fast.
    pub fn pipe_nonblocking() -> std::io::Result<(i32, i32)> {
        Err(unsupported())
    }

    /// Stub: always `Unsupported`.
    pub fn read_fd(_fd: i32, _buf: &mut [u8]) -> std::io::Result<usize> {
        Err(unsupported())
    }

    /// Stub: always `Unsupported`.
    pub fn write_fd(_fd: i32, _buf: &[u8]) -> std::io::Result<usize> {
        Err(unsupported())
    }

    /// Stub: no-op.
    pub fn close_fd(_fd: i32) {}
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_io: &T) -> i32 {
    -1
}

/// The self-pipe that wakes the event loop (and the daemon's signal
/// watcher) out of a blocking `poll(2)`.
///
/// [`WakePipe::notify`] is a single nonblocking `write(2)` and is
/// therefore async-signal-safe; [`WakePipe::notify_raw`] performs the
/// same poke given only the raw write-end fd, for use from a signal
/// handler that can touch nothing but a static integer.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    /// Creates the pipe with both ends nonblocking.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the pipe cannot be created, and
    /// `Unsupported` on non-unix platforms.
    pub fn new() -> std::io::Result<WakePipe> {
        let (read_fd, write_fd) = sys::pipe_nonblocking()?;
        Ok(WakePipe { read_fd, write_fd })
    }

    /// Pokes the pipe.  A full pipe means a wakeup is already pending,
    /// so failures are ignored.
    pub fn notify(&self) {
        Self::notify_raw(self.write_fd);
    }

    /// Pokes a pipe by its raw write-end fd — one `write(2)` syscall,
    /// async-signal-safe.  Negative fds are ignored.
    pub fn notify_raw(fd: i32) {
        if fd >= 0 {
            let _ = sys::write_fd(fd, &[1]);
        }
    }

    /// The raw write-end fd, for stashing in a static so a signal
    /// handler can call [`WakePipe::notify_raw`].
    #[must_use]
    pub fn write_end(&self) -> i32 {
        self.write_fd
    }

    pub(crate) fn read_end(&self) -> i32 {
        self.read_fd
    }

    /// Discards every pending wakeup byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!(sys::read_fd(self.read_fd, &mut buf), Ok(n) if n > 0) {}
    }

    /// Blocks until the pipe is poked, then drains it.  Used by the
    /// daemon's signal watcher; the event loop folds the pipe into its
    /// main poll set instead.
    pub fn wait(&self) {
        loop {
            let mut fds = [sys::PollFd {
                fd: self.read_fd,
                events: sys::POLLIN,
                revents: 0,
            }];
            match sys::poll(&mut fds, -1) {
                Ok(0) => {}
                Ok(_) => {
                    self.drain();
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// Live counters of the event loop, snapshotted into
/// [`ReactorStats`] for the `stats` endpoint.
#[derive(Debug, Default)]
pub struct ReactorCounters {
    pub(crate) connections_open: AtomicU64,
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) loop_wakeups: AtomicU64,
    pub(crate) write_queue_hwm: AtomicU64,
    pub(crate) notifications_pushed: AtomicU64,
    pub(crate) watches_active: AtomicU64,
}

impl ReactorCounters {
    /// A consistent-enough snapshot of the counters (each is read
    /// atomically; the set is not fenced — these are gauges, not an
    /// audit log).
    #[must_use]
    pub fn snapshot(&self) -> ReactorStats {
        ReactorStats {
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            loop_wakeups: self.loop_wakeups.load(Ordering::Relaxed),
            write_queue_hwm: self.write_queue_hwm.load(Ordering::Relaxed),
            notifications_pushed: self.notifications_pushed.load(Ordering::Relaxed),
            watches_active: self.watches_active.load(Ordering::Relaxed),
        }
    }
}

/// One complete request line, dispatched from the reactor to the
/// handler pool.
pub(crate) struct WorkItem {
    pub token: usize,
    pub gen: u64,
    pub seq: u64,
    pub line: String,
}

/// What a handler produced for one request line.
pub(crate) enum HandlerOutcome {
    /// An encoded response line, ready for the wire.
    Line(String),
    /// The request was a `watch`: the response is deferred until the
    /// job completes, the optional deadline passes, or the server
    /// drains.  The reactor re-checks the job's state at registration,
    /// so a completion racing the handler cannot be missed.
    Watch { job: u64, deadline: Option<Instant> },
}

struct WorkState {
    queue: VecDeque<WorkItem>,
    stopped: bool,
}

/// The reactor→handler dispatch queue.
pub(crate) struct WorkQueue {
    state: Mutex<WorkState>,
    available: Condvar,
}

impl WorkQueue {
    pub fn new() -> Self {
        WorkQueue {
            state: Mutex::new(WorkState {
                queue: VecDeque::new(),
                stopped: false,
            }),
            available: Condvar::new(),
        }
    }

    pub fn push(&self, item: WorkItem) {
        let mut state = crate::sync::lock_or_recover(&self.state);
        if state.stopped {
            return;
        }
        state.queue.push_back(item);
        self.available.notify_one();
    }

    /// Blocks for the next item; `None` once stopped *and* drained, so
    /// every accepted request is still answered during a shutdown.
    pub fn pop(&self) -> Option<WorkItem> {
        let mut state = crate::sync::lock_or_recover(&self.state);
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.stopped {
                return None;
            }
            state = crate::sync::wait_or_recover(&self.available, state);
        }
    }

    pub fn stop(&self) {
        let mut state = crate::sync::lock_or_recover(&self.state);
        state.stopped = true;
        drop(state);
        self.available.notify_all();
    }
}

#[derive(Default)]
struct InboxQueues {
    results: Vec<(usize, u64, u64, HandlerOutcome)>,
    completions: Vec<(u64, JobState)>,
}

/// The handler→reactor (and scheduler→reactor) result mailbox.
///
/// Lock discipline: the scheduler's terminal hook pushes completions
/// while *holding the scheduler lock*, so the reactor must never call
/// into the scheduler while holding this lock — [`Inbox::take`] moves
/// the queues out and releases before any processing.
#[derive(Default)]
pub(crate) struct Inbox {
    queues: Mutex<InboxQueues>,
}

impl Inbox {
    pub fn push_result(&self, token: usize, gen: u64, seq: u64, outcome: HandlerOutcome) {
        let mut queues = crate::sync::lock_or_recover(&self.queues);
        queues.results.push((token, gen, seq, outcome));
    }

    pub fn push_completion(&self, job: u64, state: JobState) {
        let mut queues = crate::sync::lock_or_recover(&self.queues);
        queues.completions.push((job, state));
    }

    #[allow(clippy::type_complexity)]
    pub fn take(&self) -> (Vec<(usize, u64, u64, HandlerOutcome)>, Vec<(u64, JobState)>) {
        let mut queues = crate::sync::lock_or_recover(&self.queues);
        (
            std::mem::take(&mut queues.results),
            std::mem::take(&mut queues.completions),
        )
    }
}

/// Everything the reactor thread shares with the handler pool, the
/// scheduler's terminal hook and the [`Server`](crate::Server) handle.
pub(crate) struct ReactorShared {
    pub scheduler: Arc<Scheduler>,
    pub signal: Arc<ShutdownSignal>,
    pub work: Arc<WorkQueue>,
    pub inbox: Arc<Inbox>,
    pub wake: Arc<WakePipe>,
    pub counters: Arc<ReactorCounters>,
}

/// One ordered response slot: created when its request line is
/// dispatched, filled when the response line is known.  Only a filled
/// *prefix* of the slot queue ever reaches the write queue, so
/// responses leave in request order no matter when they resolve.
struct Slot {
    seq: u64,
    line: Option<String>,
}

struct WatchEntry {
    seq: u64,
    job: u64,
    deadline: Option<Instant>,
}

struct Connection {
    stream: TcpStream,
    gen: u64,
    decoder: LineDecoder,
    /// Encoded response bytes awaiting a nonblocking write.
    out: Vec<u8>,
    /// Already-written prefix of `out`.
    out_pos: usize,
    pending: VecDeque<Slot>,
    next_seq: u64,
    /// Whether a dispatched request is awaiting its handler result;
    /// requests execute serially per connection.
    inflight: bool,
    /// Complete lines parsed but not yet dispatched.
    ready: VecDeque<String>,
    watches: Vec<WatchEntry>,
    read_closed: bool,
    close_after_flush: bool,
}

impl Connection {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Connection {
            stream,
            gen,
            decoder: LineDecoder::new(MAX_LINE),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            inflight: false,
            ready: VecDeque::new(),
            watches: Vec::new(),
            read_closed: false,
            close_after_flush: false,
        }
    }

    fn out_bytes(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Fills the response slot `seq` and commits the filled prefix to
    /// the write queue (where the connection-drop fault is seated).
    fn fill(&mut self, seq: u64, line: String, fault: &FaultPlan, counters: &ReactorCounters) {
        if let Some(slot) = self.pending.iter_mut().find(|slot| slot.seq == seq) {
            slot.line = Some(line);
        }
        self.promote(fault, counters);
    }

    fn promote(&mut self, fault: &FaultPlan, counters: &ReactorCounters) {
        while self.pending.front().is_some_and(|slot| slot.line.is_some()) {
            let line = self
                .pending
                .pop_front()
                .and_then(|slot| slot.line)
                .unwrap_or_default();
            if fault.should_inject(FaultSite::ConnectionDrop) {
                // Sever the connection mid-line: commit half the
                // response with no newline, then hang up once it
                // flushes.  The client sees a dropped connection and
                // must reconnect and resubmit (idempotent via dedup).
                let cut = line.len() / 2;
                self.out
                    .extend_from_slice(line.as_bytes().get(..cut).unwrap_or_default());
                self.read_closed = true;
                self.close_after_flush = true;
                self.pending.clear();
                self.watches.clear();
                self.ready.clear();
                break;
            }
            self.out.extend_from_slice(line.as_bytes());
        }
        counters.write_queue_hwm.fetch_max(
            u64::try_from(self.out_bytes()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Nonblocking drain of the write queue; `false` means the
    /// connection is dead.
    fn try_flush(&mut self) -> bool {
        while self.out_pos < self.out.len() {
            let Some(unsent) = self.out.get(self.out_pos..) else {
                break;
            };
            match self.stream.write(unsent) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > COMPACT_AT {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        true
    }

    /// Reads everything the socket has; `false` means the connection is
    /// dead.  Complete lines land in `ready`; EOF latches `read_closed`
    /// (the connection stays open until its queued responses and
    /// watches resolve).
    fn read_ready(&mut self) -> bool {
        let mut buf = [0u8; 8192];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if !self.decoder.push(buf.get(..n).unwrap_or_default()) {
                        // A line that can never complete within budget:
                        // answer once (jumping any queued responses — a
                        // protocol-violating peer forfeits ordering)
                        // and close.
                        let line =
                            error_line(&format!("request line exceeds {MAX_LINE} bytes"), None);
                        self.pending.clear();
                        self.watches.clear();
                        self.ready.clear();
                        self.inflight = false;
                        self.out.extend_from_slice(line.as_bytes());
                        self.read_closed = true;
                        self.close_after_flush = true;
                        break;
                    }
                    while let Some(line) = self.decoder.next_line() {
                        if !line.trim().is_empty() {
                            self.ready.push_back(line);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }
}

/// Index-stable connection storage with generation counters: a token
/// observed by a handler stays valid (or is detected stale) across slot
/// reuse.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_gen: u64,
}

impl Slab {
    fn insert(&mut self, stream: TcpStream) -> usize {
        let gen = self.next_gen;
        self.next_gen += 1;
        let conn = Connection::new(stream, gen);
        if let Some(token) = self.free.pop() {
            // A free-list token always names an existing vacant slot; if
            // the list is ever corrupt, fall through and append instead.
            if let Some(slot) = self.slots.get_mut(token) {
                *slot = Some(conn);
                return token;
            }
        }
        self.slots.push(Some(conn));
        self.slots.len() - 1
    }

    fn get_mut(&mut self, token: usize) -> Option<&mut Connection> {
        self.slots.get_mut(token).and_then(Option::as_mut)
    }

    fn remove(&mut self, token: usize) -> Option<Connection> {
        let conn = self.slots.get_mut(token).and_then(Option::take);
        if conn.is_some() {
            self.free.push(token);
        }
        conn
    }

    fn iter(&self) -> impl Iterator<Item = (usize, &Connection)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(token, slot)| slot.as_ref().map(|conn| (token, conn)))
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut Connection)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(token, slot)| slot.as_mut().map(|conn| (token, conn)))
    }

    fn tokens(&self) -> Vec<usize> {
        self.iter().map(|(token, _)| token).collect()
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

fn encoded_or_fallback(response: &Response) -> String {
    encode_line(response).unwrap_or_else(|e| {
        let fallback = Response::new(ResponseBody::Error {
            message: e.to_string(),
            retry_after_ms: None,
        });
        encode_line(&fallback).unwrap_or_else(|_| {
            concat!(
                r#"{"proto":1,"body":{"result":"error","#,
                r#""message":"response serialization failed"}}"#,
                "\n"
            )
            .to_owned()
        })
    })
}

fn status_line(job: u64, state: &JobState) -> String {
    encoded_or_fallback(&Response::new(ResponseBody::Status {
        job,
        state: state.clone(),
    }))
}

fn error_line(message: &str, retry_after_ms: Option<u64>) -> String {
    encoded_or_fallback(&Response::new(ResponseBody::Error {
        message: message.to_owned(),
        retry_after_ms,
    }))
}

enum Target {
    Wake,
    Listener,
    Conn(usize),
}

struct EventLoop<'a> {
    shared: &'a ReactorShared,
    fault: FaultPlan,
    conns: Slab,
    listener: Option<TcpListener>,
    draining: bool,
    drain_deadline: Option<Instant>,
}

/// Runs the event loop until shutdown completes.  Called on the
/// dedicated reactor thread; a fatal `poll` failure is reported to
/// stderr and abandons the loop (the daemon is then effectively dead,
/// which `Server::shutdown` still unwinds cleanly).
pub(crate) fn run(listener: TcpListener, shared: &ReactorShared) {
    // Clones share injection budgets, so the reactor seam and the store
    // seams draw from one plan.
    let fault = shared.scheduler.store().fault_plan().clone();
    let mut event_loop = EventLoop {
        shared,
        fault,
        conns: Slab::default(),
        listener: Some(listener),
        draining: false,
        drain_deadline: None,
    };
    if let Err(e) = event_loop.run() {
        eprintln!("microgradd: event loop failed: {e}");
    }
}

impl EventLoop<'_> {
    fn run(&mut self) -> std::io::Result<()> {
        if let Some(listener) = &self.listener {
            listener.set_nonblocking(true)?;
        }
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut targets: Vec<Target> = Vec::new();
        loop {
            if !self.draining && self.shared.signal.is_triggered() {
                self.enter_drain();
            }

            fds.clear();
            targets.clear();
            fds.push(sys::PollFd {
                fd: self.shared.wake.read_end(),
                events: sys::POLLIN,
                revents: 0,
            });
            targets.push(Target::Wake);
            if let Some(listener) = &self.listener {
                fds.push(sys::PollFd {
                    fd: raw_fd(listener),
                    events: sys::POLLIN,
                    revents: 0,
                });
                targets.push(Target::Listener);
            }
            for (token, conn) in self.conns.iter() {
                let mut events = 0i16;
                // Backpressure: past the soft cap the peer stops being
                // read until its responses drain.
                if !self.draining && !conn.read_closed && conn.out_bytes() < SOFT_WRITE_CAP {
                    events |= sys::POLLIN;
                }
                if conn.out_bytes() > 0 {
                    events |= sys::POLLOUT;
                }
                fds.push(sys::PollFd {
                    fd: raw_fd(&conn.stream),
                    events,
                    revents: 0,
                });
                targets.push(Target::Conn(token));
            }

            match sys::poll(&mut fds, self.poll_timeout()) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            self.shared
                .counters
                .loop_wakeups
                .fetch_add(1, Ordering::Relaxed);

            for (fd, target) in fds.iter().zip(&targets) {
                if fd.revents == 0 {
                    continue;
                }
                match target {
                    Target::Wake => self.shared.wake.drain(),
                    Target::Listener => self.accept_ready(),
                    Target::Conn(token) => self.conn_event(*token, fd.revents),
                }
            }

            // Take the inbox *before* touching the scheduler: the
            // terminal hook pushes under the scheduler lock, so holding
            // the inbox lock across a scheduler call would invert the
            // order and deadlock.
            let (results, completions) = self.shared.inbox.take();
            for (token, gen, seq, outcome) in results {
                self.apply_result(token, gen, seq, outcome);
            }
            self.resolve_completions(completions);
            self.expire_watches(Instant::now());
            self.sweep();
            // Recompute rather than track: watches are removed on many
            // paths (resolution, expiry, drain, faults, close), and a
            // missed decrement would drift forever.  The loop owns every
            // connection, so summing here is exact at publication time.
            let watches: u64 = self.conns.iter().map(|(_, c)| c.watches.len() as u64).sum();
            self.shared
                .counters
                .watches_active
                .store(watches, Ordering::Relaxed);

            if self.draining {
                let expired = self
                    .drain_deadline
                    .is_some_and(|deadline| Instant::now() >= deadline);
                if self.conns.is_empty() || expired {
                    for token in self.conns.tokens() {
                        self.close(token);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// `poll` timeout in milliseconds: the nearest watch deadline or
    /// the drain deadline, else infinite.  An idle daemon therefore
    /// performs zero timer wakeups.
    fn poll_timeout(&self) -> i32 {
        let mut deadline = self.drain_deadline;
        for (_, conn) in self.conns.iter() {
            for watch in &conn.watches {
                if let Some(d) = watch.deadline {
                    deadline = Some(deadline.map_or(d, |current| current.min(d)));
                }
            }
        }
        match deadline {
            None => -1,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                // Round up so a sub-millisecond remainder sleeps one
                // tick instead of spinning.
                i32::try_from(remaining.as_millis().saturating_add(1)).unwrap_or(i32::MAX)
            }
        }
    }

    fn enter_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_TIMEOUT);
        // Stop accepting: dropping the listener closes its fd.
        self.listener = None;
        // Watches cannot resolve once the loop exits; answer each with
        // the job's current state so no client hangs on a draining
        // server.
        for (_, conn) in self.conns.iter_mut() {
            let watches = std::mem::take(&mut conn.watches);
            for watch in watches {
                let line = match self.shared.scheduler.status(watch.job) {
                    Some(state) => status_line(watch.job, &state),
                    None => error_line(&format!("unknown job {}", watch.job), None),
                };
                conn.fill(watch.seq, line, &self.fault, &self.shared.counters);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    self.conns.insert(stream);
                    self.shared
                        .counters
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .counters
                        .connections_open
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: usize, revents: i16) {
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(token) {
            if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
                dead = true;
            } else if revents & (sys::POLLIN | sys::POLLHUP) != 0 && !conn.read_closed {
                dead = !conn.read_ready();
            }
        }
        if dead {
            self.close(token);
        }
    }

    fn apply_result(&mut self, token: usize, gen: u64, seq: u64, outcome: HandlerOutcome) {
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.gen != gen {
            // The connection this result belongs to died and its slot
            // was reused; the occupant must not receive it.
            return;
        }
        conn.inflight = false;
        match outcome {
            HandlerOutcome::Line(line) => {
                conn.fill(seq, line, &self.fault, &self.shared.counters);
            }
            HandlerOutcome::Watch { job, deadline } => {
                // Re-check at registration: the job may have reached a
                // terminal state between the handler's decision and
                // now, and that completion push may already be
                // consumed.  The terminal hook fires under the
                // scheduler lock, so either this status observes the
                // terminal state or the completion lands in the inbox
                // after this point — never neither.
                let line = match self.shared.scheduler.status(job) {
                    None => Some(error_line(&format!("unknown job {job}"), None)),
                    Some(state) if state.is_terminal() || draining => {
                        Some(status_line(job, &state))
                    }
                    Some(_) => {
                        conn.watches.push(WatchEntry { seq, job, deadline });
                        None
                    }
                };
                if let Some(line) = line {
                    conn.fill(seq, line, &self.fault, &self.shared.counters);
                }
            }
        }
    }

    fn resolve_completions(&mut self, completions: Vec<(u64, JobState)>) {
        for (job, state) in completions {
            for (_, conn) in self.conns.iter_mut() {
                let mut i = 0;
                while let Some(entry) = conn.watches.get(i) {
                    if entry.job == job {
                        let watch = conn.watches.swap_remove(i);
                        conn.fill(
                            watch.seq,
                            status_line(job, &state),
                            &self.fault,
                            &self.shared.counters,
                        );
                        self.shared
                            .counters
                            .notifications_pushed
                            .fetch_add(1, Ordering::Relaxed);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Answers watches whose budget expired with the job's *current*
    /// (typically non-terminal) state, per the protocol contract.
    fn expire_watches(&mut self, now: Instant) {
        for (_, conn) in self.conns.iter_mut() {
            let mut i = 0;
            while let Some(entry) = conn.watches.get(i) {
                if entry.deadline.is_some_and(|d| d <= now) {
                    let watch = conn.watches.swap_remove(i);
                    let line = match self.shared.scheduler.status(watch.job) {
                        Some(state) => status_line(watch.job, &state),
                        None => error_line(&format!("unknown job {}", watch.job), None),
                    };
                    conn.fill(watch.seq, line, &self.fault, &self.shared.counters);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Per-iteration housekeeping: dispatch the next ready line of each
    /// idle connection, flush write queues, close what is finished.
    fn sweep(&mut self) {
        for token in self.conns.tokens() {
            let mut dead = false;
            if let Some(conn) = self.conns.get_mut(token) {
                if !self.draining && !conn.inflight {
                    if let Some(line) = conn.ready.pop_front() {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.pending.push_back(Slot { seq, line: None });
                        conn.inflight = true;
                        self.shared.work.push(WorkItem {
                            token,
                            gen: conn.gen,
                            seq,
                            line,
                        });
                    }
                }
                if !conn.try_flush() {
                    dead = true;
                }
                let drained = conn.out_bytes() == 0;
                let quiescent = !conn.inflight
                    && conn.pending.is_empty()
                    && conn.watches.is_empty()
                    && conn.ready.is_empty();
                if conn.out_bytes() > HARD_WRITE_CAP {
                    // The peer stopped reading altogether.
                    dead = true;
                }
                if drained && conn.close_after_flush {
                    dead = true;
                }
                if drained && conn.read_closed && quiescent {
                    dead = true;
                }
                if self.draining && drained && !conn.inflight && conn.pending.is_empty() {
                    // Nothing left to deliver: a draining server closes
                    // the session.
                    dead = true;
                }
            }
            if dead {
                self.close(token);
            }
        }
    }

    fn close(&mut self, token: usize) {
        if self.conns.remove(token).is_some() {
            self.shared
                .counters
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
            self.shared
                .counters
                .connections_closed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_notifies_and_drains() {
        let pipe = WakePipe::new().expect("pipe");
        pipe.notify();
        pipe.notify();
        // Both pokes coalesce into one wait.
        pipe.wait();
        let mut buf = [0u8; 8];
        // Drained: the read end has nothing left.
        assert!(matches!(
            sys::read_fd(pipe.read_end(), &mut buf),
            Ok(0) | Err(_)
        ));
        // notify_raw on a negative fd is a no-op, not a crash.
        WakePipe::notify_raw(-1);
    }

    #[test]
    fn work_queue_drains_after_stop() {
        let queue = WorkQueue::new();
        queue.push(WorkItem {
            token: 1,
            gen: 0,
            seq: 0,
            line: "a".into(),
        });
        queue.stop();
        // Items enqueued before the stop still come out…
        assert_eq!(queue.pop().map(|item| item.token), Some(1));
        // …then the queue reports exhaustion instead of blocking.
        assert!(queue.pop().is_none());
        // Pushes after the stop are refused.
        queue.push(WorkItem {
            token: 2,
            gen: 0,
            seq: 0,
            line: "b".into(),
        });
        assert!(queue.pop().is_none());
    }

    #[test]
    fn slab_reuses_slots_with_fresh_generations() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut slab = Slab::default();
        let s1 = TcpStream::connect(addr).expect("connect");
        let s2 = TcpStream::connect(addr).expect("connect");
        let t1 = slab.insert(s1);
        let gen1 = slab.get_mut(t1).expect("live").gen;
        assert!(slab.remove(t1).is_some());
        assert!(slab.get_mut(t1).is_none(), "removed slot reads empty");
        let t2 = slab.insert(s2);
        assert_eq!(t1, t2, "freed slot is reused");
        let gen2 = slab.get_mut(t2).expect("live").gen;
        assert_ne!(gen1, gen2, "reuse bumps the generation");
        assert!(!slab.is_empty());
    }

    #[test]
    fn response_slots_promote_in_request_order() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = TcpStream::connect(addr).expect("connect");
        let mut conn = Connection::new(stream, 0);
        let fault = FaultPlan::none();
        let counters = ReactorCounters::default();
        conn.pending.push_back(Slot { seq: 0, line: None });
        conn.pending.push_back(Slot { seq: 1, line: None });
        // Filling the *second* slot first must not emit anything…
        conn.fill(1, "second\n".into(), &fault, &counters);
        assert_eq!(conn.out_bytes(), 0, "out-of-order slot is held back");
        // …until the first resolves, then both flush in request order.
        conn.fill(0, "first\n".into(), &fault, &counters);
        assert_eq!(&conn.out, b"first\nsecond\n");
        assert!(conn.pending.is_empty());
        assert!(counters.snapshot().write_queue_hwm >= 13);
    }
}
