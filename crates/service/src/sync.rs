//! Poison-recovering wrappers around `std::sync` locking.
//!
//! The scheduler fences job execution with `catch_unwind`, so the only
//! way a service mutex becomes poisoned is a panic inside one of the
//! crate's own short, allocation-light critical sections — which the
//! `no-panic-paths` lint forbids.  If one slips through anyway, the old
//! `.expect("poisoned")` behavior turned a single wounded thread into a
//! cascade: every other thread touching the lock panicked too, taking the
//! reactor (and all of its connections) with it.  Recovering the guard
//! with [`PoisonError::into_inner`] instead keeps the daemon serving;
//! scheduler state transitions are designed to be individually consistent
//! (counters use saturating arithmetic, map entries are inserted/removed
//! in single statements), so observing a post-panic state is safe — at
//! worst a statistics counter is momentarily stale.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait`, recovering the reacquired guard on poison.
pub(crate) fn wait_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout`, recovering the reacquired guard on poison.
pub(crate) fn wait_timeout_or_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_after_a_panicked_holder() {
        let mutex = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().expect("first lock");
            panic!("poison it");
        }));
        assert!(mutex.is_poisoned());
        let mut guard = lock_or_recover(&mutex);
        *guard += 1;
        assert_eq!(*guard, 8);
    }
}
