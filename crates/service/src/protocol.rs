//! The wire protocol: versioned JSON-lines requests and responses.
//!
//! Every message is a single JSON object on one line, terminated by `\n`.
//! The object carries the protocol version in its `proto` field and the
//! payload in `body`; request payloads are tagged by `op`, response
//! payloads by `result`.  One request always yields exactly one response on
//! the same connection, in order, so a client may pipeline requests.
//!
//! ```text
//! → {"proto":1,"body":{"op":"submit","config":{...},"priority":0}}
//! ← {"proto":1,"body":{"result":"submitted","job":1,"deduped":false,"cached":false}}
//! → {"proto":1,"body":{"op":"status","job":1}}
//! ← {"proto":1,"body":{"result":"status","job":1,"state":{"phase":"running"}}}
//! ```
//!
//! See `docs/service.md` for the full message catalogue.

use micrograd_core::{CacheStats, FrameworkConfig, FrameworkOutput};
use micrograd_obs::JobTimeline;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol version this build speaks.
///
/// A request whose `proto` differs is answered with an error naming both
/// versions, never silently misinterpreted.
pub const PROTO_VERSION: u32 = 1;

/// A client-to-server message: protocol version plus operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version ([`PROTO_VERSION`]).
    pub proto: u32,
    /// The requested operation.
    pub body: RequestBody,
}

impl Request {
    /// Wraps an operation in a current-version envelope.
    #[must_use]
    pub fn new(body: RequestBody) -> Self {
        Request {
            proto: PROTO_VERSION,
            body,
        }
    }
}

/// The operations a client can request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "kebab-case")]
pub enum RequestBody {
    /// Submit a framework job.  Jobs with equal configurations are
    /// deduplicated server-side: both clients observe the same job id.
    Submit {
        /// The full framework configuration to execute.
        config: FrameworkConfig,
        /// Scheduling priority; higher runs earlier (default 0).
        #[serde(default)]
        priority: i64,
        /// Optional wall-clock budget for the job, in milliseconds,
        /// measured from admission.  A job that exceeds it is cancelled
        /// cooperatively and reaches the [`JobState::TimedOut`] terminal
        /// state.  The deadline is submit metadata, not job identity: it
        /// does not participate in deduplication, and a deduplicated
        /// submit keeps the original job's deadline.
        #[serde(default)]
        deadline_ms: Option<u64>,
    },
    /// Poll the state of a job.
    Status {
        /// The job id returned by submit.
        job: u64,
    },
    /// Wait for a job to reach a terminal state *without polling*: the
    /// server defers the response until the job completes (or the watch
    /// times out), then pushes a `status` line.  This is the only request
    /// whose response is not immediate — responses to requests pipelined
    /// behind a pending watch are delivered after it resolves, preserving
    /// the one-response-per-request, in-order invariant.
    Watch {
        /// The job id returned by submit.
        job: u64,
        /// Optional watch budget: when the job is still live after this
        /// many milliseconds, the server answers with its *current*
        /// (non-terminal) state instead of holding the response forever.
        /// Absent means wait indefinitely.
        #[serde(default)]
        timeout_ms: Option<u64>,
    },
    /// Fetch the report of a completed job.
    Fetch {
        /// The job id returned by submit.
        job: u64,
    },
    /// List every job the server knows about.
    List,
    /// Server-wide counters (queue, executions, memo-cache totals, store).
    Stats,
    /// The full metrics registry in Prometheus text exposition format:
    /// every counter and gauge the `stats` endpoint summarizes, plus the
    /// latency histograms (request service time, queue wait, execution
    /// time) from which p50/p95/p99 are derived.
    Metrics,
    /// The per-stage timeline of a job: when it was received, queued,
    /// dequeued, executed (with per-epoch marks), persisted and answered.
    /// Available for terminal jobs; timelines persist alongside reports,
    /// so a restarted daemon can still answer for jobs it ran earlier.
    Trace {
        /// The job id returned by submit.
        job: u64,
    },
    /// Ask the server to shut down gracefully: in-flight jobs finish,
    /// queued jobs stay queued, every connection is answered then closed.
    Shutdown,
}

/// A server-to-client message: protocol version plus result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version ([`PROTO_VERSION`]).
    pub proto: u32,
    /// The operation's result.
    pub body: ResponseBody,
}

impl Response {
    /// Wraps a result in a current-version envelope.
    #[must_use]
    pub fn new(body: ResponseBody) -> Self {
        Response {
            proto: PROTO_VERSION,
            body,
        }
    }
}

/// The results a server can answer with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "result", rename_all = "kebab-case")]
pub enum ResponseBody {
    /// A job was accepted (or recognized as a duplicate).
    Submitted {
        /// The job id to poll and fetch with.
        job: u64,
        /// An identical job already existed; this id refers to it.
        deduped: bool,
        /// The report was answered from the durable store without running.
        cached: bool,
    },
    /// The current state of a job.
    Status {
        /// The polled job.
        job: u64,
        /// Its scheduling state.
        state: JobState,
    },
    /// The report of a completed job.
    Report {
        /// The fetched job.
        job: u64,
        /// The framework report.
        output: FrameworkOutput,
    },
    /// Every job the server knows about.
    Jobs {
        /// One summary per job, ordered by id.
        jobs: Vec<JobSummary>,
    },
    /// Server-wide counters.
    Stats {
        /// The counters.
        stats: ServerStats,
    },
    /// The metrics registry rendered as Prometheus text exposition.
    Metrics {
        /// The exposition document (`# TYPE` headers, one sample per
        /// line); safe to serve to a Prometheus scraper verbatim.
        text: String,
    },
    /// The per-stage timeline of a traced job.
    Timeline {
        /// The recorded timeline: stage marks as offsets from the moment
        /// the submit request reached the scheduler.
        timeline: JobTimeline,
    },
    /// The server acknowledged a shutdown request.
    ShuttingDown,
    /// The request failed; `message` says why.
    Error {
        /// Human-readable failure reason.
        message: String,
        /// Machine-readable retry hint: when present, the failure is
        /// transient (queue full, server draining) and the client should
        /// retry the same request after this many milliseconds.  Absent on
        /// permanent failures.
        #[serde(default)]
        retry_after_ms: Option<u64>,
    },
}

/// The scheduling state of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "phase", rename_all = "kebab-case")]
pub enum JobState {
    /// Waiting in the priority queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; the report can be fetched.
    Done,
    /// Execution failed.
    Failed {
        /// The failure reason.
        error: String,
    },
    /// The job's `deadline_ms` budget expired before it finished; the run
    /// was cancelled cooperatively and its partial results were discarded.
    /// Like [`JobState::Failed`], a timed-out job never satisfies
    /// deduplication, so resubmitting the same configuration runs it anew.
    TimedOut,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed { .. } | JobState::TimedOut
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobState::Queued => write!(f, "queued"),
            JobState::Running => write!(f, "running"),
            JobState::Done => write!(f, "done"),
            JobState::Failed { error } => write!(f, "failed: {error}"),
            JobState::TimedOut => write!(f, "timed out"),
        }
    }
}

/// One row of the job listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job id.
    pub job: u64,
    /// Configuration fingerprint (the dedup / store key).
    pub fingerprint: u64,
    /// The use-case tag of the configuration (e.g. `stress`,
    /// `clone-benchmark`).
    pub use_case: String,
    /// Scheduling priority.
    pub priority: i64,
    /// Current state.
    pub state: JobState,
}

/// Server-wide counters, the payload of the stats endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Submit requests accepted (including deduplicated and store-answered
    /// ones).
    pub jobs_submitted: u64,
    /// Submits answered with an already-known job id.
    pub jobs_deduped: u64,
    /// Submits rejected because the queue was full.
    pub jobs_rejected: u64,
    /// Submits answered from the durable store without executing.
    pub store_hits: u64,
    /// Jobs actually executed on the platform.
    pub executions: u64,
    /// Jobs that finished successfully.
    pub jobs_completed: u64,
    /// Jobs that failed.
    pub jobs_failed: u64,
    /// Jobs whose deadline expired before they finished.
    #[serde(default)]
    pub jobs_timed_out: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently running.
    pub running: u64,
    /// Background workers serving the queue.
    pub workers: u64,
    /// Reports resident in the durable store.
    pub stored_reports: u64,
    /// Memo-cache counters summed over all executed jobs
    /// ([`SimPlatform::cache_stats`](micrograd_core::SimPlatform::cache_stats)).
    pub cache: CacheStats,
    /// Event-loop counters (connection churn, wakeups, backpressure
    /// high-water mark).  Zero when the stats come from a bare
    /// [`Scheduler`](crate::Scheduler) with no server in front of it.
    #[serde(default)]
    pub reactor: ReactorStats,
}

/// Counters of the readiness event loop serving the daemon's sockets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReactorStats {
    /// Connections currently registered with the event loop.
    pub connections_open: u64,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections closed since startup (EOF, error, backpressure cap or
    /// shutdown).
    pub connections_closed: u64,
    /// Times the event loop woke from `poll(2)`.  With idle connections
    /// this stays flat — readiness is interrupt-shaped, not timer-shaped.
    pub loop_wakeups: u64,
    /// High-water mark of any single connection's pending write-queue
    /// bytes (the backpressure gauge).
    pub write_queue_hwm: u64,
    /// Deferred `watch` responses pushed on job completion.
    pub notifications_pushed: u64,
    /// Watch responses currently deferred in the event loop (defaults for
    /// peers that predate the field).
    #[serde(default)]
    pub watches_active: u64,
}

/// Incremental JSON-lines decoder: feed raw socket bytes in, take complete
/// lines out.
///
/// The server's event loop reads whatever the socket has — which may be a
/// byte, half a multi-byte UTF-8 character, or twelve pipelined requests —
/// and needs request framing to survive arbitrary fragmentation.  Bytes
/// accumulate here untouched until a `\n` lands; only complete lines are
/// ever decoded, so a slowly-arriving request cannot be corrupted by the
/// boundary falling inside a character.
///
/// A line that exceeds `max_line` bytes before its newline arrives trips
/// the overflow state: [`LineDecoder::push`] returns `false`, the caller
/// should answer with an error and close, and no further input is
/// buffered (bounding memory against a client that never terminates its
/// line).
#[derive(Debug)]
pub struct LineDecoder {
    buf: Vec<u8>,
    /// Scan cursor: bytes before it are known newline-free.
    scanned: usize,
    max_line: usize,
    overflowed: bool,
}

impl LineDecoder {
    /// Creates a decoder bounding any single line to `max_line` bytes.
    #[must_use]
    pub fn new(max_line: usize) -> Self {
        LineDecoder {
            buf: Vec::new(),
            scanned: 0,
            max_line,
            overflowed: false,
        }
    }

    /// Appends raw socket bytes.  Returns `false` once the accumulated
    /// partial line exceeds the decoder's bound — the line can never
    /// complete within budget, and the input was not buffered.
    pub fn push(&mut self, bytes: &[u8]) -> bool {
        if self.overflowed {
            return false;
        }
        self.buf.extend_from_slice(bytes);
        // Overflow only when no newline can ever complete the line within
        // budget; complete lines still buffered just await `next_line`.
        let unscanned = self.buf.get(self.scanned..).unwrap_or(&[]);
        if self.buf.len() > self.max_line && !unscanned.contains(&b'\n') {
            self.overflowed = true;
            return false;
        }
        true
    }

    /// Takes the next complete line (without its newline), decoded
    /// lossily: invalid UTF-8 becomes replacement characters and is
    /// rejected later as malformed JSON rather than corrupting the
    /// session.  Returns `None` until a full line is buffered.
    pub fn next_line(&mut self) -> Option<String> {
        let pos = self
            .buf
            .get(self.scanned..)
            .unwrap_or(&[])
            .iter()
            .position(|b| *b == b'\n')
            .map(|p| p + self.scanned);
        match pos {
            Some(pos) => {
                let line = String::from_utf8_lossy(self.buf.get(..pos).unwrap_or(&[])).into_owned();
                self.buf.drain(..=pos);
                self.scanned = 0;
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Whether a line overflowed the decoder's bound.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Bytes buffered for the (incomplete) current line.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// A malformed or incompatible wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line was not a valid message of the expected shape.
    Malformed(String),
    /// The message used a different protocol version.
    Version {
        /// The version the peer sent.
        got: u32,
    },
    /// A message could not be serialized for the wire.  Surfaced to the
    /// caller instead of being silently swallowed, so an unencodable
    /// message never turns into an empty line on the socket.
    Encode(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(reason) => write!(f, "malformed message: {reason}"),
            WireError::Version { got } => write!(
                f,
                "protocol version mismatch: peer speaks {got}, this build speaks {PROTO_VERSION}"
            ),
            WireError::Encode(reason) => write!(f, "message serialization failed: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message as one JSON line (including the trailing newline).
///
/// # Errors
///
/// Returns [`WireError::Encode`] if the message cannot be serialized;
/// serialization failures are reported, never replaced by an empty line.
pub fn encode_line<T: Serialize>(message: &T) -> Result<String, WireError> {
    let mut line = serde_json::to_string(message).map_err(|e| WireError::Encode(e.to_string()))?;
    debug_assert!(!line.contains('\n'), "compact JSON must be single-line");
    line.push('\n');
    Ok(line)
}

/// Checks the envelope's `proto` field *before* decoding the payload, so a
/// future-version message whose body does not parse under this build's
/// schema is still reported as a version mismatch, not as malformed.
fn check_line_proto(line: &str) -> Result<(), WireError> {
    #[derive(Deserialize)]
    struct ProtoProbe {
        proto: u32,
    }
    let probe: ProtoProbe =
        serde_json::from_str(line).map_err(|e| WireError::Malformed(e.to_string()))?;
    if probe.proto == PROTO_VERSION {
        Ok(())
    } else {
        Err(WireError::Version { got: probe.proto })
    }
}

/// Decodes one request line, enforcing the protocol version.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] for unparseable input and
/// [`WireError::Version`] for a version mismatch.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    let line = line.trim_end();
    check_line_proto(line)?;
    serde_json::from_str(line).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decodes one response line, enforcing the protocol version.
///
/// # Errors
///
/// Returns [`WireError::Malformed`] for unparseable input and
/// [`WireError::Version`] for a version mismatch.
pub fn decode_response(line: &str) -> Result<Response, WireError> {
    let line = line.trim_end();
    check_line_proto(line)?;
    serde_json::from_str(line).map_err(|e| WireError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use micrograd_core::{MetricKind, StressGoal, UseCaseConfig};

    fn submit_request() -> Request {
        Request::new(RequestBody::Submit {
            config: FrameworkConfig {
                use_case: UseCaseConfig::Stress {
                    metric: MetricKind::Ipc,
                    goal: StressGoal::Minimize,
                },
                ..FrameworkConfig::default()
            },
            priority: 7,
            deadline_ms: Some(2_500),
        })
    }

    #[test]
    fn requests_round_trip_as_single_lines() {
        let requests = vec![
            submit_request(),
            Request::new(RequestBody::Status { job: 3 }),
            Request::new(RequestBody::Watch {
                job: 3,
                timeout_ms: Some(1_500),
            }),
            Request::new(RequestBody::Watch {
                job: 4,
                timeout_ms: None,
            }),
            Request::new(RequestBody::Fetch { job: 3 }),
            Request::new(RequestBody::List),
            Request::new(RequestBody::Stats),
            Request::new(RequestBody::Metrics),
            Request::new(RequestBody::Trace { job: 3 }),
            Request::new(RequestBody::Shutdown),
        ];
        for request in requests {
            let line = encode_line(&request).unwrap();
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one line per message");
            let back = decode_request(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip_as_single_lines() {
        let responses = vec![
            Response::new(ResponseBody::Submitted {
                job: 1,
                deduped: false,
                cached: true,
            }),
            Response::new(ResponseBody::Status {
                job: 1,
                state: JobState::Failed {
                    error: "broken\nnewline".into(),
                },
            }),
            Response::new(ResponseBody::Jobs {
                jobs: vec![JobSummary {
                    job: 1,
                    fingerprint: u64::MAX,
                    use_case: "stress".into(),
                    priority: -4,
                    state: JobState::Running,
                }],
            }),
            Response::new(ResponseBody::Stats {
                stats: ServerStats {
                    jobs_submitted: 5,
                    ..ServerStats::default()
                },
            }),
            Response::new(ResponseBody::Metrics {
                text: "# TYPE micrograd_jobs_submitted_total counter\n\
                       micrograd_jobs_submitted_total 5\n"
                    .into(),
            }),
            Response::new(ResponseBody::Timeline {
                timeline: JobTimeline {
                    job: 3,
                    started_ns: 12_000,
                    marks: vec![
                        micrograd_obs::TimelineMark {
                            stage: "received".into(),
                            offset_ns: 0,
                            detail: 0,
                        },
                        micrograd_obs::TimelineMark {
                            stage: "epoch".into(),
                            offset_ns: 9_500,
                            detail: 2,
                        },
                    ],
                },
            }),
            Response::new(ResponseBody::ShuttingDown),
            Response::new(ResponseBody::Error {
                message: "nope".into(),
                retry_after_ms: None,
            }),
            Response::new(ResponseBody::Error {
                message: "queue full".into(),
                retry_after_ms: Some(250),
            }),
            Response::new(ResponseBody::Status {
                job: 9,
                state: JobState::TimedOut,
            }),
        ];
        for response in responses {
            let line = encode_line(&response).unwrap();
            assert_eq!(line.matches('\n').count(), 1, "newlines must be escaped");
            let back = decode_response(&line).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn legacy_messages_without_new_fields_still_decode() {
        // A pre-deadline client omits `deadline_ms`; a pre-retry-hint
        // server omits `retry_after_ms`.  Both must decode with the field
        // defaulted to `None`.
        let legacy_error = r#"{"proto":1,"body":{"result":"error","message":"nope"}}"#;
        let response = decode_response(legacy_error).unwrap();
        assert_eq!(
            response.body,
            ResponseBody::Error {
                message: "nope".into(),
                retry_after_ms: None,
            }
        );
        // A watch without a timeout waits indefinitely; a stats payload
        // from a pre-reactor server defaults the reactor counters to zero.
        let bare_watch = r#"{"proto":1,"body":{"op":"watch","job":7}}"#;
        let request = decode_request(bare_watch).unwrap();
        assert_eq!(
            request.body,
            RequestBody::Watch {
                job: 7,
                timeout_ms: None,
            }
        );
        let legacy_stats = r#"{"proto":1,"body":{"result":"stats","stats":{"jobs_submitted":3,"jobs_deduped":0,"jobs_rejected":0,"store_hits":0,"executions":3,"jobs_completed":3,"jobs_failed":0,"queue_depth":0,"running":0,"workers":2,"stored_reports":0,"cache":{"hits":0,"misses":0,"inserts":0,"entries":0,"replacements":0,"capacity":0}}}}"#;
        let response = decode_response(legacy_stats).unwrap();
        match response.body {
            ResponseBody::Stats { stats } => {
                assert_eq!(stats.jobs_submitted, 3);
                assert_eq!(stats.reactor, ReactorStats::default());
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn line_decoder_reassembles_one_byte_at_a_time() {
        let mut decoder = LineDecoder::new(1 << 20);
        let line = r#"{"proto":1,"body":{"op":"status","job":9}}"#;
        for byte in line.as_bytes() {
            assert!(decoder.push(std::slice::from_ref(byte)));
            assert!(decoder.next_line().is_none(), "no line before newline");
        }
        assert!(decoder.push(b"\n"));
        assert_eq!(decoder.next_line().as_deref(), Some(line));
        assert!(decoder.next_line().is_none());
        assert_eq!(decoder.pending_bytes(), 0);
        // The reassembled line decodes like any other.
        assert!(decode_request(line).is_ok());
    }

    #[test]
    fn line_decoder_splits_pipelined_input_and_survives_utf8_boundaries() {
        let mut decoder = LineDecoder::new(1 << 20);
        // Two complete lines plus a fragment, arriving in one read.
        assert!(decoder.push("alpha\nbeta\ngam".as_bytes()));
        assert_eq!(decoder.next_line().as_deref(), Some("alpha"));
        assert_eq!(decoder.next_line().as_deref(), Some("beta"));
        assert!(decoder.next_line().is_none());
        // A multi-byte character split across pushes must reassemble.
        let snowman = "☃"; // 3 UTF-8 bytes
        assert!(decoder.push(&snowman.as_bytes()[..1]));
        assert!(decoder.next_line().is_none());
        assert!(decoder.push(&snowman.as_bytes()[1..]));
        assert!(decoder.push(b"ma\n"));
        assert_eq!(decoder.next_line().as_deref(), Some("gam☃ma"));
    }

    #[test]
    fn line_decoder_bounds_runaway_lines() {
        let mut decoder = LineDecoder::new(16);
        assert!(decoder.push(b"0123456789"));
        assert!(!decoder.overflowed());
        // Crossing the bound without a newline trips the overflow latch…
        assert!(!decoder.push(b"0123456789"));
        assert!(decoder.overflowed());
        // …and further input is refused, not buffered.
        let buffered = decoder.pending_bytes();
        assert!(!decoder.push(b"more"));
        assert_eq!(decoder.pending_bytes(), buffered);
        // A complete line longer than the bound in a single push is still
        // delivered: memory was already spent, framing stays intact.
        let mut decoder = LineDecoder::new(4);
        assert!(decoder.push(b"longer-than-four\nok"));
        assert_eq!(decoder.next_line().as_deref(), Some("longer-than-four"));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut request = submit_request();
        request.proto = PROTO_VERSION + 1;
        let line = encode_line(&request).unwrap();
        assert_eq!(
            decode_request(&line),
            Err(WireError::Version {
                got: PROTO_VERSION + 1
            })
        );
        let message = decode_request(&line).unwrap_err().to_string();
        assert!(message.contains("version"), "got: {message}");

        // A future-version message whose body does not parse under this
        // build's schema is still a version mismatch, not "malformed".
        let future = format!(
            "{{\"proto\":{},\"body\":{{\"op\":\"cancel\",\"job\":1}}}}\n",
            PROTO_VERSION + 1
        );
        assert_eq!(
            decode_request(&future),
            Err(WireError::Version {
                got: PROTO_VERSION + 1
            })
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(matches!(
            decode_request("{nope"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(r#"{"proto":1,"body":{"op":"warp"}}"#),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_response("[]"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn job_state_display_and_terminality() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        let failed = JobState::Failed {
            error: "why".into(),
        };
        assert!(failed.is_terminal());
        assert_eq!(failed.to_string(), "failed: why");
        assert_eq!(JobState::Queued.to_string(), "queued");
        assert!(JobState::TimedOut.is_terminal());
        assert_eq!(JobState::TimedOut.to_string(), "timed out");
    }
}
