//! Test-only helpers (no `tempfile` crate in the offline build).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning scratch directory.
pub(crate) struct ScratchDir(PathBuf);

impl ScratchDir {
    pub(crate) fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "micrograd-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        ScratchDir(dir)
    }

    pub(crate) fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
