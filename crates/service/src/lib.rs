//! # micrograd-service
//!
//! The persistent job-server subsystem: MicroGrad as a *service* instead
//! of a function call.  A long-lived `microgradd` daemon accepts framework
//! jobs from many clients over a versioned JSON-lines TCP protocol,
//! schedules them on a bounded priority queue with a worker pool, and
//! persists completed reports (and the evaluation memo cache) in a durable
//! on-disk store — so a restarted daemon answers repeat jobs from disk,
//! bit-identically to the first run.
//!
//! | Layer | Module | Role |
//! |---|---|---|
//! | wire protocol | [`protocol`] | versioned JSON-lines [`Request`]/[`Response`] messages |
//! | scheduler | [`scheduler`] | bounded priority queue, worker pool, fingerprint dedup |
//! | durable store | [`store`] | content-addressed reports + memo-cache dumps |
//! | event loop | [`reactor`] | `poll(2)` readiness loop: one thread, every socket |
//! | server | [`server`] | reactor + handler pool wiring, clean shutdown |
//! | client | [`client`] | blocking session client (also behind `micrograd-cli`) |
//! | observability | [`metrics`] | metrics registry, latency histograms, job trace sink |
//! | fault injection | [`fault`] | seeded, replayable chaos plans for the seams above |
//!
//! Job identity is
//! [`FrameworkConfig::fingerprint`](micrograd_core::FrameworkConfig::fingerprint):
//! two clients
//! submitting the identical configuration share one execution and receive
//! the same report, and a configuration whose report is already stored is
//! answered without running at all.  On every fingerprint match the full
//! configuration is compared, so a 64-bit collision costs a duplicate
//! execution, never a wrong report.
//!
//! # In-process quick start
//!
//! ```
//! use micrograd_core::{CoreKind, FrameworkConfig, KnobSpaceKind};
//! use micrograd_service::{Client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })?;
//! let mut client = Client::connect(server.local_addr())?;
//!
//! let config = FrameworkConfig {
//!     core: CoreKind::Small,
//!     knob_space: KnobSpaceKind::InstructionFractions,
//!     max_epochs: 2,
//!     dynamic_len: 3_000,
//!     ..FrameworkConfig::default()
//! };
//! let output = client
//!     .submit_and_wait(&config, 0, Duration::from_secs(120))
//!     .expect("job completes");
//! assert!(output.as_stress().is_some());
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Over the network the same session is the `micrograd-cli` binary talking
//! to `microgradd`; see `docs/service.md` for the protocol reference and
//! the daemon's operational model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod scheduler;
pub mod server;
pub mod store;
pub(crate) mod sync;
#[cfg(test)]
mod testutil;

pub use client::{Client, ClientError, RetryPolicy, SubmitReceipt};
pub use fault::{FaultPlan, FaultSite};
pub use metrics::{ServiceMetrics, REQUEST_OPS};
pub use protocol::{
    decode_request, decode_response, encode_line, JobState, JobSummary, LineDecoder, ReactorStats,
    Request, RequestBody, Response, ResponseBody, ServerStats, WireError, PROTO_VERSION,
};
pub use reactor::{ReactorCounters, WakePipe};
pub use scheduler::{
    FetchResult, Scheduler, SchedulerConfig, SubmitError, SubmitOutcome, TerminalHook,
};
pub use server::{Server, ServerConfig};
pub use store::{platform_key, ResultStore, StoredCache, StoredReport};
