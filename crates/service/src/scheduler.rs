//! The job scheduler: a bounded priority queue in front of a worker pool.
//!
//! Jobs are whole [`FrameworkConfig`]s; workers execute them through
//! [`MicroGrad::run_on`] on a per-job platform that is warm-started from
//! (and dumped back to) the [`ResultStore`]'s memo-cache persistence.  Job
//! identity is [`FrameworkConfig::fingerprint`]: submitting a configuration
//! that is already queued, running or done returns the existing job id
//! instead of executing twice, and a configuration whose report is already
//! in the durable store completes instantly without running at all.  On a
//! fingerprint match the full configuration is compared, so a 64-bit
//! collision yields two independent jobs, never a shared report.
//!
//! Priorities are client-chosen `i64`s, higher first; ties run in
//! submission order.  The queue is bounded — a full queue rejects new work
//! (back-pressure) rather than buffering without limit.

use crate::fault::FaultSite;
use crate::metrics::ServiceMetrics;
use crate::protocol::{JobState, JobSummary, ReactorStats, ServerStats};
use crate::store::{platform_key, ResultStore};
use crate::sync::{lock_or_recover, wait_or_recover, wait_timeout_or_recover};
use micrograd_core::{
    CacheStats, CancelToken, FrameworkConfig, FrameworkOutput, MicroGrad, MicroGradError,
    ProgressObserver,
};
use micrograd_obs::clock::now_ns;
use micrograd_obs::{JobTimeline, Stage};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Background worker threads.  `0` starts none: jobs then only run
    /// when [`Scheduler::step`] is called (useful for tests and benches
    /// that want deterministic, inline execution).
    pub workers: usize,
    /// Maximum number of queued (not yet running) jobs; further submits
    /// are rejected until the queue drains.
    pub queue_capacity: usize,
    /// Maximum number of *terminal* (done/failed) job records kept
    /// resident; beyond it the oldest-terminal records (and their cloned
    /// reports) are evicted so a long-lived daemon's memory stays bounded.
    /// An evicted job id answers "unknown job"; resubmitting its
    /// configuration is answered from the durable store.
    pub retained_jobs: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
            retained_jobs: 1024,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} jobs); retry later")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The outcome of an accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The job id to poll and fetch with.
    pub job: u64,
    /// An identical job already existed; `job` refers to it.
    pub deduped: bool,
    /// The report was answered from the durable store without executing.
    pub cached: bool,
}

/// The result of asking for a job's report.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchResult {
    /// No such job.
    NotFound,
    /// The job exists but has not completed; its current state is included.
    NotReady(JobState),
    /// The completed report.
    Ready(FrameworkOutput),
}

struct JobRecord {
    id: u64,
    config: FrameworkConfig,
    fingerprint: u64,
    priority: i64,
    state: JobState,
    output: Option<FrameworkOutput>,
    /// Cooperative-cancellation handle seeded into the job's platform.
    /// Carries the job's deadline (measured from admission) when the
    /// submission specified one; never fires otherwise.
    cancel: CancelToken,
    /// Observability metadata only (latency histograms, timelines) —
    /// never part of job identity, dedup or tuning results.
    received_ns: u64,
    /// When the job left the queue for a worker; `0` until dequeued.
    dequeued_ns: u64,
}

impl JobRecord {
    fn summary(&self) -> JobSummary {
        JobSummary {
            job: self.id,
            fingerprint: self.fingerprint,
            use_case: self.config.use_case.kind_name().to_owned(),
            priority: self.priority,
            state: self.state.clone(),
        }
    }
}

/// Heap entry: max-heap on (priority, earlier submission first).
#[derive(PartialEq, Eq)]
struct QueuedEntry {
    priority: i64,
    seq: u64,
    job: u64,
}

impl Ord for QueuedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct SchedState {
    next_job: u64,
    next_seq: u64,
    queue: BinaryHeap<QueuedEntry>,
    jobs: HashMap<u64, JobRecord>,
    by_fingerprint: HashMap<u64, Vec<u64>>,
    /// Terminal job ids, oldest first — the eviction order that keeps the
    /// resident record count bounded by `retained_jobs`.
    terminal_order: VecDeque<u64>,
    running: u64,
    cache_totals: CacheStats,
    shutdown: bool,
}

/// Callback invoked whenever a job reaches a terminal state.
///
/// Invoked with the scheduler's internal lock held, so implementations
/// must be quick and must never call back into the scheduler — the
/// server's hook only appends to the reactor's event inbox and writes one
/// byte to its wake pipe.
pub type TerminalHook = Arc<dyn Fn(u64, &JobState) + Send + Sync>;

struct SchedulerInner {
    state: Mutex<SchedState>,
    /// Signaled when work is enqueued or shutdown begins.
    work_ready: Condvar,
    /// Signaled when any job reaches a terminal state.
    job_done: Condvar,
    /// External terminal-state observer (the server's reactor wakeup).
    terminal_hook: Mutex<Option<TerminalHook>>,
    store: ResultStore,
    config: SchedulerConfig,
    /// The registry, histograms and trace sink every counter bump and
    /// stage event goes through.  `stats()` is a view over these cells.
    metrics: Arc<ServiceMetrics>,
    shutting_down: AtomicBool,
}

impl SchedulerInner {
    fn hook(&self) -> Option<TerminalHook> {
        lock_or_recover(&self.terminal_hook).clone()
    }

    /// Assembles a terminal job's timeline from its trace events and
    /// persists it next to the report.  Called *after* the scheduler lock
    /// is released — the write is disk I/O — and best-effort: a failed
    /// write costs a `trace` answer, never the job's result.
    fn persist_timeline(&self, job: u64) {
        let events = self.metrics.sink().collect(job);
        if let Some(timeline) = JobTimeline::from_events(job, &events) {
            if let Err(e) = self.store.save_timeline(&timeline) {
                eprintln!("microgradd: failed to persist timeline for job {job}: {e}");
            }
        }
    }
}

/// A bounded-priority-queue scheduler executing framework jobs on a worker
/// pool, with store-backed dedup and warm-started memo caches.
pub struct Scheduler {
    inner: Arc<SchedulerInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Creates a scheduler over a result store and starts its workers.
    #[must_use]
    pub fn new(config: SchedulerConfig, store: ResultStore) -> Self {
        let inner = Arc::new(SchedulerInner {
            state: Mutex::new(SchedState {
                next_job: 1,
                next_seq: 0,
                queue: BinaryHeap::new(),
                jobs: HashMap::new(),
                by_fingerprint: HashMap::new(),
                terminal_order: VecDeque::new(),
                running: 0,
                cache_totals: CacheStats::default(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            terminal_hook: Mutex::new(None),
            store,
            config,
            metrics: Arc::new(ServiceMetrics::new()),
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a job with no deadline.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the bounded queue is at
    /// capacity and [`SubmitError::ShuttingDown`] during shutdown.
    pub fn submit(
        &self,
        config: FrameworkConfig,
        priority: i64,
    ) -> Result<SubmitOutcome, SubmitError> {
        self.submit_with_deadline(config, priority, None)
    }

    /// Submits a job, optionally bounded by a deadline in milliseconds
    /// measured from admission.  A job that exceeds its deadline — queued
    /// or running — is cancelled cooperatively, reaches
    /// [`JobState::TimedOut`], frees its worker, and never satisfies
    /// deduplication afterwards.  The deadline is submit metadata, not job
    /// identity: a submission that dedups onto an existing job keeps that
    /// job's deadline.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the bounded queue is at
    /// capacity and [`SubmitError::ShuttingDown`] during shutdown.
    pub fn submit_with_deadline(
        &self,
        config: FrameworkConfig,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> Result<SubmitOutcome, SubmitError> {
        let fingerprint = config.fingerprint();
        let inner = &self.inner;

        // Dedup under the lock: an identical configuration that is queued,
        // running or already completed answers with the existing job.
        // Failed jobs do not absorb resubmissions — a retry is a fresh
        // execution.
        {
            let state = lock_or_recover(&inner.state);
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if let Some(job) = state.dedup_match(fingerprint, &config) {
                inner.metrics.jobs_submitted.inc();
                inner.metrics.jobs_deduped.inc();
                return Ok(SubmitOutcome {
                    job,
                    deduped: true,
                    cached: false,
                });
            }
        }

        // Durable-store probe *without* the lock: a disk read plus JSON
        // parse must not stall status/fetch polls or the worker pool.
        let stored = inner.store.load_report(&config);

        let mut state = lock_or_recover(&inner.state);
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        // Re-check dedup: an identical submission may have been admitted
        // while the lock was released for the store probe.
        if let Some(job) = state.dedup_match(fingerprint, &config) {
            inner.metrics.jobs_submitted.inc();
            inner.metrics.jobs_deduped.inc();
            return Ok(SubmitOutcome {
                job,
                deduped: true,
                cached: false,
            });
        }

        // Durable-store hit: the job is born completed; its deadline is
        // moot and the token is left inert.
        if let Some(output) = stored {
            let job = state.admit(config, fingerprint, priority, None);
            if let Some(record) = state.jobs.get_mut(&job) {
                record.state = JobState::Done;
                record.output = Some(output);
            }
            inner.metrics.jobs_submitted.inc();
            inner.metrics.store_hits.inc();
            inner.metrics.jobs_completed.inc();
            let sink = inner.metrics.sink();
            sink.record(job, Stage::Received, 0);
            // `arg = 1` marks "already persisted": the report predates
            // this submission, nothing was written now.
            sink.record(job, Stage::Persisted, 1);
            sink.record(job, Stage::Completed, 0);
            if let Some(received) = state.jobs.get(&job).map(|r| r.received_ns) {
                inner
                    .metrics
                    .job_total_us
                    .record(now_ns().saturating_sub(received) / 1_000);
            }
            let hook = inner.hook();
            state.mark_terminal(job, inner.config.retained_jobs, hook.as_ref());
            inner.job_done.notify_all();
            drop(state);
            inner.persist_timeline(job);
            return Ok(SubmitOutcome {
                job,
                deduped: false,
                cached: true,
            });
        }

        if state.queue.len() >= inner.config.queue_capacity {
            inner.metrics.jobs_rejected.inc();
            return Err(SubmitError::QueueFull {
                capacity: inner.config.queue_capacity,
            });
        }

        let job = state.admit(config, fingerprint, priority, deadline_ms);
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push(QueuedEntry { priority, seq, job });
        inner.metrics.jobs_submitted.inc();
        inner.metrics.sink().record(job, Stage::Received, 0);
        inner.metrics.sink().record(job, Stage::Queued, 0);
        inner
            .metrics
            .sync_queue(state.queue.len() as u64, state.running);
        inner.work_ready.notify_one();
        Ok(SubmitOutcome {
            job,
            deduped: false,
            cached: false,
        })
    }

    /// The current state of a job, if it exists.
    #[must_use]
    pub fn status(&self, job: u64) -> Option<JobState> {
        let state = lock_or_recover(&self.inner.state);
        state.jobs.get(&job).map(|record| record.state.clone())
    }

    /// The completed report of a job.
    #[must_use]
    pub fn fetch(&self, job: u64) -> FetchResult {
        let state = lock_or_recover(&self.inner.state);
        match state.jobs.get(&job) {
            None => FetchResult::NotFound,
            Some(record) => match &record.output {
                Some(output) => FetchResult::Ready(output.clone()),
                None => FetchResult::NotReady(record.state.clone()),
            },
        }
    }

    /// Summaries of every known job, ordered by id.
    #[must_use]
    pub fn list(&self) -> Vec<JobSummary> {
        let state = lock_or_recover(&self.inner.state);
        let mut jobs: Vec<JobSummary> = state.jobs.values().map(JobRecord::summary).collect();
        jobs.sort_by_key(|summary| summary.job);
        jobs
    }

    /// Scheduler-wide counters (the stats endpoint payload).  A *view*
    /// over the metrics registry: every counter here is read from the
    /// same cell the `metrics` endpoint exposes, so the two surfaces can
    /// never disagree.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        // Count stored reports (a directory scan for disk stores) before
        // taking the lock — the same discipline as submit's store probe.
        let stored_reports = self.inner.store.report_count();
        let metrics = &self.inner.metrics;
        let state = lock_or_recover(&self.inner.state);
        ServerStats {
            jobs_submitted: metrics.jobs_submitted.value(),
            jobs_deduped: metrics.jobs_deduped.value(),
            jobs_rejected: metrics.jobs_rejected.value(),
            store_hits: metrics.store_hits.value(),
            executions: metrics.executions.value(),
            jobs_completed: metrics.jobs_completed.value(),
            jobs_failed: metrics.jobs_failed.value(),
            jobs_timed_out: metrics.jobs_timed_out.value(),
            queue_depth: state.queue.len() as u64,
            running: state.running,
            workers: self.inner.config.workers as u64,
            stored_reports,
            cache: state.cache_totals,
            // A bare scheduler has no event loop; the server overlays the
            // live reactor counters before answering a stats request.
            reactor: ReactorStats::default(),
        }
    }

    /// The metrics registry, histograms and trace sink this scheduler
    /// records through.
    #[must_use]
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// Renders the metrics registry in the Prometheus text exposition
    /// format, after synchronizing the gauges that mirror scheduler and
    /// store state (queue depth, running jobs, cache totals, stored
    /// reports).
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let stored_reports = self.inner.store.report_count();
        {
            let state = lock_or_recover(&self.inner.state);
            self.inner
                .metrics
                .sync_queue(state.queue.len() as u64, state.running);
            self.inner.metrics.sync_cache(&state.cache_totals);
        }
        self.inner.metrics.stored_reports.set(stored_reports);
        self.inner.metrics.render_prometheus()
    }

    /// The per-stage timeline of a job: the persisted record for terminal
    /// jobs (it survives daemon restarts alongside the report), or a
    /// partial timeline assembled live from the trace rings for a job
    /// still in flight.  `None` for unknown jobs and jobs whose events
    /// have been overwritten in the bounded rings without ever reaching
    /// a terminal state.
    #[must_use]
    pub fn timeline(&self, job: u64) -> Option<JobTimeline> {
        if let Some(timeline) = self.inner.store.load_timeline(job) {
            return Some(timeline);
        }
        let events = self.inner.metrics.sink().collect(job);
        JobTimeline::from_events(job, &events)
    }

    /// Blocks until the job reaches a terminal state or the timeout
    /// elapses; returns the state last observed (`None` for an unknown
    /// job).
    #[must_use]
    pub fn wait(&self, job: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = lock_or_recover(&self.inner.state);
        loop {
            let current = state.jobs.get(&job)?.state.clone();
            if current.is_terminal() {
                return Some(current);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(current);
            }
            let (next, _) = wait_timeout_or_recover(&self.inner.job_done, state, deadline - now);
            state = next;
        }
    }

    /// Pops and executes the highest-priority queued job on the calling
    /// thread; returns `false` when the queue is empty.
    ///
    /// This is the `workers: 0` execution mode for tests and benches that
    /// want inline, deterministic scheduling.
    pub fn step(&self) -> bool {
        let mut expired = Vec::new();
        let job = {
            let mut state = lock_or_recover(&self.inner.state);
            pop_job(&self.inner, &mut state, &mut expired)
        };
        // Timeline writes are disk I/O: only after the lock is released.
        for job in expired {
            self.inner.persist_timeline(job);
        }
        match job {
            Some(job) => {
                execute_job(&self.inner, job);
                true
            }
            None => false,
        }
    }

    /// Stops accepting new submissions immediately: from this point every
    /// [`submit`](Self::submit) returns [`SubmitError::ShuttingDown`]
    /// instead of acknowledging work that would be lost on exit.  Running
    /// jobs finish, queued jobs stay queued, and reads (status / fetch /
    /// list / stats) keep being served.  Non-blocking;
    /// [`shutdown`](Self::shutdown) additionally joins the workers.
    pub fn begin_shutdown(&self) {
        let mut state = lock_or_recover(&self.inner.state);
        state.shutdown = true;
        self.inner.work_ready.notify_all();
    }

    /// Stops accepting work, lets running jobs finish, and joins the
    /// workers.  Queued jobs remain queued (their state stays `Queued`).
    /// Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.begin_shutdown();
        let workers = std::mem::take(&mut *lock_or_recover(&self.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// The store this scheduler persists to.
    #[must_use]
    pub fn store(&self) -> &ResultStore {
        &self.inner.store
    }

    /// Installs the terminal-state observer.  The hook fires once per job
    /// on the transition into `Done`/`Failed`/`TimedOut` — including
    /// instant store-hit completions and queued-deadline expiries — and is
    /// invoked with the scheduler lock held, so it must be quick and must
    /// not call back into the scheduler.  The server uses it to wake the
    /// event loop and resolve pending `watch` requests without polling.
    pub fn set_terminal_hook(&self, hook: TerminalHook) {
        *lock_or_recover(&self.inner.terminal_hook) = Some(hook);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SchedState {
    /// An existing job with this exact configuration that a submission can
    /// share.  Failed and timed-out jobs never absorb resubmissions — a
    /// retry after either is a fresh execution, so an expired deadline
    /// never poisons the dedup table.
    fn dedup_match(&self, fingerprint: u64, config: &FrameworkConfig) -> Option<u64> {
        self.by_fingerprint
            .get(&fingerprint)?
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .find(|record| {
                record.config == *config
                    && !matches!(record.state, JobState::Failed { .. } | JobState::TimedOut)
            })
            .map(|record| record.id)
    }

    /// Records that a job reached a terminal state and evicts the oldest
    /// terminal records beyond `retain`, so resident history stays bounded
    /// on a long-lived daemon.  Queued and running jobs are never evicted.
    ///
    /// The terminal hook (if installed) observes the transition here —
    /// every path to a terminal state funnels through this method, so the
    /// server's reactor hears about store-hit completions, queued-deadline
    /// expiries and worker completions alike.
    fn mark_terminal(&mut self, job: u64, retain: usize, hook: Option<&TerminalHook>) {
        if let (Some(hook), Some(record)) = (hook, self.jobs.get(&job)) {
            hook(job, &record.state);
        }
        self.terminal_order.push_back(job);
        while self.terminal_order.len() > retain {
            let Some(evicted) = self.terminal_order.pop_front() else {
                break;
            };
            if let Some(record) = self.jobs.remove(&evicted) {
                if let Some(ids) = self.by_fingerprint.get_mut(&record.fingerprint) {
                    ids.retain(|id| *id != evicted);
                    if ids.is_empty() {
                        self.by_fingerprint.remove(&record.fingerprint);
                    }
                }
            }
        }
    }

    /// Creates a job record and indexes it by fingerprint.  The deadline
    /// clock starts here, at admission.
    fn admit(
        &mut self,
        config: FrameworkConfig,
        fingerprint: u64,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> u64 {
        let id = self.next_job;
        self.next_job += 1;
        let cancel = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::never(),
        };
        self.jobs.insert(
            id,
            JobRecord {
                id,
                config,
                fingerprint,
                priority,
                state: JobState::Queued,
                output: None,
                cancel,
                received_ns: now_ns(),
                dequeued_ns: 0,
            },
        );
        self.by_fingerprint.entry(fingerprint).or_default().push(id);
        id
    }
}

/// Pops the next runnable job and marks it running (caller holds the lock).
///
/// A job whose deadline expired while it sat in the queue is retired to
/// [`JobState::TimedOut`] here, without ever occupying a worker, and the
/// next entry is considered instead; its id is appended to `expired` so
/// the caller can persist its timeline once the lock is released.
fn pop_job(inner: &SchedulerInner, state: &mut SchedState, expired: &mut Vec<u64>) -> Option<u64> {
    let popped = loop {
        let Some(entry) = state.queue.pop() else {
            break None;
        };
        // A queue entry whose record has vanished is stale (only terminal
        // records are ever evicted, and a queued job is not terminal); skip
        // it rather than trust the invariant with a panic.
        let Some(record) = state.jobs.get_mut(&entry.job) else {
            continue;
        };
        if record.cancel.is_cancelled() {
            record.state = JobState::TimedOut;
            inner.metrics.jobs_timed_out.inc();
            inner.metrics.sink().record(entry.job, Stage::TimedOut, 0);
            inner
                .metrics
                .job_total_us
                .record(now_ns().saturating_sub(record.received_ns) / 1_000);
            expired.push(entry.job);
            let hook = inner.hook();
            state.mark_terminal(entry.job, inner.config.retained_jobs, hook.as_ref());
            inner.job_done.notify_all();
            continue;
        }
        let dequeued = now_ns();
        record.state = JobState::Running;
        inner
            .metrics
            .job_queue_wait_us
            .record(dequeued.saturating_sub(record.received_ns) / 1_000);
        record.dequeued_ns = dequeued;
        state.running += 1;
        inner.metrics.executions.inc();
        inner.metrics.sink().record(entry.job, Stage::Dequeued, 0);
        break Some(entry.job);
    };
    inner
        .metrics
        .sync_queue(state.queue.len() as u64, state.running);
    popped
}

fn worker_loop(inner: &SchedulerInner) {
    enum Next {
        Job(u64),
        /// The pop expired queued jobs without finding runnable work:
        /// release the lock to persist their timelines, then come back.
        Expired,
        Stop,
    }
    loop {
        let mut expired = Vec::new();
        let next = {
            let mut state = lock_or_recover(&inner.state);
            loop {
                if state.shutdown {
                    break Next::Stop;
                }
                match pop_job(inner, &mut state, &mut expired) {
                    Some(job) => break Next::Job(job),
                    None if !expired.is_empty() => break Next::Expired,
                    None => state = wait_or_recover(&inner.work_ready, state),
                }
            }
        };
        // Timeline writes are disk I/O: only after the lock is released.
        for job in expired {
            inner.persist_timeline(job);
        }
        match next {
            Next::Job(job) => execute_job(inner, job),
            Next::Expired => {}
            Next::Stop => return,
        }
    }
}

/// Runs one job to completion: warm-start the platform from the store's
/// cache dump, execute, dump the (superset) cache back, persist the report,
/// publish the terminal state.
///
/// Execution runs under `catch_unwind`: a panic inside the framework marks
/// the job `Failed` instead of killing the worker thread and leaving the
/// job `Running` forever.
fn execute_job(inner: &SchedulerInner, job: u64) {
    let (config, cancel) = {
        let mut state = lock_or_recover(&inner.state);
        let Some(record) = state.jobs.get(&job) else {
            // The record vanished between pop and execute (running jobs are
            // never evicted, so this is unreachable today); give the worker
            // slot back and run nothing.
            state.running = state.running.saturating_sub(1);
            return;
        };
        (record.config.clone(), record.cancel.clone())
    };

    inner.metrics.sink().record(job, Stage::Executing, 0);
    let key = platform_key(&config);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inner
            .store
            .fault_plan()
            .should_inject(FaultSite::WorkerPanic)
        {
            // lint:allow(no-panic-paths): deliberate WorkerPanic fault injection, caught by the catch_unwind fence below
            panic!(
                "{}",
                inner.store.fault_plan().io_error(FaultSite::WorkerPanic)
            );
        }
        let framework = MicroGrad::new(config.clone());
        // Observe tuner-epoch boundaries: each batch the tuner hands the
        // platform marks one epoch in the job's timeline (detail = epoch
        // ordinal), alongside a global epoch counter for throughput rates.
        let epoch = AtomicU64::new(0);
        let metrics = Arc::clone(&inner.metrics);
        let observer = ProgressObserver::new(move |_evaluations: usize| {
            let n = epoch.fetch_add(1, Ordering::Relaxed) + 1;
            metrics.epochs.inc();
            metrics.sink().record(job, Stage::Epoch, n);
        });
        // Seed the job's cancellation token into the platform: the tuner
        // checks it at epoch boundaries and the simulator every
        // `CANCEL_CHECK_INTERVAL` instructions, so an expired deadline
        // frees this worker promptly.
        let platform = framework
            .platform()
            .with_cancel_token(cancel.clone())
            .with_progress_observer(observer);
        platform.import_cache(inner.store.load_cache(&key));

        let result = framework.run_on(&platform);

        if let Err(e) = inner.store.save_cache(&key, platform.export_cache()) {
            eprintln!("microgradd: failed to persist cache dump for `{key}`: {e}");
        }
        if let Ok(output) = &result {
            match inner.store.save_report(&config, output) {
                Ok(()) => inner.metrics.sink().record(job, Stage::Persisted, 0),
                Err(e) => {
                    eprintln!("microgradd: failed to persist report for job {job}: {e}");
                }
            }
        }
        (result, platform.cache_stats())
    }));

    {
        let mut state = lock_or_recover(&inner.state);
        state.running = state.running.saturating_sub(1);
        let Some(record) = state.jobs.get_mut(&job) else {
            // Evicted mid-run (unreachable today); still wake any waiters so
            // a `wait` on the vanished id re-checks and returns `None`.
            inner.job_done.notify_all();
            return;
        };
        let (received_ns, dequeued_ns) = (record.received_ns, record.dequeued_ns);
        match outcome {
            Ok((result, cache_stats)) => {
                match result {
                    Ok(output) => {
                        record.state = JobState::Done;
                        record.output = Some(output);
                        inner.metrics.jobs_completed.inc();
                        inner.metrics.sink().record(job, Stage::Completed, 0);
                    }
                    // A cancellation raised by the job's own (deadline-armed)
                    // token is a timeout, not a failure: the deadline is the
                    // only thing that fires these per-job tokens.
                    Err(MicroGradError::Cancelled) if cancel.is_cancelled() => {
                        record.state = JobState::TimedOut;
                        inner.metrics.jobs_timed_out.inc();
                        inner.metrics.sink().record(job, Stage::TimedOut, 0);
                    }
                    Err(e) => {
                        record.state = JobState::Failed {
                            error: e.to_string(),
                        };
                        inner.metrics.jobs_failed.inc();
                        inner.metrics.sink().record(job, Stage::Failed, 0);
                    }
                }
                state.cache_totals = state.cache_totals.merged(cache_stats);
            }
            Err(payload) => {
                record.state = JobState::Failed {
                    error: format!("job execution panicked: {}", panic_message(&*payload)),
                };
                inner.metrics.jobs_failed.inc();
                inner.metrics.sink().record(job, Stage::Failed, 0);
            }
        }
        let now = now_ns();
        inner
            .metrics
            .job_execution_us
            .record(now.saturating_sub(dequeued_ns) / 1_000);
        inner
            .metrics
            .job_total_us
            .record(now.saturating_sub(received_ns) / 1_000);
        let hook = inner.hook();
        state.mark_terminal(job, inner.config.retained_jobs, hook.as_ref());
        inner
            .metrics
            .sync_queue(state.queue.len() as u64, state.running);
        inner.job_done.notify_all();
    }
    // The timeline is complete; persist it outside the state lock.
    inner.persist_timeline(job);
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ScratchDir;
    use micrograd_core::{CoreKind, KnobSpaceKind, MetricKind, StressGoal, UseCaseConfig};

    fn tiny_config(seed: u64) -> FrameworkConfig {
        FrameworkConfig {
            core: CoreKind::Small,
            knob_space: KnobSpaceKind::InstructionFractions,
            use_case: UseCaseConfig::Stress {
                metric: MetricKind::Ipc,
                goal: StressGoal::Minimize,
            },
            max_epochs: 2,
            dynamic_len: 3_000,
            reference_len: 3_000,
            seed,
            ..FrameworkConfig::default()
        }
    }

    fn manual_scheduler(queue_capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                workers: 0,
                queue_capacity,
                ..SchedulerConfig::default()
            },
            ResultStore::in_memory(),
        )
    }

    #[test]
    fn step_executes_jobs_by_priority_then_fifo() {
        let scheduler = manual_scheduler(16);
        let low = scheduler.submit(tiny_config(1), 0).unwrap().job;
        let tied_first = scheduler.submit(tiny_config(2), 5).unwrap().job;
        let tied_second = scheduler.submit(tiny_config(3), 5).unwrap().job;
        let high = scheduler.submit(tiny_config(4), 9).unwrap().job;

        let mut completion_order = Vec::new();
        while scheduler.step() {
            for summary in scheduler.list() {
                if summary.state == JobState::Done && !completion_order.contains(&summary.job) {
                    completion_order.push(summary.job);
                }
            }
        }
        assert_eq!(completion_order, vec![high, tied_first, tied_second, low]);
        assert_eq!(scheduler.stats().executions, 4);
    }

    #[test]
    fn identical_submissions_share_one_job() {
        let scheduler = manual_scheduler(16);
        let first = scheduler.submit(tiny_config(1), 0).unwrap();
        assert!(!first.deduped);
        let second = scheduler.submit(tiny_config(1), 3).unwrap();
        assert!(second.deduped);
        assert_eq!(second.job, first.job);
        assert!(!second.cached);

        assert!(scheduler.step());
        assert!(!scheduler.step(), "one execution for two submissions");
        let stats = scheduler.stats();
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.jobs_deduped, 1);
        assert_eq!(stats.executions, 1);

        // Dedup also applies to completed jobs.
        let third = scheduler.submit(tiny_config(1), 0).unwrap();
        assert!(third.deduped);
        assert_eq!(third.job, first.job);
    }

    #[test]
    fn queue_capacity_rejects_overflow() {
        let scheduler = manual_scheduler(2);
        scheduler.submit(tiny_config(1), 0).unwrap();
        scheduler.submit(tiny_config(2), 0).unwrap();
        let err = scheduler.submit(tiny_config(3), 0).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("full"));
        let stats = scheduler.stats();
        assert_eq!(stats.jobs_rejected, 1);
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.queue_depth, 2);

        // Draining the queue admits work again.
        assert!(scheduler.step());
        scheduler.submit(tiny_config(3), 0).unwrap();
    }

    #[test]
    fn store_hit_completes_without_executing() {
        let scratch = ScratchDir::new("sched-store");
        let store = ResultStore::open(scratch.path()).unwrap();
        let config = tiny_config(1);

        {
            let scheduler = Scheduler::new(
                SchedulerConfig {
                    workers: 0,
                    queue_capacity: 8,
                    ..SchedulerConfig::default()
                },
                store,
            );
            let receipt = scheduler.submit(config.clone(), 0).unwrap();
            assert!(!receipt.cached);
            assert!(scheduler.step());
            assert_eq!(scheduler.status(receipt.job), Some(JobState::Done));
        }

        // A fresh scheduler over the same directory — a "restarted daemon".
        let scheduler = Scheduler::new(
            SchedulerConfig {
                workers: 0,
                queue_capacity: 8,
                ..SchedulerConfig::default()
            },
            ResultStore::open(scratch.path()).unwrap(),
        );
        let receipt = scheduler.submit(config, 0).unwrap();
        assert!(receipt.cached, "answered from the durable store");
        assert_eq!(scheduler.status(receipt.job), Some(JobState::Done));
        let stats = scheduler.stats();
        assert_eq!(stats.executions, 0);
        assert_eq!(stats.store_hits, 1);
        assert!(matches!(
            scheduler.fetch(receipt.job),
            FetchResult::Ready(_)
        ));
    }

    #[test]
    fn background_workers_complete_jobs() {
        let scheduler = Scheduler::new(
            SchedulerConfig {
                workers: 2,
                queue_capacity: 8,
                ..SchedulerConfig::default()
            },
            ResultStore::in_memory(),
        );
        let a = scheduler.submit(tiny_config(1), 0).unwrap().job;
        let b = scheduler.submit(tiny_config(2), 0).unwrap().job;
        assert_eq!(
            scheduler.wait(a, Duration::from_secs(60)),
            Some(JobState::Done)
        );
        assert_eq!(
            scheduler.wait(b, Duration::from_secs(60)),
            Some(JobState::Done)
        );
        scheduler.shutdown();
        assert_eq!(
            scheduler.submit(tiny_config(3), 0),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn terminal_records_are_evicted_beyond_the_retention_cap() {
        let scheduler = Scheduler::new(
            SchedulerConfig {
                workers: 0,
                queue_capacity: 8,
                retained_jobs: 2,
            },
            ResultStore::in_memory(),
        );
        let a = scheduler.submit(tiny_config(1), 0).unwrap().job;
        let b = scheduler.submit(tiny_config(2), 0).unwrap().job;
        let c = scheduler.submit(tiny_config(3), 0).unwrap().job;
        while scheduler.step() {}

        // The oldest terminal record was evicted; the two newest remain.
        assert!(scheduler.status(a).is_none(), "oldest record evicted");
        assert_eq!(scheduler.fetch(a), FetchResult::NotFound);
        assert_eq!(scheduler.status(b), Some(JobState::Done));
        assert_eq!(scheduler.status(c), Some(JobState::Done));

        // Resubmitting the evicted configuration is not lost work: the
        // report is still in the store, so it completes as a store hit
        // under a fresh job id.
        let again = scheduler.submit(tiny_config(1), 0).unwrap();
        assert!(again.cached, "evicted job's report served from the store");
        assert_ne!(again.job, a);
        assert_eq!(scheduler.stats().executions, 3, "nothing re-executed");
    }

    #[test]
    fn begin_shutdown_rejects_new_work_but_serves_reads() {
        let scheduler = manual_scheduler(8);
        let job = scheduler.submit(tiny_config(1), 0).unwrap().job;
        scheduler.begin_shutdown();
        // New submissions get an error instead of a receipt for work that
        // would be lost on exit; reads keep being served.
        assert_eq!(
            scheduler.submit(tiny_config(2), 0),
            Err(SubmitError::ShuttingDown)
        );
        assert_eq!(scheduler.status(job), Some(JobState::Queued));
        let stats = scheduler.stats();
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.jobs_submitted, 1);
    }

    #[test]
    fn failed_jobs_report_their_error_and_allow_retry() {
        let scheduler = manual_scheduler(8);
        let mut config = tiny_config(1);
        config.max_epochs = 0; // rejected by task validation
        let job = scheduler.submit(config.clone(), 0).unwrap().job;
        assert!(scheduler.step());
        match scheduler.status(job) {
            Some(JobState::Failed { error }) => {
                assert!(error.contains("max_epochs"), "got: {error}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(matches!(
            scheduler.fetch(job),
            FetchResult::NotReady(JobState::Failed { .. })
        ));
        // A resubmission of the failed configuration is a fresh job.
        let retry = scheduler.submit(config, 0).unwrap();
        assert!(!retry.deduped);
        assert_ne!(retry.job, job);
    }

    #[test]
    fn fetch_distinguishes_missing_and_pending() {
        let scheduler = manual_scheduler(8);
        assert_eq!(scheduler.fetch(42), FetchResult::NotFound);
        assert!(scheduler.status(42).is_none());
        let job = scheduler.submit(tiny_config(1), 0).unwrap().job;
        assert_eq!(
            scheduler.fetch(job),
            FetchResult::NotReady(JobState::Queued)
        );
        assert!(scheduler.step());
        match scheduler.fetch(job) {
            FetchResult::Ready(output) => assert!(output.as_stress().is_some()),
            other => panic!("expected report, got {other:?}"),
        }
    }

    #[test]
    fn queued_deadline_expiry_times_out_without_executing() {
        let scheduler = manual_scheduler(8);
        let job = scheduler
            .submit_with_deadline(tiny_config(1), 0, Some(0))
            .unwrap()
            .job;
        // The zero deadline is already expired when the queue is served:
        // the job is retired without ever reaching a worker.
        assert!(!scheduler.step(), "nothing runnable was left");
        assert_eq!(scheduler.status(job), Some(JobState::TimedOut));
        let stats = scheduler.stats();
        assert_eq!(stats.executions, 0, "never occupied a worker");
        assert_eq!(stats.jobs_timed_out, 1);
        assert_eq!(stats.jobs_failed, 0);
        assert!(matches!(
            scheduler.fetch(job),
            FetchResult::NotReady(JobState::TimedOut)
        ));
    }

    #[test]
    fn running_job_exceeding_its_deadline_times_out() {
        let scheduler = manual_scheduler(8);
        // A job far larger than its 25 ms budget: the platform's
        // cooperative checks must abort it mid-run.
        let mut config = tiny_config(1);
        config.max_epochs = 400;
        config.dynamic_len = 60_000;
        config.reference_len = 60_000;
        let job = scheduler
            .submit_with_deadline(config, 0, Some(25))
            .unwrap()
            .job;
        assert!(scheduler.step(), "the job did start running");
        assert_eq!(scheduler.status(job), Some(JobState::TimedOut));
        let stats = scheduler.stats();
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.jobs_timed_out, 1);
        assert_eq!(stats.jobs_failed, 0, "a timeout is not a failure");
    }

    #[test]
    fn timed_out_jobs_never_poison_the_dedup_table() {
        let scheduler = manual_scheduler(8);
        let config = tiny_config(1);
        let timed_out = scheduler
            .submit_with_deadline(config.clone(), 0, Some(0))
            .unwrap()
            .job;
        assert!(!scheduler.step());
        assert_eq!(scheduler.status(timed_out), Some(JobState::TimedOut));

        // Resubmitting the identical configuration is a fresh job that
        // runs to completion.
        let retry = scheduler.submit(config, 0).unwrap();
        assert!(!retry.deduped, "timed-out jobs do not absorb resubmits");
        assert_ne!(retry.job, timed_out);
        assert!(scheduler.step());
        assert_eq!(scheduler.status(retry.job), Some(JobState::Done));
    }

    #[test]
    fn injected_worker_panic_fails_the_job_and_spares_the_next() {
        use crate::fault::{FaultPlan, FaultSite};
        let scheduler = Scheduler::new(
            SchedulerConfig {
                workers: 0,
                queue_capacity: 8,
                ..SchedulerConfig::default()
            },
            ResultStore::in_memory().with_fault_plan(FaultPlan::new(1).with_fault(
                FaultSite::WorkerPanic,
                1.0,
                1,
            )),
        );
        let config = tiny_config(1);
        let job = scheduler.submit(config.clone(), 0).unwrap().job;
        assert!(scheduler.step());
        match scheduler.status(job) {
            Some(JobState::Failed { error }) => {
                assert!(error.contains("injected fault"), "got: {error}");
            }
            other => panic!("expected injected failure, got {other:?}"),
        }

        // The budget is spent: the retry executes cleanly.
        let retry = scheduler.submit(config, 0).unwrap();
        assert!(!retry.deduped);
        assert!(scheduler.step());
        assert_eq!(scheduler.status(retry.job), Some(JobState::Done));
    }

    #[test]
    fn warm_start_reuses_the_persisted_cache() {
        let scratch = ScratchDir::new("sched-warm");
        let config = tiny_config(1);

        let cold_stats = {
            let scheduler = Scheduler::new(
                SchedulerConfig {
                    workers: 0,
                    queue_capacity: 8,
                    ..SchedulerConfig::default()
                },
                ResultStore::open(scratch.path()).unwrap(),
            );
            scheduler.submit(config.clone(), 0).unwrap();
            assert!(scheduler.step());
            scheduler.stats().cache
        };
        assert!(cold_stats.misses > 0, "cold run computes evaluations");

        // Same platform key, different tuning run (other use case): the
        // dumped cache primes the fresh daemon's platform.
        let mut warm_config = config;
        warm_config.use_case = UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Maximize,
        };
        let scheduler = Scheduler::new(
            SchedulerConfig {
                workers: 0,
                queue_capacity: 8,
                ..SchedulerConfig::default()
            },
            ResultStore::open(scratch.path()).unwrap(),
        );
        scheduler.submit(warm_config, 0).unwrap();
        assert!(scheduler.step());
        let warm_stats = scheduler.stats().cache;
        assert!(
            warm_stats.inserts > warm_stats.misses,
            "imported entries ({} inserts) exceed computed ones ({} misses)",
            warm_stats.inserts,
            warm_stats.misses
        );
    }
}
