//! Durable, content-addressed persistence of completed reports and
//! memo-cache dumps.
//!
//! Reports are addressed by [`FrameworkConfig::fingerprint`]: a completed
//! [`FrameworkOutput`] is written to `report-<fingerprint:016x>.json`
//! together with the configuration that produced it, and a lookup verifies
//! configuration equality before answering — the same collision discipline
//! as the `SimPlatform` memo cache, so a 64-bit fingerprint collision
//! degrades to a re-execution, never a wrong report.  Because every metric
//! is a finite `f64` and the JSON emitter uses Rust's shortest round-trip
//! float formatting, a report loaded from the store is **bit-identical** to
//! the one that was saved.
//!
//! Memo-cache dumps (`cache-<key hash:016x>.json`) persist the
//! `SimPlatform` evaluation cache per *platform key* (core, dynamic length,
//! seed — the parameters that determine evaluation results), so a restarted
//! daemon warm-starts repeat evaluations from disk.
//!
//! # Integrity and recovery
//!
//! Every file ends in a one-line trailer recording the payload length and
//! its FNV-1a 64 checksum.  Loads verify the trailer before parsing, so a
//! truncated or bit-flipped file is detected even when the damage still
//! parses as JSON.  A file that fails verification is **quarantined** —
//! moved into a `quarantine/` subdirectory, never deleted and never
//! crashed on — and the lookup degrades to a miss, so the daemon simply
//! recomputes and rewrites a valid file.  [`ResultStore::open`] runs the
//! same scan over the whole directory at startup (and sweeps temp files
//! left by a crashed writer), so a daemon restarted over a damaged store
//! starts clean.  Trailer-less files written by older builds are accepted
//! as long as they parse.
//!
//! Files are written atomically (temp file + rename); a store directory can
//! be shared by consecutive daemon processes but not by concurrent ones.
//! [`ResultStore::in_memory`] provides the same interface without touching
//! disk, for tests and benches.  For chaos testing, a [`FaultPlan`] seeded
//! via [`ResultStore::with_fault_plan`] can force read errors and
//! truncated, delayed or failed writes at the store seams.

use crate::fault::{FaultPlan, FaultSite};
use micrograd_codegen::GeneratorInput;
use micrograd_core::{FrameworkConfig, FrameworkOutput, Metrics};
use micrograd_obs::JobTimeline;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The on-disk shape of one persisted report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredReport {
    /// Store format version (currently [`crate::PROTO_VERSION`]).
    pub proto: u32,
    /// The configuration fingerprint (also in the file name).
    pub fingerprint: u64,
    /// The configuration that produced the report, verified on load.
    pub config: FrameworkConfig,
    /// The completed report.
    pub output: FrameworkOutput,
}

/// The on-disk shape of one persisted job timeline.
///
/// Timelines are observability metadata keyed by *job id*, not by
/// configuration fingerprint: two runs of the same configuration have the
/// same report but different timelines.  They are written best-effort when
/// a job reaches a terminal state and never participate in deduplication
/// or result identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTimeline {
    /// Store format version (currently [`crate::PROTO_VERSION`]).
    pub proto: u32,
    /// The job the timeline belongs to (also in the file name).
    pub job: u64,
    /// The recorded stage marks.
    pub timeline: JobTimeline,
}

/// The on-disk shape of one memo-cache dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCache {
    /// Store format version (currently [`crate::PROTO_VERSION`]).
    pub proto: u32,
    /// The platform key the entries are valid for, verified on load.
    pub platform: String,
    /// The memoized evaluations.
    pub entries: Vec<(GeneratorInput, Metrics)>,
}

/// Durable store of completed reports and memo-cache dumps.
#[derive(Debug)]
pub struct ResultStore {
    dir: Option<PathBuf>,
    fault: FaultPlan,
    /// Files moved to `quarantine/` by the startup scan or by a failed
    /// load, over this store's lifetime.
    quarantined: AtomicU64,
    // In-memory mode keeps everything here; disk mode keeps nothing
    // resident (reports are read on demand) and only serializes writers.
    reports: Mutex<HashMap<u64, StoredReport>>,
    caches: Mutex<HashMap<String, StoredCache>>,
    timelines: Mutex<HashMap<u64, StoredTimeline>>,
}

/// The platform key a configuration's evaluations are valid under: the
/// platform parameters that determine metric values.  `parallelism` is
/// deliberately absent — it only trades wall-clock for cores.
#[must_use]
pub fn platform_key(config: &FrameworkConfig) -> String {
    format!(
        "{}:{}:{}",
        config.core.config().name,
        config.dynamic_len,
        config.seed
    )
}

fn key_hash(key: &str) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// FNV-1a 64, the store's trailer checksum.  Hand-rolled: tiny, stable
/// across builds, and needs no dependency.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const TRAILER_TAG: &str = "#micrograd-store v1";

/// Appends the integrity trailer to a serialized payload.
fn seal(mut payload: String) -> String {
    let trailer = format!(
        "\n{TRAILER_TAG} len={} fnv={:016x}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    );
    payload.push_str(&trailer);
    payload
}

/// Splits off and verifies the trailer, returning the payload.
///
/// Trailer-less text (a file from a build predating trailers) is returned
/// whole; the subsequent JSON parse is then the only integrity check.
fn unseal(text: &str) -> Result<&str, String> {
    let Some(at) = text.rfind(&format!("\n{TRAILER_TAG} ")) else {
        return Ok(text);
    };
    let (payload, rest) = text.split_at(at);
    let trailer = rest.trim();
    let mut len: Option<usize> = None;
    let mut fnv: Option<u64> = None;
    for field in trailer.split_whitespace() {
        if let Some(v) = field.strip_prefix("len=") {
            len = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("fnv=") {
            fnv = u64::from_str_radix(v, 16).ok();
        }
    }
    let (Some(len), Some(fnv)) = (len, fnv) else {
        return Err("unparseable integrity trailer".into());
    };
    if payload.len() != len {
        return Err(format!(
            "length mismatch: trailer says {len} bytes, payload has {}",
            payload.len()
        ));
    }
    let actual = fnv1a(payload.as_bytes());
    if actual != fnv {
        return Err(format!(
            "checksum mismatch: trailer says {fnv:016x}, payload hashes to {actual:016x}"
        ));
    }
    Ok(payload)
}

/// Verifies the trailer and parses the payload.
fn parse_sealed<T: Deserialize>(text: &str) -> Result<T, String> {
    let payload = unseal(text)?;
    serde_json::from_str(payload).map_err(|e| format!("invalid document: {e}"))
}

impl ResultStore {
    /// Opens (creating if needed) a store directory and scans it for
    /// damage: files whose trailer or JSON does not verify are moved into
    /// `quarantine/` and temp files left by a crashed writer are removed,
    /// so lookups against the opened store only ever see intact files.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created or
    /// scanned.  A damaged *file* is never an error — it is quarantined.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = ResultStore {
            dir: Some(dir),
            fault: FaultPlan::none(),
            quarantined: AtomicU64::new(0),
            reports: Mutex::new(HashMap::new()),
            caches: Mutex::new(HashMap::new()),
            timelines: Mutex::new(HashMap::new()),
        };
        store.recover()?;
        Ok(store)
    }

    /// A store that never touches disk (nothing survives the process).
    #[must_use]
    pub fn in_memory() -> Self {
        ResultStore {
            dir: None,
            fault: FaultPlan::none(),
            quarantined: AtomicU64::new(0),
            reports: Mutex::new(HashMap::new()),
            caches: Mutex::new(HashMap::new()),
            timelines: Mutex::new(HashMap::new()),
        }
    }

    /// Arms this store with a fault plan (chaos testing).  The startup
    /// recovery scan has already run by this point and is never faulted.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// The fault plan this store (and the daemon built on it) runs under.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The backing directory, if this store is persistent.
    #[must_use]
    pub fn location(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The quarantine directory, if this store is persistent.
    #[must_use]
    pub fn quarantine_dir(&self) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join("quarantine"))
    }

    /// Files quarantined over this store's lifetime (startup scan plus
    /// failed loads).
    #[must_use]
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn report_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("report-{fingerprint:016x}.json")))
    }

    fn cache_path(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("cache-{:016x}.json", key_hash(key))))
    }

    fn timeline_path(&self, job: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("trace-{job:016x}.json")))
    }

    /// Startup scan: verify every `report-*`/`cache-*` file, quarantine
    /// what fails, sweep stale temp files.
    fn recover(&self) -> io::Result<()> {
        let Some(dir) = &self.dir else { return Ok(()) };
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let path = entry.path();
            if name.contains(".tmp.") {
                // An interrupted atomic write; the target was never
                // renamed, so the temp holds nothing worth keeping.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            let verdict = if name.starts_with("report-") && name.ends_with(".json") {
                std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| parse_sealed::<StoredReport>(&text).map(|_| ()))
            } else if name.starts_with("cache-") && name.ends_with(".json") {
                std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| parse_sealed::<StoredCache>(&text).map(|_| ()))
            } else if name.starts_with("trace-") && name.ends_with(".json") {
                std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| parse_sealed::<StoredTimeline>(&text).map(|_| ()))
            } else {
                continue;
            };
            if let Err(reason) = verdict {
                self.quarantine_file(&path, &reason);
            }
        }
        Ok(())
    }

    /// Moves a damaged file aside instead of deleting it or crashing on
    /// it; subsequent lookups miss and the daemon recomputes.
    fn quarantine_file(&self, path: &Path, reason: &str) {
        let Some(quarantine) = self.quarantine_dir() else {
            return;
        };
        let Some(name) = path.file_name() else {
            return;
        };
        if std::fs::create_dir_all(&quarantine).is_err() {
            return;
        }
        match std::fs::rename(path, quarantine.join(name)) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "store: quarantined {} ({reason})",
                    Path::new(name).display()
                );
            }
            Err(e) => eprintln!("store: failed to quarantine {}: {e}", path.display()),
        }
    }

    /// Persists a completed report under its configuration fingerprint.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.  The in-memory
    /// mode never fails.
    pub fn save_report(
        &self,
        config: &FrameworkConfig,
        output: &FrameworkOutput,
    ) -> io::Result<()> {
        let fingerprint = config.fingerprint();
        let stored = StoredReport {
            proto: crate::PROTO_VERSION,
            fingerprint,
            config: config.clone(),
            output: output.clone(),
        };
        match self.report_path(fingerprint) {
            Some(path) => self.write_atomically(&path, &stored),
            None => {
                self.reports.lock().insert(fingerprint, stored);
                Ok(())
            }
        }
    }

    /// Looks up the report previously saved for an identical configuration.
    ///
    /// Returns `None` when nothing is stored, when the stored file fails
    /// integrity verification (it is then quarantined), or when the stored
    /// configuration differs (a fingerprint collision) — the caller then
    /// simply re-executes.
    #[must_use]
    pub fn load_report(&self, config: &FrameworkConfig) -> Option<FrameworkOutput> {
        let fingerprint = config.fingerprint();
        let stored = match self.report_path(fingerprint) {
            Some(path) => {
                if self.fault.should_inject(FaultSite::StoreRead) {
                    return None;
                }
                let text = std::fs::read_to_string(&path).ok()?;
                match parse_sealed::<StoredReport>(&text) {
                    Ok(stored) => stored,
                    Err(reason) => {
                        self.quarantine_file(&path, &reason);
                        return None;
                    }
                }
            }
            None => self.reports.lock().get(&fingerprint)?.clone(),
        };
        (stored.config == *config).then_some(stored.output)
    }

    /// Number of reports resident in the store.
    #[must_use]
    pub fn report_count(&self) -> u64 {
        match &self.dir {
            Some(dir) => std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .filter_map(Result::ok)
                        .filter(|e| {
                            let name = e.file_name();
                            let name = name.to_string_lossy();
                            name.starts_with("report-") && name.ends_with(".json")
                        })
                        .count() as u64
                })
                .unwrap_or(0),
            None => self.reports.lock().len() as u64,
        }
    }

    /// Persists a memo-cache dump for a platform key, replacing any
    /// previous dump for that key.
    ///
    /// Callers import the existing dump before evaluating and export the
    /// resulting superset, so replacement only loses entries when two jobs
    /// with the same platform key race — a best-effort cache, never a
    /// correctness issue.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.
    pub fn save_cache(&self, key: &str, entries: Vec<(GeneratorInput, Metrics)>) -> io::Result<()> {
        let stored = StoredCache {
            proto: crate::PROTO_VERSION,
            platform: key.to_owned(),
            entries,
        };
        match self.cache_path(key) {
            Some(path) => self.write_atomically(&path, &stored),
            None => {
                self.caches.lock().insert(key.to_owned(), stored);
                Ok(())
            }
        }
    }

    /// Loads the memo-cache dump for a platform key (empty when absent,
    /// recorded under a different key, or damaged — a damaged dump is
    /// quarantined).
    #[must_use]
    pub fn load_cache(&self, key: &str) -> Vec<(GeneratorInput, Metrics)> {
        let stored = match self.cache_path(key) {
            Some(path) => {
                if self.fault.should_inject(FaultSite::StoreRead) {
                    return Vec::new();
                }
                let Ok(text) = std::fs::read_to_string(&path) else {
                    return Vec::new();
                };
                match parse_sealed::<StoredCache>(&text) {
                    Ok(stored) => stored,
                    Err(reason) => {
                        self.quarantine_file(&path, &reason);
                        return Vec::new();
                    }
                }
            }
            None => match self.caches.lock().get(key) {
                Some(stored) => stored.clone(),
                None => return Vec::new(),
            },
        };
        if stored.platform == key {
            stored.entries
        } else {
            Vec::new()
        }
    }

    /// Persists the timeline of a terminal job, keyed by job id.
    ///
    /// Timelines are observability metadata: the scheduler writes them
    /// best-effort after a job's terminal transition, and a failed write
    /// costs a `trace` answer, never a result.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.  The in-memory
    /// mode never fails.
    pub fn save_timeline(&self, timeline: &JobTimeline) -> io::Result<()> {
        let stored = StoredTimeline {
            proto: crate::PROTO_VERSION,
            job: timeline.job,
            timeline: timeline.clone(),
        };
        match self.timeline_path(timeline.job) {
            Some(path) => self.write_atomically(&path, &stored),
            None => {
                self.timelines.lock().insert(timeline.job, stored);
                Ok(())
            }
        }
    }

    /// Loads the timeline previously saved for a job.  Returns `None` when
    /// nothing is stored or the file fails integrity verification (it is
    /// then quarantined).
    #[must_use]
    pub fn load_timeline(&self, job: u64) -> Option<JobTimeline> {
        let stored = match self.timeline_path(job) {
            Some(path) => {
                if self.fault.should_inject(FaultSite::StoreRead) {
                    return None;
                }
                let text = std::fs::read_to_string(&path).ok()?;
                match parse_sealed::<StoredTimeline>(&text) {
                    Ok(stored) => stored,
                    Err(reason) => {
                        self.quarantine_file(&path, &reason);
                        return None;
                    }
                }
            }
            None => self.timelines.lock().get(&job)?.clone(),
        };
        (stored.job == job).then_some(stored.timeline)
    }

    fn write_atomically<T: Serialize>(&self, path: &Path, value: &T) -> io::Result<()> {
        // Unique temp name per write: two workers persisting the same target
        // (e.g. the cache dump of a shared platform key) must not interleave
        // on one temp file — each rename then lands a complete document, and
        // concurrent saves degrade to last-writer-wins instead of corruption.
        static NEXT: AtomicU64 = AtomicU64::new(0);
        if let Some(delay) = self.fault.write_delay() {
            std::thread::sleep(delay);
        }
        if self.fault.should_inject(FaultSite::StoreWrite) {
            return Err(self.fault.io_error(FaultSite::StoreWrite));
        }
        let payload = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let text = seal(payload);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        if self.fault.should_inject(FaultSite::StoreTruncate) {
            // Model a crash mid-write: commit a prefix of the document,
            // then report the failure.  The next open (or load) must
            // quarantine what landed.
            let cut = text.len() / 2;
            std::fs::write(&tmp, text.as_bytes().get(..cut).unwrap_or_default())?;
            std::fs::rename(&tmp, path)?;
            return Err(self.fault.io_error(FaultSite::StoreTruncate));
        }
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ScratchDir;
    use micrograd_core::{MetricKind, MicroGrad, StressGoal, UseCaseConfig};

    fn tiny_config() -> FrameworkConfig {
        FrameworkConfig {
            use_case: UseCaseConfig::Stress {
                metric: MetricKind::Ipc,
                goal: StressGoal::Minimize,
            },
            max_epochs: 2,
            dynamic_len: 4_000,
            reference_len: 4_000,
            ..FrameworkConfig::default()
        }
    }

    fn run_tiny() -> (FrameworkConfig, FrameworkOutput) {
        let config = tiny_config();
        let output = MicroGrad::new(config.clone()).run().unwrap();
        (config, output)
    }

    #[test]
    fn disk_store_round_trips_reports_bit_identically() {
        let scratch = ScratchDir::new("store");
        let store = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(store.report_count(), 0);

        let (config, output) = run_tiny();
        assert!(store.load_report(&config).is_none());
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.report_count(), 1);

        let loaded = store.load_report(&config).expect("stored report");
        assert_eq!(loaded, output, "load must be bit-identical to save");
        // Equality of serialized bytes, the strictest form.
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&output).unwrap()
        );

        // A different configuration misses even with the file present.
        let mut other = config.clone();
        other.seed += 1;
        assert!(store.load_report(&other).is_none());

        // A second store over the same directory sees the report — the
        // durability property the service restarts rely on.
        let reopened = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.quarantined_count(), 0, "intact files stay put");
        assert_eq!(reopened.load_report(&config), Some(output));
    }

    #[test]
    fn in_memory_store_behaves_like_disk_without_files() {
        let store = ResultStore::in_memory();
        assert!(store.location().is_none());
        let (config, output) = run_tiny();
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.report_count(), 1);
        assert_eq!(store.load_report(&config), Some(output));
    }

    #[test]
    fn cache_dumps_round_trip_per_platform_key() {
        let scratch = ScratchDir::new("cache");
        let store = ResultStore::open(scratch.path()).unwrap();
        let key = "small:4000:1";
        assert!(store.load_cache(key).is_empty());

        let entries = vec![(
            GeneratorInput::default(),
            Metrics::new().with(MetricKind::Ipc, 1.5),
        )];
        store.save_cache(key, entries.clone()).unwrap();
        assert_eq!(store.load_cache(key), entries);
        assert!(store.load_cache("large:4000:1").is_empty());

        // Replacement semantics.
        store.save_cache(key, Vec::new()).unwrap();
        assert!(store.load_cache(key).is_empty());
    }

    #[test]
    fn platform_key_tracks_evaluation_relevant_fields_only() {
        let config = tiny_config();
        let key = platform_key(&config);
        assert_eq!(key, "large:4000:1");

        let mut parallel = config.clone();
        parallel.parallelism = Some(8);
        assert_eq!(platform_key(&parallel), key, "parallelism is not identity");

        let mut reseeded = config;
        reseeded.seed = 9;
        assert_ne!(platform_key(&reseeded), key);
    }

    #[test]
    fn timelines_round_trip_survive_reopen_and_quarantine_damage() {
        use micrograd_obs::TimelineMark;
        let scratch = ScratchDir::new("timeline");
        let timeline = JobTimeline {
            job: 7,
            started_ns: 1_000,
            marks: vec![
                TimelineMark {
                    stage: "received".into(),
                    offset_ns: 0,
                    detail: 0,
                },
                TimelineMark {
                    stage: "completed".into(),
                    offset_ns: 5_000,
                    detail: 0,
                },
            ],
        };
        {
            let store = ResultStore::open(scratch.path()).unwrap();
            assert!(store.load_timeline(7).is_none());
            store.save_timeline(&timeline).unwrap();
            assert_eq!(store.load_timeline(7), Some(timeline.clone()));
            assert!(store.load_timeline(8).is_none());
        }
        // Survives a daemon restart — the property `trace` relies on.
        let store = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(store.quarantined_count(), 0);
        assert_eq!(store.load_timeline(7), Some(timeline.clone()));

        // Damage is quarantined like any other store file.
        let path = store.timeline_path(7).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.load_timeline(7).is_none());
        assert_eq!(store.quarantined_count(), 1);
        assert!(!path.exists(), "damaged file was moved aside");

        // In-memory mode offers the same interface.
        let memory = ResultStore::in_memory();
        memory.save_timeline(&timeline).unwrap();
        assert_eq!(memory.load_timeline(7), Some(timeline));
    }

    #[test]
    fn corrupt_report_files_degrade_to_a_miss_and_are_quarantined() {
        let scratch = ScratchDir::new("corrupt");
        let store = ResultStore::open(scratch.path()).unwrap();
        let (config, output) = run_tiny();
        store.save_report(&config, &output).unwrap();
        let path = store.report_path(config.fingerprint()).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.load_report(&config).is_none());
        assert_eq!(store.quarantined_count(), 1);
        assert!(!path.exists(), "damaged file was moved aside");
        let quarantined = store
            .quarantine_dir()
            .unwrap()
            .join(path.file_name().unwrap());
        assert!(quarantined.exists(), "damaged file is preserved");
    }

    #[test]
    fn trailer_catches_a_single_bit_flip() {
        let scratch = ScratchDir::new("bitflip");
        let store = ResultStore::open(scratch.path()).unwrap();
        let (config, output) = run_tiny();
        store.save_report(&config, &output).unwrap();
        let path = store.report_path(config.fingerprint()).unwrap();

        // Flip one bit inside a numeric literal of the payload: the result
        // is still valid JSON, so only the checksum can catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes
            .iter()
            .position(|b| b.is_ascii_digit())
            .expect("a digit to damage");
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load_report(&config).is_none());
        assert_eq!(store.quarantined_count(), 1);
    }

    #[test]
    fn startup_scan_quarantines_truncated_files_and_sweeps_temps() {
        let scratch = ScratchDir::new("recover");
        let (config, output) = run_tiny();
        let key = platform_key(&config);
        let (report_path, cache_path, temp_path);
        {
            let store = ResultStore::open(scratch.path()).unwrap();
            store.save_report(&config, &output).unwrap();
            store.save_cache(&key, Vec::new()).unwrap();
            report_path = store.report_path(config.fingerprint()).unwrap();
            cache_path = store.cache_path(&key).unwrap();
            temp_path = report_path.with_extension("tmp.99.0");
        }
        // Truncate both committed files and plant a stale temp file, as a
        // crash mid-write would.
        for path in [&report_path, &cache_path] {
            let text = std::fs::read_to_string(path).unwrap();
            std::fs::write(path, &text[..text.len() / 2]).unwrap();
        }
        std::fs::write(&temp_path, "partial").unwrap();

        let store = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(store.quarantined_count(), 2);
        assert!(!report_path.exists());
        assert!(!cache_path.exists());
        assert!(!temp_path.exists(), "stale temp files are swept");
        assert!(store.load_report(&config).is_none(), "degrades to a miss");
        assert!(store.load_cache(&key).is_empty());

        // The daemon's recovery story: recompute and rewrite a valid file.
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.load_report(&config), Some(output));
    }

    #[test]
    fn legacy_trailerless_files_still_load() {
        let scratch = ScratchDir::new("legacy");
        let store = ResultStore::open(scratch.path()).unwrap();
        let (config, output) = run_tiny();
        let stored = StoredReport {
            proto: crate::PROTO_VERSION,
            fingerprint: config.fingerprint(),
            config: config.clone(),
            output: output.clone(),
        };
        // Write the pre-trailer format directly.
        std::fs::write(
            store.report_path(config.fingerprint()).unwrap(),
            serde_json::to_string_pretty(&stored).unwrap(),
        )
        .unwrap();
        assert_eq!(store.load_report(&config), Some(output));
        let reopened = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.quarantined_count(), 0);
    }

    #[test]
    fn injected_write_faults_surface_and_exhaust() {
        use crate::fault::{FaultPlan, FaultSite};
        let scratch = ScratchDir::new("fault-write");
        let (config, output) = run_tiny();
        let plan = FaultPlan::new(11).with_fault(FaultSite::StoreWrite, 1.0, 1);
        let store = ResultStore::open(scratch.path())
            .unwrap()
            .with_fault_plan(plan.clone());

        let err = store.save_report(&config, &output).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(store.load_report(&config).is_none(), "nothing landed");

        // The budget is spent; the retry succeeds.
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.load_report(&config), Some(output));
        assert_eq!(plan.injections(FaultSite::StoreWrite), 1);
    }

    #[test]
    fn injected_truncation_commits_damage_that_recovery_catches() {
        use crate::fault::{FaultPlan, FaultSite};
        let scratch = ScratchDir::new("fault-trunc");
        let (config, output) = run_tiny();
        let store = ResultStore::open(scratch.path())
            .unwrap()
            .with_fault_plan(FaultPlan::new(3).with_fault(FaultSite::StoreTruncate, 1.0, 1));

        let err = store.save_report(&config, &output).unwrap_err();
        assert!(err.to_string().contains("store-truncate"));
        assert_eq!(store.report_count(), 1, "a damaged file did land");

        // The load detects the damage, quarantines, and misses.
        assert!(store.load_report(&config).is_none());
        assert_eq!(store.quarantined_count(), 1);

        // Recompute-and-rewrite heals the store.
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.load_report(&config), Some(output));
    }

    #[test]
    fn injected_read_faults_degrade_to_a_miss_without_quarantine() {
        use crate::fault::{FaultPlan, FaultSite};
        let scratch = ScratchDir::new("fault-read");
        let (config, output) = run_tiny();
        let store = ResultStore::open(scratch.path())
            .unwrap()
            .with_fault_plan(FaultPlan::new(5).with_fault(FaultSite::StoreRead, 1.0, 1));
        store.save_report(&config, &output).unwrap();

        assert!(store.load_report(&config).is_none(), "read fault misses");
        assert_eq!(store.quarantined_count(), 0, "the file is fine");
        assert_eq!(store.load_report(&config), Some(output), "then recovers");
    }
}
