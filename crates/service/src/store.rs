//! Durable, content-addressed persistence of completed reports and
//! memo-cache dumps.
//!
//! Reports are addressed by [`FrameworkConfig::fingerprint`]: a completed
//! [`FrameworkOutput`] is written to `report-<fingerprint:016x>.json`
//! together with the configuration that produced it, and a lookup verifies
//! configuration equality before answering — the same collision discipline
//! as the `SimPlatform` memo cache, so a 64-bit fingerprint collision
//! degrades to a re-execution, never a wrong report.  Because every metric
//! is a finite `f64` and the JSON emitter uses Rust's shortest round-trip
//! float formatting, a report loaded from the store is **bit-identical** to
//! the one that was saved.
//!
//! Memo-cache dumps (`cache-<key hash:016x>.json`) persist the
//! `SimPlatform` evaluation cache per *platform key* (core, dynamic length,
//! seed — the parameters that determine evaluation results), so a restarted
//! daemon warm-starts repeat evaluations from disk.
//!
//! Files are written atomically (temp file + rename); a store directory can
//! be shared by consecutive daemon processes but not by concurrent ones.
//! [`ResultStore::in_memory`] provides the same interface without touching
//! disk, for tests and benches.

use micrograd_codegen::GeneratorInput;
use micrograd_core::{FrameworkConfig, FrameworkOutput, Metrics};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The on-disk shape of one persisted report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredReport {
    /// Store format version (currently [`crate::PROTO_VERSION`]).
    pub proto: u32,
    /// The configuration fingerprint (also in the file name).
    pub fingerprint: u64,
    /// The configuration that produced the report, verified on load.
    pub config: FrameworkConfig,
    /// The completed report.
    pub output: FrameworkOutput,
}

/// The on-disk shape of one memo-cache dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCache {
    /// Store format version (currently [`crate::PROTO_VERSION`]).
    pub proto: u32,
    /// The platform key the entries are valid for, verified on load.
    pub platform: String,
    /// The memoized evaluations.
    pub entries: Vec<(GeneratorInput, Metrics)>,
}

/// Durable store of completed reports and memo-cache dumps.
#[derive(Debug)]
pub struct ResultStore {
    dir: Option<PathBuf>,
    // In-memory mode keeps everything here; disk mode keeps nothing
    // resident (reports are read on demand) and only serializes writers.
    reports: Mutex<HashMap<u64, StoredReport>>,
    caches: Mutex<HashMap<String, StoredCache>>,
}

/// The platform key a configuration's evaluations are valid under: the
/// platform parameters that determine metric values.  `parallelism` is
/// deliberately absent — it only trades wall-clock for cores.
#[must_use]
pub fn platform_key(config: &FrameworkConfig) -> String {
    format!(
        "{}:{}:{}",
        config.core.config().name,
        config.dynamic_len,
        config.seed
    )
}

fn key_hash(key: &str) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl ResultStore {
    /// Opens (creating if needed) a store directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir: Some(dir),
            reports: Mutex::new(HashMap::new()),
            caches: Mutex::new(HashMap::new()),
        })
    }

    /// A store that never touches disk (nothing survives the process).
    #[must_use]
    pub fn in_memory() -> Self {
        ResultStore {
            dir: None,
            reports: Mutex::new(HashMap::new()),
            caches: Mutex::new(HashMap::new()),
        }
    }

    /// The backing directory, if this store is persistent.
    #[must_use]
    pub fn location(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn report_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("report-{fingerprint:016x}.json")))
    }

    fn cache_path(&self, key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("cache-{:016x}.json", key_hash(key))))
    }

    /// Persists a completed report under its configuration fingerprint.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.  The in-memory
    /// mode never fails.
    pub fn save_report(
        &self,
        config: &FrameworkConfig,
        output: &FrameworkOutput,
    ) -> io::Result<()> {
        let fingerprint = config.fingerprint();
        let stored = StoredReport {
            proto: crate::PROTO_VERSION,
            fingerprint,
            config: config.clone(),
            output: output.clone(),
        };
        match self.report_path(fingerprint) {
            Some(path) => write_atomically(&path, &stored),
            None => {
                self.reports.lock().insert(fingerprint, stored);
                Ok(())
            }
        }
    }

    /// Looks up the report previously saved for an identical configuration.
    ///
    /// Returns `None` when nothing is stored, when the stored file is
    /// unreadable or malformed, or when the stored configuration differs
    /// (a fingerprint collision or a tampered file) — the caller then
    /// simply re-executes.
    #[must_use]
    pub fn load_report(&self, config: &FrameworkConfig) -> Option<FrameworkOutput> {
        let fingerprint = config.fingerprint();
        let stored = match self.report_path(fingerprint) {
            Some(path) => {
                let text = std::fs::read_to_string(path).ok()?;
                serde_json::from_str::<StoredReport>(&text).ok()?
            }
            None => self.reports.lock().get(&fingerprint)?.clone(),
        };
        (stored.config == *config).then_some(stored.output)
    }

    /// Number of reports resident in the store.
    #[must_use]
    pub fn report_count(&self) -> u64 {
        match &self.dir {
            Some(dir) => std::fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .filter_map(Result::ok)
                        .filter(|e| {
                            let name = e.file_name();
                            let name = name.to_string_lossy();
                            name.starts_with("report-") && name.ends_with(".json")
                        })
                        .count() as u64
                })
                .unwrap_or(0),
            None => self.reports.lock().len() as u64,
        }
    }

    /// Persists a memo-cache dump for a platform key, replacing any
    /// previous dump for that key.
    ///
    /// Callers import the existing dump before evaluating and export the
    /// resulting superset, so replacement only loses entries when two jobs
    /// with the same platform key race — a best-effort cache, never a
    /// correctness issue.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.
    pub fn save_cache(&self, key: &str, entries: Vec<(GeneratorInput, Metrics)>) -> io::Result<()> {
        let stored = StoredCache {
            proto: crate::PROTO_VERSION,
            platform: key.to_owned(),
            entries,
        };
        match self.cache_path(key) {
            Some(path) => write_atomically(&path, &stored),
            None => {
                self.caches.lock().insert(key.to_owned(), stored);
                Ok(())
            }
        }
    }

    /// Loads the memo-cache dump for a platform key (empty when absent,
    /// unreadable, or recorded under a different key).
    #[must_use]
    pub fn load_cache(&self, key: &str) -> Vec<(GeneratorInput, Metrics)> {
        let stored = match self.cache_path(key) {
            Some(path) => {
                let Ok(text) = std::fs::read_to_string(path) else {
                    return Vec::new();
                };
                let Ok(stored) = serde_json::from_str::<StoredCache>(&text) else {
                    return Vec::new();
                };
                stored
            }
            None => match self.caches.lock().get(key) {
                Some(stored) => stored.clone(),
                None => return Vec::new(),
            },
        };
        if stored.platform == key {
            stored.entries
        } else {
            Vec::new()
        }
    }
}

fn write_atomically<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    // Unique temp name per write: two workers persisting the same target
    // (e.g. the cache dump of a shared platform key) must not interleave
    // on one temp file — each rename then lands a complete document, and
    // concurrent saves degrade to last-writer-wins instead of corruption.
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ScratchDir;
    use micrograd_core::{MetricKind, MicroGrad, StressGoal, UseCaseConfig};

    fn tiny_config() -> FrameworkConfig {
        FrameworkConfig {
            use_case: UseCaseConfig::Stress {
                metric: MetricKind::Ipc,
                goal: StressGoal::Minimize,
            },
            max_epochs: 2,
            dynamic_len: 4_000,
            reference_len: 4_000,
            ..FrameworkConfig::default()
        }
    }

    fn run_tiny() -> (FrameworkConfig, FrameworkOutput) {
        let config = tiny_config();
        let output = MicroGrad::new(config.clone()).run().unwrap();
        (config, output)
    }

    #[test]
    fn disk_store_round_trips_reports_bit_identically() {
        let scratch = ScratchDir::new("store");
        let store = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(store.report_count(), 0);

        let (config, output) = run_tiny();
        assert!(store.load_report(&config).is_none());
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.report_count(), 1);

        let loaded = store.load_report(&config).expect("stored report");
        assert_eq!(loaded, output, "load must be bit-identical to save");
        // Equality of serialized bytes, the strictest form.
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&output).unwrap()
        );

        // A different configuration misses even with the file present.
        let mut other = config.clone();
        other.seed += 1;
        assert!(store.load_report(&other).is_none());

        // A second store over the same directory sees the report — the
        // durability property the service restarts rely on.
        let reopened = ResultStore::open(scratch.path()).unwrap();
        assert_eq!(reopened.load_report(&config), Some(output));
    }

    #[test]
    fn in_memory_store_behaves_like_disk_without_files() {
        let store = ResultStore::in_memory();
        assert!(store.location().is_none());
        let (config, output) = run_tiny();
        store.save_report(&config, &output).unwrap();
        assert_eq!(store.report_count(), 1);
        assert_eq!(store.load_report(&config), Some(output));
    }

    #[test]
    fn cache_dumps_round_trip_per_platform_key() {
        let scratch = ScratchDir::new("cache");
        let store = ResultStore::open(scratch.path()).unwrap();
        let key = "small:4000:1";
        assert!(store.load_cache(key).is_empty());

        let entries = vec![(
            GeneratorInput::default(),
            Metrics::new().with(MetricKind::Ipc, 1.5),
        )];
        store.save_cache(key, entries.clone()).unwrap();
        assert_eq!(store.load_cache(key), entries);
        assert!(store.load_cache("large:4000:1").is_empty());

        // Replacement semantics.
        store.save_cache(key, Vec::new()).unwrap();
        assert!(store.load_cache(key).is_empty());
    }

    #[test]
    fn platform_key_tracks_evaluation_relevant_fields_only() {
        let config = tiny_config();
        let key = platform_key(&config);
        assert_eq!(key, "large:4000:1");

        let mut parallel = config.clone();
        parallel.parallelism = Some(8);
        assert_eq!(platform_key(&parallel), key, "parallelism is not identity");

        let mut reseeded = config;
        reseeded.seed = 9;
        assert_ne!(platform_key(&reseeded), key);
    }

    #[test]
    fn corrupt_report_files_degrade_to_a_miss() {
        let scratch = ScratchDir::new("corrupt");
        let store = ResultStore::open(scratch.path()).unwrap();
        let (config, output) = run_tiny();
        store.save_report(&config, &output).unwrap();
        let path = store.report_path(config.fingerprint()).unwrap();
        std::fs::write(&path, "{ not json").unwrap();
        assert!(store.load_report(&config).is_none());
    }
}
