//! A blocking client for the `microgradd` wire protocol.
//!
//! One [`Client`] owns one TCP session; every method sends one request
//! line and reads one response line.  [`Client::submit_and_wait`] is the
//! convenience loop most callers want: submit, poll until terminal, fetch.

use crate::protocol::{
    decode_response, encode_line, JobState, JobSummary, Request, RequestBody, ResponseBody,
    ServerStats,
};
use micrograd_core::{FrameworkConfig, FrameworkOutput};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The peer sent something unintelligible.
    Protocol(String),
    /// The server answered with an error response.
    Server(String),
    /// The server answered with a well-formed but unexpected response
    /// (a protocol bug on one side).
    UnexpectedResponse(String),
    /// `submit_and_wait` ran out of time.
    Timeout {
        /// The job that was still pending.
        job: u64,
        /// The last observed state.
        state: JobState,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::UnexpectedResponse(got) => {
                write!(f, "unexpected response: {got}")
            }
            ClientError::Timeout { job, state } => {
                write!(f, "timed out waiting for job {job} (state: {state})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The receipt of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The job id to poll and fetch with.
    pub job: u64,
    /// An identical job already existed server-side.
    pub deduped: bool,
    /// The report was answered from the durable store without running.
    pub cached: bool,
}

/// A blocking JSON-lines client for one `microgradd` session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn roundtrip(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let line = encode_line(&Request::new(body));
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let response =
            decode_response(&response).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match response.body {
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            body => Ok(body),
        }
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (a full queue is a
    /// server error naming the capacity).
    pub fn submit(
        &mut self,
        config: &FrameworkConfig,
        priority: i64,
    ) -> Result<SubmitReceipt, ClientError> {
        match self.roundtrip(RequestBody::Submit {
            config: config.clone(),
            priority,
        })? {
            ResponseBody::Submitted {
                job,
                deduped,
                cached,
            } => Ok(SubmitReceipt {
                job,
                deduped,
                cached,
            }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Polls the state of a job.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (unknown jobs are
    /// server errors).
    pub fn status(&mut self, job: u64) -> Result<JobState, ClientError> {
        match self.roundtrip(RequestBody::Status { job })? {
            ResponseBody::Status { state, .. } => Ok(state),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the report of a completed job.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (fetching an
    /// unfinished job is a server error naming its state).
    pub fn fetch(&mut self, job: u64) -> Result<FrameworkOutput, ClientError> {
        match self.roundtrip(RequestBody::Fetch { job })? {
            ResponseBody::Report { output, .. } => Ok(output),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Lists every job the server knows about.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn list(&mut self) -> Result<Vec<JobSummary>, ClientError> {
        match self.roundtrip(RequestBody::List)? {
            ResponseBody::Jobs { jobs } => Ok(jobs),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Reads the server-wide counters.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(RequestBody::Stats)? {
            ResponseBody::Stats { stats } => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Requests a graceful server shutdown.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(RequestBody::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Polls a job until it reaches a terminal state, then returns it.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] when the deadline passes first, and
    /// propagates connection, protocol and server errors.
    pub fn wait(
        &mut self,
        job: u64,
        poll: Duration,
        timeout: Duration,
    ) -> Result<JobState, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let state = self.status(job)?;
            if state.is_terminal() {
                return Ok(state);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout { job, state });
            }
            std::thread::sleep(poll);
        }
    }

    /// Submits a job, waits for it, and fetches the report.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Server`] when the job failed server-side, in
    /// addition to the failure modes of [`wait`](Self::wait).
    pub fn submit_and_wait(
        &mut self,
        config: &FrameworkConfig,
        priority: i64,
        timeout: Duration,
    ) -> Result<FrameworkOutput, ClientError> {
        let receipt = self.submit(config, priority)?;
        match self.wait(receipt.job, Duration::from_millis(50), timeout)? {
            JobState::Failed { error } => Err(ClientError::Server(error)),
            _ => self.fetch(receipt.job),
        }
    }
}
