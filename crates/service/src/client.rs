//! A blocking client for the `microgradd` wire protocol.
//!
//! One [`Client`] owns one TCP session; every method sends one request
//! line and reads one response line.  [`Client::submit_and_wait`] is the
//! convenience loop most callers want: submit, wait until terminal,
//! fetch.  Waiting is push-based — a single `watch` request blocks on
//! the socket until the server notifies completion — so a patient
//! client costs the server zero wakeups.
//!
//! For unreliable networks and busy servers, [`Client::submit_with_retry`]
//! adds reconnect-and-resubmit on dropped connections and honors the
//! server's machine-readable `retry_after_ms` back-pressure hints, under a
//! [`RetryPolicy`] with exponential backoff and deterministic (seeded)
//! jitter.  Resubmission is idempotent: job identity is the configuration
//! fingerprint, so a submit replayed after a mid-line connection drop
//! dedups onto the job the first attempt may already have created.

use crate::protocol::{
    decode_response, encode_line, JobState, JobSummary, Request, RequestBody, ResponseBody,
    ServerStats,
};
use micrograd_core::{FrameworkConfig, FrameworkOutput};
use micrograd_obs::JobTimeline;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The peer sent something unintelligible.
    Protocol(String),
    /// The server answered with an error response.
    Server(String),
    /// The server answered with a *transient* error response carrying a
    /// retry hint (queue full, draining for shutdown): retrying the same
    /// request after `retry_after` is expected to succeed.
    /// [`Client::submit_with_retry`] handles this variant automatically.
    Busy {
        /// Human-readable rejection reason.
        message: String,
        /// The server's suggested retry delay.
        retry_after: Duration,
    },
    /// The server answered with a well-formed but unexpected response
    /// (a protocol bug on one side).
    UnexpectedResponse(String),
    /// `submit_and_wait` ran out of time.
    Timeout {
        /// The job that was still pending.
        job: u64,
        /// The last observed state.
        state: JobState,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Busy {
                message,
                retry_after,
            } => write!(
                f,
                "server busy: {message} (retry after {} ms)",
                retry_after.as_millis()
            ),
            ClientError::UnexpectedResponse(got) => {
                write!(f, "unexpected response: {got}")
            }
            ClientError::Timeout { job, state } => {
                write!(f, "timed out waiting for job {job} (state: {state})")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The receipt of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// The job id to poll and fetch with.
    pub job: u64,
    /// An identical job already existed server-side.
    pub deduped: bool,
    /// The report was answered from the durable store without running.
    pub cached: bool,
}

/// How [`Client::submit_with_retry`] paces itself: a bounded retry budget
/// with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter draws — deterministic, so a retry schedule is
    /// replayable in tests.  Give concurrent clients distinct seeds to
    /// de-synchronize their retries.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (0-based): exponential
    /// backoff capped at `max_backoff`, plus up to 50% seeded jitter.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_backoff);
        let jitter_range = u64::try_from(capped.as_nanos() / 2).unwrap_or(u64::MAX);
        if jitter_range == 0 {
            return capped;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.jitter_seed.wrapping_add(u64::from(attempt)));
        capped + Duration::from_nanos(rng.next_u64() % jitter_range)
    }
}

/// A blocking JSON-lines client for one `microgradd` session.
#[derive(Debug)]
pub struct Client {
    /// The resolved addresses `connect` succeeded against, kept for
    /// [`Client::reconnect`].
    addrs: Vec<SocketAddr>,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    poll_interval: Duration,
}

impl Client {
    /// Historical default poll interval.  Waiting is now push-based
    /// ([`Client::watch`]), so this only remains as the value
    /// [`Client::poll_interval`] reports when never overridden.
    pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(50);

    /// Grace added to the socket read timeout on top of a watch budget,
    /// covering request transit and server scheduling so the *server's*
    /// deadline (not a racing socket timeout) resolves the wait.
    const WATCH_READ_SLACK: Duration = Duration::from_secs(2);

    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(addrs.as_slice())?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            addrs,
            reader: BufReader::new(stream),
            writer,
            poll_interval: Self::DEFAULT_POLL_INTERVAL,
        })
    }

    /// Sets the reported poll interval.  Kept for API compatibility;
    /// waiting no longer sleeps, so this changes nothing server-side.
    #[must_use]
    pub fn with_poll_interval(mut self, poll_interval: Duration) -> Self {
        self.poll_interval = poll_interval;
        self
    }

    /// The configured poll interval.
    #[must_use]
    pub fn poll_interval(&self) -> Duration {
        self.poll_interval
    }

    /// Drops the current session and dials the daemon again at the same
    /// address.  Session state is per-connection only (responses match
    /// requests one-to-one), so a reconnected client can simply resend.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if no address accepts the connection.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addrs.as_slice())?;
        stream.set_nodelay(true).ok();
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    fn roundtrip(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let line =
            encode_line(&Request::new(body)).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        if !response.ends_with('\n') {
            // EOF mid-line: the peer died between the write and the
            // newline.  The fragment is unparseable, and the session is
            // gone — classify as a connection loss, not malformed traffic,
            // so `submit_with_retry` knows to reconnect.
            return Err(ClientError::Protocol(
                "server closed the connection mid-line".into(),
            ));
        }
        let response =
            decode_response(&response).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match response.body {
            ResponseBody::Error {
                message,
                retry_after_ms: Some(ms),
            } => Err(ClientError::Busy {
                message,
                retry_after: Duration::from_millis(ms),
            }),
            ResponseBody::Error {
                message,
                retry_after_ms: None,
            } => Err(ClientError::Server(message)),
            body => Ok(body),
        }
    }

    /// Submits a job with no deadline.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors; transient
    /// rejections (queue full, shutting down) surface as
    /// [`ClientError::Busy`] with the server's retry hint.
    pub fn submit(
        &mut self,
        config: &FrameworkConfig,
        priority: i64,
    ) -> Result<SubmitReceipt, ClientError> {
        self.submit_with_deadline(config, priority, None)
    }

    /// Submits a job, optionally bounded by a server-side deadline in
    /// milliseconds (see [`JobState::TimedOut`]).
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors; transient
    /// rejections surface as [`ClientError::Busy`].
    pub fn submit_with_deadline(
        &mut self,
        config: &FrameworkConfig,
        priority: i64,
        deadline_ms: Option<u64>,
    ) -> Result<SubmitReceipt, ClientError> {
        match self.roundtrip(RequestBody::Submit {
            config: config.clone(),
            priority,
            deadline_ms,
        })? {
            ResponseBody::Submitted {
                job,
                deduped,
                cached,
            } => Ok(SubmitReceipt {
                job,
                deduped,
                cached,
            }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Submits a job, transparently surviving dropped connections and
    /// transient server rejections within the retry policy's budget.
    ///
    /// On a connection failure the client reconnects and *resubmits* —
    /// idempotent because job identity is the configuration fingerprint,
    /// so a replayed submit dedups onto the job an earlier attempt may
    /// already have created.  On a [`ClientError::Busy`] rejection the
    /// client honors the larger of the server's `retry_after` hint and its
    /// own backoff.  Permanent errors are returned immediately.
    ///
    /// # Errors
    ///
    /// Returns the last error once the retry budget is exhausted, and
    /// permanent (non-transient) errors immediately.
    pub fn submit_with_retry(
        &mut self,
        config: &FrameworkConfig,
        priority: i64,
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<SubmitReceipt, ClientError> {
        let mut attempt = 0u32;
        loop {
            let error = match self.submit_with_deadline(config, priority, deadline_ms) {
                Ok(receipt) => return Ok(receipt),
                Err(e) => e,
            };
            let (reconnect, pause) = match &error {
                // The session is gone (drop mid-line, daemon restart):
                // reconnect, then resubmit.
                ClientError::Io(_) => (true, policy.backoff(attempt)),
                ClientError::Protocol(reason) if reason.contains("closed the connection") => {
                    (true, policy.backoff(attempt))
                }
                // Back-pressure: the session is fine, the server is not
                // ready; wait at least as long as it asked.
                ClientError::Busy { retry_after, .. } => {
                    (false, policy.backoff(attempt).max(*retry_after))
                }
                // Anything else (malformed traffic, permanent server
                // error, protocol bug) will not improve with retries.
                _ => return Err(error),
            };
            if attempt >= policy.retries {
                return Err(error);
            }
            attempt += 1;
            std::thread::sleep(pause);
            if reconnect {
                // A failed reconnect consumes the attempt; the next loop
                // iteration's submit will surface the I/O error.
                if let Err(e) = self.reconnect() {
                    if attempt >= policy.retries {
                        return Err(ClientError::Io(e));
                    }
                    continue;
                }
            }
        }
    }

    /// Polls the state of a job.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (unknown jobs are
    /// server errors).
    pub fn status(&mut self, job: u64) -> Result<JobState, ClientError> {
        match self.roundtrip(RequestBody::Status { job })? {
            ResponseBody::Status { state, .. } => Ok(state),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Blocks until a job reaches a terminal state — or, with a budget,
    /// until `timeout_ms` elapses server-side, in which case the job's
    /// *current* (possibly non-terminal) state is returned.  The server
    /// defers the response and pushes it on completion, so this wait
    /// costs no polling on either side of the wire.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (unknown jobs
    /// are server errors).
    pub fn watch(&mut self, job: u64, timeout_ms: Option<u64>) -> Result<JobState, ClientError> {
        // A bounded watch also bounds the socket read (budget + slack),
        // so a dead server surfaces as an I/O error instead of hanging
        // the client forever; an unbounded watch blocks indefinitely by
        // design.
        let read_timeout =
            timeout_ms.map(|ms| Duration::from_millis(ms).saturating_add(Self::WATCH_READ_SLACK));
        self.reader.get_ref().set_read_timeout(read_timeout)?;
        let result = self.roundtrip(RequestBody::Watch { job, timeout_ms });
        let _ = self.reader.get_ref().set_read_timeout(None);
        match result? {
            ResponseBody::Status { state, .. } => Ok(state),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the report of a completed job.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (fetching an
    /// unfinished job is a server error naming its state).
    pub fn fetch(&mut self, job: u64) -> Result<FrameworkOutput, ClientError> {
        match self.roundtrip(RequestBody::Fetch { job })? {
            ResponseBody::Report { output, .. } => Ok(output),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Lists every job the server knows about.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn list(&mut self) -> Result<Vec<JobSummary>, ClientError> {
        match self.roundtrip(RequestBody::List)? {
            ResponseBody::Jobs { jobs } => Ok(jobs),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Reads the server-wide counters.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(RequestBody::Stats)? {
            ResponseBody::Stats { stats } => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Scrapes the server's metrics registry in the Prometheus text
    /// exposition format (counters, gauges and latency histograms from
    /// which p50/p95/p99 are derivable).
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(RequestBody::Metrics)? {
            ResponseBody::Metrics { text } => Ok(text),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches a job's stage-by-stage timeline (received, queued,
    /// dequeued, per-epoch execution marks, persisted).
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors (a job with no
    /// recorded timeline is a server error).
    pub fn trace(&mut self, job: u64) -> Result<JobTimeline, ClientError> {
        match self.roundtrip(RequestBody::Trace { job })? {
            ResponseBody::Timeline { timeline } => Ok(timeline),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Requests a graceful server shutdown.
    ///
    /// # Errors
    ///
    /// Propagates connection, protocol and server errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(RequestBody::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Waits for a job to reach a terminal state, then returns it.
    ///
    /// Implemented as a blocking [`Client::watch`] bounded by `timeout`:
    /// one request, one pushed response, no sleeping.  The `poll`
    /// parameter is retained for API compatibility and ignored — there
    /// is no poll loop left to pace.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] when the deadline passes first, and
    /// propagates connection, protocol and server errors.
    pub fn wait(
        &mut self,
        job: u64,
        poll: Duration,
        timeout: Duration,
    ) -> Result<JobState, ClientError> {
        let _ = poll;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let budget_ms = u64::try_from(remaining.as_millis())
                .unwrap_or(u64::MAX)
                .max(1);
            let state = self.watch(job, Some(budget_ms))?;
            if state.is_terminal() {
                return Ok(state);
            }
            // The server answered with a live state: its watch budget
            // (ours, minus transit) expired, so the deadline has
            // effectively passed.  Loop only if the clock disagrees by
            // more than a rounding error.
            if deadline.saturating_duration_since(Instant::now()) < Duration::from_millis(2) {
                return Err(ClientError::Timeout { job, state });
            }
        }
    }

    /// Submits a job, waits for it (push-based, see
    /// [`Client::wait`]), and fetches the report.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Server`] when the job failed server-side and
    /// [`ClientError::Timeout`] naming [`JobState::TimedOut`] when the
    /// job's own deadline expired, in addition to the failure modes of
    /// [`wait`](Self::wait).
    pub fn submit_and_wait(
        &mut self,
        config: &FrameworkConfig,
        priority: i64,
        timeout: Duration,
    ) -> Result<FrameworkOutput, ClientError> {
        let receipt = self.submit(config, priority)?;
        match self.wait(receipt.job, self.poll_interval, timeout)? {
            JobState::Failed { error } => Err(ClientError::Server(error)),
            state @ JobState::TimedOut => Err(ClientError::Timeout {
                job: receipt.job,
                state,
            }),
            _ => self.fetch(receipt.job),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            retries: 8,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(400),
            jitter_seed: 17,
        };
        let series: Vec<Duration> = (0..6).map(|a| policy.backoff(a)).collect();
        // Pre-jitter: 50, 100, 200, 400, 400, 400 ms; jitter adds < 50%.
        let pre = [50u64, 100, 200, 400, 400, 400];
        for (backoff, base_ms) in series.iter().zip(pre) {
            let base = Duration::from_millis(base_ms);
            assert!(*backoff >= base, "{backoff:?} >= {base:?}");
            assert!(*backoff < base + base / 2, "{backoff:?} < 1.5 * {base:?}");
        }
        // Deterministic: the same policy replays the same schedule.
        let replay: Vec<Duration> = (0..6).map(|a| policy.backoff(a)).collect();
        assert_eq!(series, replay);
        // A different seed de-synchronizes the jitter.
        let other = RetryPolicy {
            jitter_seed: 18,
            ..policy
        };
        assert_ne!(series, (0..6).map(|a| other.backoff(a)).collect::<Vec<_>>());
    }
}
