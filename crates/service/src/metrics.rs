//! The service's observability root: one [`Registry`] and one
//! [`TraceSink`] shared by the scheduler, the reactor and the request
//! handlers.
//!
//! Every counter the legacy `stats` endpoint reports now lives in the
//! registry — [`Scheduler::stats`](crate::Scheduler::stats) is a *view*
//! over these cells, so the two surfaces can never disagree.  On top of
//! the counters sit the latency histograms (`request_duration_us`,
//! `job_queue_wait_us`, `job_execution_us`, `job_total_us`) from which
//! p50/p95/p99 are derived, and the trace sink that turns per-stage job
//! events into the timelines served by the `trace` request.
//!
//! All record paths are atomics (no locks, no allocation): the scheduler
//! bumps counters while holding its state lock, the reactor from its
//! event loop, and neither pays more than a `fetch_add`.  Gauges that
//! mirror externally-owned state (queue depth, reactor counters, memo
//! cache totals) are synchronized at scrape time by
//! [`ServiceMetrics::sync_queue`] and friends — a scrape is the only
//! reader, so eventual consistency at scrape granularity is exact.

use crate::protocol::ReactorStats;
use micrograd_core::CacheStats;
use micrograd_obs::{Counter, Gauge, Histogram, Registry, Sample, TraceSink};
use std::sync::Arc;

/// The request-op labels [`ServiceMetrics::record_request`] accepts;
/// unknown lines are recorded under `"invalid"`.
pub const REQUEST_OPS: [&str; 10] = [
    "submit", "status", "watch", "fetch", "list", "stats", "metrics", "trace", "shutdown",
    "invalid",
];

/// The shared metrics registry plus every handle the service records
/// through, created once per [`Scheduler`](crate::Scheduler).
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    registry: Registry,
    sink: TraceSink,
    /// Submit requests accepted (including deduplicated and store-answered
    /// ones).
    pub(crate) jobs_submitted: Counter,
    /// Submits answered with an already-known job id.
    pub(crate) jobs_deduped: Counter,
    /// Submits rejected because the queue was full.
    pub(crate) jobs_rejected: Counter,
    /// Submits answered from the durable store without executing.
    pub(crate) store_hits: Counter,
    /// Jobs actually executed on the platform.
    pub(crate) executions: Counter,
    /// Jobs that finished successfully.
    pub(crate) jobs_completed: Counter,
    /// Jobs that failed.
    pub(crate) jobs_failed: Counter,
    /// Jobs whose deadline expired before they finished.
    pub(crate) jobs_timed_out: Counter,
    /// Tuner-epoch batch boundaries observed across all executions.
    pub(crate) epochs: Counter,
    /// Jobs currently waiting in the queue.
    pub(crate) queue_depth: Gauge,
    /// Jobs currently running.
    pub(crate) running: Gauge,
    /// Deferred `watch` responses currently registered with the reactor.
    pub(crate) watches_active: Gauge,
    /// The last `retry_after_ms` hint attached to a transient rejection.
    pub(crate) retry_after_ms: Gauge,
    /// Reports resident in the durable store (synced at scrape time).
    pub(crate) stored_reports: Gauge,
    /// Request service time (decode to encoded response), microseconds.
    pub(crate) request_duration_us: Arc<Histogram>,
    /// Admission-to-dequeue wait per executed job, microseconds.
    pub(crate) job_queue_wait_us: Arc<Histogram>,
    /// Dequeue-to-terminal execution time per job, microseconds.
    pub(crate) job_execution_us: Arc<Histogram>,
    /// Admission-to-terminal total latency per job, microseconds.
    pub(crate) job_total_us: Arc<Histogram>,
    /// Per-op request counters, one series per [`REQUEST_OPS`] entry.
    requests: Vec<(&'static str, Counter)>,
    cache: [Gauge; 6],
    reactor: [Gauge; 7],
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Builds the registry and registers every family the service
    /// records into.
    #[must_use]
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = REQUEST_OPS
            .iter()
            .map(|op| {
                (
                    *op,
                    registry.counter_with(
                        "micrograd_requests_total",
                        "Requests handled, by operation",
                        Some(("op", op)),
                    ),
                )
            })
            .collect();
        let cache = [
            registry.gauge(
                "micrograd_cache_hits",
                "Memo-cache hits over all executed jobs",
            ),
            registry.gauge(
                "micrograd_cache_misses",
                "Memo-cache misses over all executed jobs",
            ),
            registry.gauge(
                "micrograd_cache_inserts",
                "Memo-cache inserts over all executed jobs",
            ),
            registry.gauge(
                "micrograd_cache_entries",
                "Memo-cache resident entries (last merge)",
            ),
            registry.gauge(
                "micrograd_cache_replacements",
                "Memo-cache replacements over all executed jobs",
            ),
            registry.gauge(
                "micrograd_cache_capacity",
                "Memo-cache capacity (last merge)",
            ),
        ];
        let reactor = [
            registry.gauge(
                "micrograd_reactor_connections_open",
                "Connections registered with the event loop",
            ),
            registry.gauge(
                "micrograd_reactor_connections_accepted",
                "Connections accepted since startup",
            ),
            registry.gauge(
                "micrograd_reactor_connections_closed",
                "Connections closed since startup",
            ),
            registry.gauge(
                "micrograd_reactor_loop_wakeups",
                "Event-loop wakeups from poll(2)",
            ),
            registry.gauge(
                "micrograd_reactor_write_queue_hwm",
                "High-water mark of any connection's pending write bytes",
            ),
            registry.gauge(
                "micrograd_reactor_notifications_pushed",
                "Deferred watch responses pushed on job completion",
            ),
            registry.gauge(
                "micrograd_reactor_watches_active",
                "Watch responses currently deferred in the event loop",
            ),
        ];
        ServiceMetrics {
            jobs_submitted: registry
                .counter("micrograd_jobs_submitted_total", "Submit requests accepted"),
            jobs_deduped: registry.counter(
                "micrograd_jobs_deduped_total",
                "Submits answered with an existing job id",
            ),
            jobs_rejected: registry.counter(
                "micrograd_jobs_rejected_total",
                "Submits rejected by the bounded queue",
            ),
            store_hits: registry.counter(
                "micrograd_store_hits_total",
                "Submits answered from the durable store without executing",
            ),
            executions: registry.counter(
                "micrograd_executions_total",
                "Jobs executed on the platform",
            ),
            jobs_completed: registry.counter(
                "micrograd_jobs_completed_total",
                "Jobs finished successfully",
            ),
            jobs_failed: registry.counter("micrograd_jobs_failed_total", "Jobs that failed"),
            jobs_timed_out: registry.counter(
                "micrograd_jobs_timed_out_total",
                "Jobs whose deadline expired before completion",
            ),
            epochs: registry.counter(
                "micrograd_epochs_total",
                "Tuner-epoch batch boundaries observed across all executions",
            ),
            queue_depth: registry.gauge("micrograd_queue_depth", "Jobs waiting in the queue"),
            running: registry.gauge("micrograd_jobs_running", "Jobs currently executing"),
            watches_active: registry.gauge(
                "micrograd_watches_active",
                "Watch responses currently deferred",
            ),
            retry_after_ms: registry.gauge(
                "micrograd_retry_after_ms",
                "Last retry hint attached to a transient rejection, milliseconds",
            ),
            stored_reports: registry.gauge(
                "micrograd_stored_reports",
                "Reports resident in the durable store",
            ),
            request_duration_us: registry.histogram(
                "micrograd_request_duration_us",
                "Request service time in microseconds",
            ),
            job_queue_wait_us: registry.histogram(
                "micrograd_job_queue_wait_us",
                "Admission-to-dequeue wait per executed job, microseconds",
            ),
            job_execution_us: registry.histogram(
                "micrograd_job_execution_us",
                "Dequeue-to-terminal execution time per job, microseconds",
            ),
            job_total_us: registry.histogram(
                "micrograd_job_total_us",
                "Admission-to-terminal latency per job, microseconds",
            ),
            requests,
            cache,
            reactor,
            sink: TraceSink::new(),
            registry,
        }
    }

    /// The underlying registry (for exposition or table rendering).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace sink job-stage events are recorded into.
    #[must_use]
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Counts one handled request and records its service time.  Ops not
    /// in [`REQUEST_OPS`] are folded into the `"invalid"` series.
    pub fn record_request(&self, op: &str, duration_us: u64) {
        let counter = self
            .requests
            .iter()
            .find(|(name, _)| *name == op)
            .or_else(|| self.requests.iter().find(|(name, _)| *name == "invalid"));
        if let Some((_, counter)) = counter {
            counter.inc();
        }
        self.request_duration_us.record(duration_us);
    }

    /// Mirrors the scheduler's queue gauges (called at change points and
    /// scrape time).
    pub fn sync_queue(&self, queue_depth: u64, running: u64) {
        self.queue_depth.set(queue_depth);
        self.running.set(running);
    }

    /// Mirrors the merged memo-cache totals into the registry.
    pub fn sync_cache(&self, cache: &CacheStats) {
        let [hits, misses, inserts, entries, replacements, capacity] = &self.cache;
        hits.set(cache.hits);
        misses.set(cache.misses);
        inserts.set(cache.inserts);
        entries.set(cache.entries);
        replacements.set(cache.replacements);
        capacity.set(cache.capacity);
    }

    /// Mirrors a reactor counter snapshot into the registry (the reactor
    /// owns its live atomics; the registry is its exposition surface).
    pub fn sync_reactor(&self, stats: &ReactorStats) {
        let [open, accepted, closed, wakeups, hwm, pushed, watches] = &self.reactor;
        open.set(stats.connections_open);
        accepted.set(stats.connections_accepted);
        closed.set(stats.connections_closed);
        wakeups.set(stats.loop_wakeups);
        hwm.set(stats.write_queue_hwm);
        pushed.set(stats.notifications_pushed);
        watches.set(stats.watches_active);
        self.watches_active.set(stats.watches_active);
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Samples every series for table rendering.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        self.registry.samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stats_counter_has_a_registry_series() {
        let metrics = ServiceMetrics::new();
        metrics.jobs_submitted.inc();
        metrics.record_request("submit", 120);
        metrics.record_request("warp-core", 5); // folded into "invalid"
        metrics.sync_queue(3, 1);
        metrics.sync_cache(&CacheStats::default());
        metrics.sync_reactor(&ReactorStats {
            watches_active: 2,
            ..ReactorStats::default()
        });
        let text = metrics.render_prometheus();
        for family in [
            "micrograd_jobs_submitted_total 1",
            "micrograd_requests_total{op=\"submit\"} 1",
            "micrograd_requests_total{op=\"invalid\"} 1",
            "micrograd_queue_depth 3",
            "micrograd_jobs_running 1",
            "micrograd_watches_active 2",
            "micrograd_reactor_watches_active 2",
            "micrograd_cache_hits 0",
            "micrograd_request_duration_us_count 2",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        // Histogram quantiles are derivable from the samples view.
        let samples = metrics.samples();
        let request = samples
            .iter()
            .find(|s| s.name == "micrograd_request_duration_us")
            .expect("registered histogram");
        assert_eq!(request.value, 2);
        assert!(request.quantiles.is_some());
    }
}
