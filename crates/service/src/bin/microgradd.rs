//! `microgradd` — the MicroGrad job-server daemon.
//!
//! Binds a TCP address, serves the JSON-lines protocol until a client
//! requests shutdown, and (with `--store`) persists completed reports and
//! the evaluation memo cache across restarts.
//!
//! ```text
//! microgradd [--addr HOST:PORT] [--workers N] [--queue-capacity N] [--store DIR]
//! ```

use micrograd_service::{Server, ServerConfig};
use std::process::ExitCode;

/// Minimal async-signal-safe SIGINT/SIGTERM handling (no `signal_hook` in
/// the offline build).  The raw handler only stores into a static atomic;
/// a watcher thread polls the flag and routes the request through
/// [`Server::request_shutdown`], so Ctrl-C and `kill <pid>` drain exactly
/// like a client-requested shutdown: in-flight jobs finish and the store
/// stays consistent.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);
    unsafe extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single relaxed store, nothing else.
        REQUESTED.store(true, Ordering::Relaxed);
    }

    /// Install handlers for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

const USAGE: &str = "\
USAGE:
    microgradd [OPTIONS]

OPTIONS:
    --addr HOST:PORT      Address to bind (default 127.0.0.1:7878; port 0 picks one)
    --workers N           Scheduler worker threads (default 2)
    --queue-capacity N    Bounded job-queue capacity (default 64)
    --store DIR           Durable store directory (default: in-memory only)
    --help                Print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag {
            "--addr" => {
                config.addr = value(i)?;
                i += 2;
            }
            "--workers" => {
                config.workers = value(i)?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_owned())?;
                i += 2;
            }
            "--queue-capacity" => {
                config.queue_capacity = value(i)?
                    .parse()
                    .map_err(|_| "--queue-capacity expects an integer".to_owned())?;
                i += 2;
            }
            "--store" => {
                config.store_dir = Some(value(i)?.into());
                i += 2;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if config.workers == 0 {
        return Err("--workers must be at least 1 for a daemon".to_owned());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("microgradd: {message}");
            }
            eprintln!("{USAGE}");
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let store_desc = config
        .store_dir
        .as_ref()
        .map_or_else(|| "in-memory".to_owned(), |d| d.display().to_string());
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("microgradd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The CI smoke stage and scripts parse this line for the actual port.
    println!("microgradd listening on {}", server.local_addr());
    println!("microgradd store: {store_desc}");

    signals::install();
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Watch for SIGINT/SIGTERM and translate them into the same
            // graceful drain a client `shutdown` request triggers.
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                if signals::requested() {
                    eprintln!("microgradd: caught termination signal, draining");
                    server.request_shutdown();
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        server.wait_for_shutdown();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    println!("microgradd shutting down (finishing in-flight jobs)");
    let stats = server.scheduler().stats();
    server.shutdown();
    println!(
        "microgradd served {} submissions ({} executed, {} deduped, {} from store); bye",
        stats.jobs_submitted, stats.executions, stats.jobs_deduped, stats.store_hits
    );
    ExitCode::SUCCESS
}
