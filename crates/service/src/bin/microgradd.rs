//! `microgradd` — the MicroGrad job-server daemon.
//!
//! Binds a TCP address, serves the JSON-lines protocol until a client
//! requests shutdown, and (with `--store`) persists completed reports and
//! the evaluation memo cache across restarts.
//!
//! ```text
//! microgradd [--addr HOST:PORT] [--workers N] [--queue-capacity N] [--store DIR]
//! ```

use micrograd_service::{Server, ServerConfig, WakePipe};
use std::process::ExitCode;

/// Minimal async-signal-safe SIGINT/SIGTERM handling (no `signal_hook` in
/// the offline build).  The raw handler performs one nonblocking
/// `write(2)` to a self-pipe ([`WakePipe::notify_raw`]); a watcher thread
/// *blocks* on that pipe — no polling loop, no periodic wakeups — and
/// routes the request through [`Server::request_shutdown`], so Ctrl-C and
/// `kill <pid>` drain exactly like a client-requested shutdown: in-flight
/// jobs finish and the store stays consistent.
#[cfg(unix)]
mod signals {
    use micrograd_service::WakePipe;
    use std::sync::atomic::{AtomicI32, Ordering};

    /// Write end of the signal self-pipe; -1 until installed.
    static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

    type SigHandler = extern "C" fn(i32);
    // SAFETY: `signal(2)` is in every libc this daemon links against, and
    // the declared signature (int, handler-pointer) -> previous-handler
    // matches the C prototype ABI-wise on the supported 64-bit targets.
    unsafe extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> isize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic load and one write(2) on a
        // nonblocking fd, nothing else.
        WakePipe::notify_raw(WAKE_FD.load(Ordering::Relaxed));
    }

    /// Install handlers for SIGINT (2) and SIGTERM (15), wired to poke
    /// `pipe`.
    pub fn install(pipe: &WakePipe) {
        WAKE_FD.store(pipe.write_end(), Ordering::Relaxed);
        // SAFETY: `on_signal` is async-signal-safe (one relaxed load, one
        // nonblocking write(2), no allocation or locking), and WAKE_FD is
        // stored before the handlers that read it are installed.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    use micrograd_service::WakePipe;

    pub fn install(_pipe: &WakePipe) {}
}

const USAGE: &str = "\
USAGE:
    microgradd [OPTIONS]

OPTIONS:
    --addr HOST:PORT      Address to bind (default 127.0.0.1:7878; port 0 picks one)
    --workers N           Scheduler worker threads (default 2)
    --queue-capacity N    Bounded job-queue capacity (default 64)
    --store DIR           Durable store directory (default: in-memory only)
    --help                Print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut i = 0;
    while let Some(flag) = args.get(i).map(String::as_str) {
        let value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag {
            "--addr" => {
                config.addr = value(i)?;
                i += 2;
            }
            "--workers" => {
                config.workers = value(i)?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_owned())?;
                i += 2;
            }
            "--queue-capacity" => {
                config.queue_capacity = value(i)?
                    .parse()
                    .map_err(|_| "--queue-capacity expects an integer".to_owned())?;
                i += 2;
            }
            "--store" => {
                config.store_dir = Some(value(i)?.into());
                i += 2;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if config.workers == 0 {
        return Err("--workers must be at least 1 for a daemon".to_owned());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("microgradd: {message}");
            }
            eprintln!("{USAGE}");
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let store_desc = config
        .store_dir
        .as_ref()
        .map_or_else(|| "in-memory".to_owned(), |d| d.display().to_string());
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("microgradd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The CI smoke stage and scripts parse this line for the actual port.
    println!("microgradd listening on {}", server.local_addr());
    println!("microgradd store: {store_desc}");

    // The signal self-pipe: the raw handler pokes it, the watcher thread
    // blocks on it.  An idle daemon sleeps in poll(2) twice over (reactor
    // and watcher) and wakes for events only — never on a timer.
    let signal_pipe = match WakePipe::new() {
        Ok(pipe) => pipe,
        Err(e) => {
            eprintln!("microgradd: failed to set up signal pipe: {e}");
            return ExitCode::FAILURE;
        }
    };
    signals::install(&signal_pipe);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Blocks until a termination signal pokes the pipe (or the
            // main thread does, on a client-requested shutdown, to let
            // this thread exit and the scope join).
            signal_pipe.wait();
            if !server.shutdown_requested() {
                eprintln!("microgradd: caught termination signal, draining");
                server.request_shutdown();
            }
        });
        server.wait_for_shutdown();
        signal_pipe.notify();
    });
    println!("microgradd shutting down (finishing in-flight jobs)");
    let stats = server.scheduler().stats();
    // Snapshot the registry before shutdown consumes the server, so the
    // exit report covers every in-flight job it just finished draining.
    server
        .scheduler()
        .metrics()
        .sync_reactor(&server.reactor_stats());
    let samples = {
        let _ = server.scheduler().metrics_text(); // sync store/cache gauges
        server.scheduler().metrics().samples()
    };
    server.shutdown();
    println!("microgradd final metrics:");
    for sample in samples {
        match sample.quantiles {
            Some((p50, p95, p99)) => println!(
                "  {} count={} p50={p50} p95={p95} p99={p99}",
                sample.name, sample.value
            ),
            None if sample.value != 0 => println!("  {} {}", sample.name, sample.value),
            None => {}
        }
    }
    println!(
        "microgradd served {} submissions ({} executed, {} deduped, {} from store); bye",
        stats.jobs_submitted, stats.executions, stats.jobs_deduped, stats.store_hits
    );
    ExitCode::SUCCESS
}
