//! `micrograd-cli` — command-line client for `microgradd`.
//!
//! ```text
//! micrograd-cli [--addr HOST:PORT] submit <config.json|-> [--priority N] [--wait] [--timeout-secs N]
//! micrograd-cli [--addr HOST:PORT] status <job>
//! micrograd-cli [--addr HOST:PORT] fetch <job>
//! micrograd-cli [--addr HOST:PORT] list
//! micrograd-cli [--addr HOST:PORT] stats
//! micrograd-cli [--addr HOST:PORT] metrics
//! micrograd-cli [--addr HOST:PORT] trace <job>
//! micrograd-cli [--addr HOST:PORT] shutdown
//! ```

use micrograd_core::FrameworkConfig;
use micrograd_service::{Client, JobState};
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
USAGE:
    micrograd-cli [--addr HOST:PORT] <COMMAND>

COMMANDS:
    submit <config.json|->   Submit a framework job (config file, or `-` for stdin)
        --priority N         Scheduling priority, higher runs earlier (default 0)
        --deadline-secs N    Server-side deadline; the job times out after N seconds
        --wait               Poll until the job finishes, then print the report
        --timeout-secs N     Give up waiting after N seconds (default 600)
    status <job>             Print a job's state
    fetch <job>              Print a completed job's report as JSON
    list                     List all jobs
    stats                    Print server counters as JSON
    metrics                  Scrape the metrics registry (Prometheus text format)
    trace <job>              Print a job's stage-by-stage timeline
    shutdown                 Ask the daemon to shut down gracefully

OPTIONS:
    --addr HOST:PORT         Daemon address (default 127.0.0.1:7878)
";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("micrograd-cli: {message}");
    ExitCode::FAILURE
}

fn usage_error(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("micrograd-cli: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_job(arg: Option<&String>) -> Result<u64, String> {
    arg.ok_or_else(|| "expected a job id".to_owned())?
        .parse()
        .map_err(|_| "job id must be an integer".to_owned())
}

fn read_config(path: &str) -> Result<FrameworkConfig, String> {
    let text = if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?
    };
    FrameworkConfig::from_json(&text).map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), ExitCode> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--addr" => {
                addr = args
                    .get(i + 1)
                    .cloned()
                    .ok_or_else(|| usage_error("--addr requires a value"))?;
                i += 2;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            _ => {
                rest.push(arg.clone());
                i += 1;
            }
        }
    }
    let Some(command) = rest.first() else {
        return Err(usage_error("expected a command"));
    };

    let mut client =
        Client::connect(&addr).map_err(|e| fail(format_args!("cannot connect to {addr}: {e}")))?;

    match command.as_str() {
        "submit" => {
            let Some(path) = rest.get(1) else {
                return Err(usage_error("submit expects a config file path or `-`"));
            };
            let mut priority = 0i64;
            let mut deadline_ms = None;
            let mut wait = false;
            let mut timeout = Duration::from_secs(600);
            let mut j = 2;
            while let Some(flag) = rest.get(j).map(String::as_str) {
                match flag {
                    "--priority" => {
                        priority = rest
                            .get(j + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| usage_error("--priority expects an integer"))?;
                        j += 2;
                    }
                    "--deadline-secs" => {
                        let secs: u64 = rest
                            .get(j + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| usage_error("--deadline-secs expects an integer"))?;
                        deadline_ms = Some(secs.saturating_mul(1_000));
                        j += 2;
                    }
                    "--wait" => {
                        wait = true;
                        j += 1;
                    }
                    "--timeout-secs" => {
                        timeout = rest
                            .get(j + 1)
                            .and_then(|v| v.parse().ok())
                            .map(Duration::from_secs)
                            .ok_or_else(|| usage_error("--timeout-secs expects an integer"))?;
                        j += 2;
                    }
                    other => return Err(usage_error(format_args!("unknown option `{other}`"))),
                }
            }
            let config = read_config(path).map_err(fail)?;
            let receipt = client
                .submit_with_deadline(&config, priority, deadline_ms)
                .map_err(fail)?;
            println!(
                "job {} submitted (deduped: {}, cached: {})",
                receipt.job, receipt.deduped, receipt.cached
            );
            if wait {
                let state = client
                    .wait(receipt.job, Duration::from_millis(200), timeout)
                    .map_err(fail)?;
                match state {
                    JobState::Failed { error } => {
                        return Err(fail(format_args!("job {} failed: {error}", receipt.job)));
                    }
                    JobState::TimedOut => {
                        return Err(fail(format_args!(
                            "job {} timed out (server-side deadline)",
                            receipt.job
                        )));
                    }
                    _ => {}
                }
                let output = client.fetch(receipt.job).map_err(fail)?;
                println!(
                    "{}",
                    serde_json::to_string_pretty(&output).unwrap_or_default()
                );
            }
            Ok(())
        }
        "status" => {
            let job = parse_job(rest.get(1)).map_err(usage_error)?;
            let state = client.status(job).map_err(fail)?;
            println!("job {job}: {state}");
            Ok(())
        }
        "fetch" => {
            let job = parse_job(rest.get(1)).map_err(usage_error)?;
            let output = client.fetch(job).map_err(fail)?;
            println!(
                "{}",
                serde_json::to_string_pretty(&output).unwrap_or_default()
            );
            Ok(())
        }
        "list" => {
            let jobs = client.list().map_err(fail)?;
            if jobs.is_empty() {
                println!("no jobs");
                return Ok(());
            }
            println!(
                "{:>6}  {:>8}  {:<18}  {:<16}  state",
                "job", "priority", "use case", "fingerprint"
            );
            for job in jobs {
                println!(
                    "{:>6}  {:>8}  {:<18}  {:016x}  {}",
                    job.job, job.priority, job.use_case, job.fingerprint, job.state
                );
            }
            Ok(())
        }
        "stats" => {
            let stats = client.stats().map_err(fail)?;
            println!(
                "{}",
                serde_json::to_string_pretty(&stats).unwrap_or_default()
            );
            Ok(())
        }
        "metrics" => {
            let text = client.metrics().map_err(fail)?;
            print!("{text}");
            Ok(())
        }
        "trace" => {
            let job = parse_job(rest.get(1)).map_err(usage_error)?;
            let timeline = client.trace(job).map_err(fail)?;
            print!("{}", timeline.render());
            Ok(())
        }
        "shutdown" => {
            client.shutdown().map_err(fail)?;
            println!("server is shutting down");
            Ok(())
        }
        other => Err(usage_error(format_args!("unknown command `{other}`"))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}
