//! The TCP server: an accept loop feeding per-connection reader threads.
//!
//! Each connection is one long-lived JSON-lines session (see
//! [`crate::protocol`]); every request line is answered with exactly one
//! response line, so clients may pipeline.  Malformed lines and version
//! mismatches are answered with an error response rather than a dropped
//! connection — only I/O failure or EOF closes a session.
//!
//! Shutdown is cooperative and clean: a `shutdown` request (or
//! [`Server::shutdown`]) stops the accept loop, reader threads drain at
//! their next read timeout, the scheduler finishes in-flight jobs, and
//! every thread is joined before [`Server::shutdown`] returns.

use crate::fault::{FaultPlan, FaultSite};
use crate::protocol::{
    decode_request, encode_line, RequestBody, Response, ResponseBody, WireError,
};
use crate::scheduler::{FetchResult, Scheduler, SchedulerConfig, SubmitError};
use crate::store::ResultStore;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How often blocked reads wake up to observe the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Retry hint attached to a queue-full rejection: the queue drains at job
/// granularity, so a short pause is usually enough.
const QUEUE_FULL_RETRY_MS: u64 = 200;

/// Retry hint attached to a shutting-down rejection: the client should try
/// again once a replacement daemon is up.
const SHUTDOWN_RETRY_MS: u64 = 1_000;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Durable store directory; `None` keeps results in memory only.
    pub store_dir: Option<PathBuf>,
    /// Fault plan shared by the store, the scheduler and every connection
    /// handler (chaos testing).  [`FaultPlan::none`] in production.
    pub fault: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            store_dir: None,
            fault: FaultPlan::none(),
        }
    }
}

struct ShutdownSignal {
    requested: AtomicBool,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl ShutdownSignal {
    fn new() -> Self {
        ShutdownSignal {
            requested: AtomicBool::new(false),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    fn trigger(&self) {
        self.requested.store(true, Ordering::SeqCst);
        let _guard = self.lock.lock().expect("shutdown signal poisoned");
        self.condvar.notify_all();
    }

    fn is_triggered(&self) -> bool {
        self.requested.load(Ordering::SeqCst)
    }

    fn wait(&self) {
        let mut guard = self.lock.lock().expect("shutdown signal poisoned");
        while !self.is_triggered() {
            guard = self.condvar.wait(guard).expect("shutdown signal poisoned");
        }
    }
}

/// A running `microgradd` instance: TCP accept loop + scheduler.
pub struct Server {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    signal: Arc<ShutdownSignal>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener, starts the scheduler and the accept loop.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound or the store
    /// directory cannot be created.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let store = match &config.store_dir {
            Some(dir) => ResultStore::open(dir)?,
            None => ResultStore::in_memory(),
        }
        .with_fault_plan(config.fault.clone());
        let scheduler = Arc::new(Scheduler::new(
            SchedulerConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                ..SchedulerConfig::default()
            },
            store,
        ));
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let signal = Arc::new(ShutdownSignal::new());
        let connections = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let scheduler = Arc::clone(&scheduler);
            let signal = Arc::clone(&signal);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || {
                accept_loop(&listener, &scheduler, &signal, &connections);
            })
        };

        Ok(Server {
            addr,
            scheduler,
            signal,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (with the actual port when `:0` was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for in-process inspection (tests, the daemon's exit
    /// report).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Whether a shutdown has been requested (by a client or locally).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Blocks until a shutdown is requested.
    pub fn wait_for_shutdown(&self) {
        self.signal.wait();
    }

    /// Requests a graceful shutdown from inside the process — the same
    /// path a client `shutdown` request takes: the scheduler's intake
    /// closes first, then [`wait_for_shutdown`](Self::wait_for_shutdown)
    /// unblocks.  Non-blocking; the daemon's operator-signal (SIGTERM /
    /// Ctrl-C) handling routes through here so a killed daemon drains
    /// instead of dying mid-job.
    pub fn request_shutdown(&self) {
        self.scheduler.begin_shutdown();
        self.signal.trigger();
    }

    /// Stops accepting, drains connection threads, finishes in-flight jobs
    /// and joins everything.  Also runs on drop; calling it explicitly
    /// makes the completion point visible.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.signal.trigger();
        // Close the scheduler's intake before draining connections, so a
        // submission racing a locally-initiated shutdown is refused rather
        // than acknowledged and then dropped.
        self.scheduler.begin_shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let connections =
            std::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for connection in connections {
            let _ = connection.join();
        }
        self.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    scheduler: &Arc<Scheduler>,
    signal: &Arc<ShutdownSignal>,
    connections: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if signal.is_triggered() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let scheduler = Arc::clone(scheduler);
        let signal = Arc::clone(signal);
        let handle = std::thread::spawn(move || {
            serve_connection(stream, &scheduler, &signal);
        });
        let mut connections = connections.lock().expect("connection list poisoned");
        // Reap finished sessions so a long-lived daemon holds handles only
        // for connections that are still open, not for every connection it
        // ever accepted.
        connections.retain(|connection| !connection.is_finished());
        connections.push(handle);
    }
}

fn serve_connection(stream: TcpStream, scheduler: &Scheduler, signal: &ShutdownSignal) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Accumulate raw bytes, not a String: `read_line` discards bytes it
    // already consumed when a read timeout lands mid-way through a
    // multi-byte UTF-8 character, corrupting slowly-arriving requests.
    // `read_until` keeps every consumed byte across timeouts.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF: client closed the session.
            Ok(_) => {
                let text = String::from_utf8_lossy(&line);
                if text.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let response = handle_line(&text, scheduler, signal);
                line.clear();
                // A response that cannot be serialized is itself answered
                // with an error response; if even that fails, the session
                // is closed rather than sending a corrupt line.
                let payload = match encode_line(&response) {
                    Ok(payload) => payload,
                    Err(e) => {
                        let fallback = Response::new(ResponseBody::Error {
                            message: e.to_string(),
                            retry_after_ms: None,
                        });
                        match encode_line(&fallback) {
                            Ok(payload) => payload,
                            Err(_) => break,
                        }
                    }
                };
                let fault = scheduler.store().fault_plan();
                if fault.should_inject(FaultSite::ConnectionDrop) {
                    // Sever the connection mid-line: commit a partial
                    // response with no newline, then hang up.  The client
                    // sees a closed connection and must reconnect and
                    // resubmit (idempotent thanks to dedup).
                    let cut = payload.len() / 2;
                    let _ = writer.write_all(&payload.as_bytes()[..cut]);
                    let _ = writer.flush();
                    break;
                }
                if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                    break;
                }
                if signal.is_triggered() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout: partial input (if any) stays accumulated in
                // `line`; just observe the shutdown flag and keep reading.
                if signal.is_triggered() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn handle_line(line: &str, scheduler: &Scheduler, signal: &ShutdownSignal) -> Response {
    let request = match decode_request(line) {
        Ok(request) => request,
        Err(e @ (WireError::Malformed(_) | WireError::Version { .. } | WireError::Encode(_))) => {
            return Response::new(ResponseBody::Error {
                message: e.to_string(),
                retry_after_ms: None,
            });
        }
    };
    let body = match request.body {
        RequestBody::Submit {
            config,
            priority,
            deadline_ms,
        } => match scheduler.submit_with_deadline(config, priority, deadline_ms) {
            Ok(outcome) => ResponseBody::Submitted {
                job: outcome.job,
                deduped: outcome.deduped,
                cached: outcome.cached,
            },
            Err(e) => {
                // Both rejections are transient, so both carry a
                // machine-readable retry hint.
                let retry_after_ms = match &e {
                    SubmitError::QueueFull { .. } => Some(QUEUE_FULL_RETRY_MS),
                    SubmitError::ShuttingDown => Some(SHUTDOWN_RETRY_MS),
                };
                ResponseBody::Error {
                    message: e.to_string(),
                    retry_after_ms,
                }
            }
        },
        RequestBody::Status { job } => match scheduler.status(job) {
            Some(state) => ResponseBody::Status { job, state },
            None => ResponseBody::Error {
                message: format!("unknown job {job}"),
                retry_after_ms: None,
            },
        },
        RequestBody::Fetch { job } => match scheduler.fetch(job) {
            FetchResult::Ready(output) => ResponseBody::Report { job, output },
            FetchResult::NotReady(state) => ResponseBody::Error {
                message: format!("job {job} is not finished (state: {state})"),
                retry_after_ms: None,
            },
            FetchResult::NotFound => ResponseBody::Error {
                message: format!("unknown job {job}"),
                retry_after_ms: None,
            },
        },
        RequestBody::List => ResponseBody::Jobs {
            jobs: scheduler.list(),
        },
        RequestBody::Stats => ResponseBody::Stats {
            stats: scheduler.stats(),
        },
        RequestBody::Shutdown => {
            // Close the scheduler's intake first: submissions racing the
            // shutdown get a `ShuttingDown` error instead of a success
            // receipt for work that would be lost on exit.
            scheduler.begin_shutdown();
            signal.trigger();
            ResponseBody::ShuttingDown
        }
    };
    Response::new(body)
}
