//! The TCP server: a readiness event loop feeding a small handler pool.
//!
//! One reactor thread (see [`crate::reactor`]) owns the listener and
//! every client socket behind nonblocking I/O and `poll(2)`; a fixed
//! handler pool executes decoded requests against the scheduler.  The
//! thread count is `1 + HANDLER_THREADS + workers` regardless of how
//! many connections are open — a thousand idle clients cost slab
//! entries, not threads, and wake nothing.
//!
//! Each connection is one long-lived JSON-lines session (see
//! [`crate::protocol`]); every request line is answered with exactly one
//! response line, in request order, so clients may pipeline.  Malformed
//! lines and version mismatches are answered with an error response
//! rather than a dropped connection — only I/O failure, EOF or a
//! backpressure cap closes a session.  The `watch` request defers its
//! response until the scheduler's terminal hook pushes the completion
//! through the reactor's self-pipe: waiting clients block on their
//! socket instead of polling.
//!
//! Shutdown is cooperative and clean: a `shutdown` request (or
//! [`Server::shutdown`]) stops the accept loop, the reactor resolves
//! pending watches and flushes every write queue, the scheduler finishes
//! in-flight jobs, and every thread is joined before
//! [`Server::shutdown`] returns.

use crate::protocol::{
    decode_request, encode_line, ReactorStats, RequestBody, Response, ResponseBody, WireError,
};
use crate::reactor::{
    self, HandlerOutcome, Inbox, ReactorCounters, ReactorShared, WakePipe, WorkQueue,
};
use crate::scheduler::{FetchResult, Scheduler, SchedulerConfig, SubmitError};
use crate::store::ResultStore;
use micrograd_obs::clock::now_ns;
use micrograd_obs::Stage;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Request-handler threads: they only run short scheduler calls (the
/// heavy lifting happens on the scheduler's own workers), so a small
/// fixed pool keeps the reactor responsive without scaling threads with
/// load.
const HANDLER_THREADS: usize = 2;

/// Retry hint attached to a queue-full rejection: the queue drains at job
/// granularity, so a short pause is usually enough.
const QUEUE_FULL_RETRY_MS: u64 = 200;

/// Retry hint attached to a shutting-down rejection: the client should try
/// again once a replacement daemon is up.
const SHUTDOWN_RETRY_MS: u64 = 1_000;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Durable store directory; `None` keeps results in memory only.
    pub store_dir: Option<PathBuf>,
    /// Fault plan shared by the store, the scheduler and every connection
    /// handler (chaos testing).  [`FaultPlan::none`](crate::FaultPlan::none)
    /// in production.
    pub fault: crate::fault::FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 64,
            store_dir: None,
            fault: crate::fault::FaultPlan::none(),
        }
    }
}

pub(crate) struct ShutdownSignal {
    requested: AtomicBool,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl ShutdownSignal {
    fn new() -> Self {
        ShutdownSignal {
            requested: AtomicBool::new(false),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    fn trigger(&self) {
        self.requested.store(true, Ordering::SeqCst);
        let _guard = crate::sync::lock_or_recover(&self.lock);
        self.condvar.notify_all();
    }

    pub(crate) fn is_triggered(&self) -> bool {
        self.requested.load(Ordering::SeqCst)
    }

    fn wait(&self) {
        let mut guard = crate::sync::lock_or_recover(&self.lock);
        while !self.is_triggered() {
            guard = crate::sync::wait_or_recover(&self.condvar, guard);
        }
    }
}

/// A running `microgradd` instance: reactor thread, handler pool and
/// scheduler.
pub struct Server {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    signal: Arc<ShutdownSignal>,
    wake: Arc<WakePipe>,
    work: Arc<WorkQueue>,
    counters: Arc<ReactorCounters>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
    handler_threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Everything a handler thread needs to answer one request line.
struct HandlerCtx {
    scheduler: Arc<Scheduler>,
    signal: Arc<ShutdownSignal>,
    wake: Arc<WakePipe>,
    counters: Arc<ReactorCounters>,
}

impl Server {
    /// Binds the listener, starts the scheduler, the reactor and the
    /// handler pool.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound, the store
    /// directory cannot be created, or the reactor's self-pipe cannot be
    /// set up (including `Unsupported` on non-unix platforms, which lack
    /// the `poll(2)` shim).
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let store = match &config.store_dir {
            Some(dir) => ResultStore::open(dir)?,
            None => ResultStore::in_memory(),
        }
        .with_fault_plan(config.fault.clone());
        let scheduler = Arc::new(Scheduler::new(
            SchedulerConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                ..SchedulerConfig::default()
            },
            store,
        ));
        let wake = Arc::new(WakePipe::new()?);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let signal = Arc::new(ShutdownSignal::new());
        let work = Arc::new(WorkQueue::new());
        let inbox = Arc::new(Inbox::default());
        let counters = Arc::new(ReactorCounters::default());

        // Job completions reach waiting clients with no polling anywhere:
        // the scheduler's terminal hook (invoked under the scheduler
        // lock, so it must only enqueue) drops the completion in the
        // inbox and pokes the reactor awake.
        {
            let inbox = Arc::clone(&inbox);
            let wake = Arc::clone(&wake);
            scheduler.set_terminal_hook(Arc::new(move |job, state| {
                inbox.push_completion(job, state.clone());
                wake.notify();
            }));
        }

        let reactor_thread = {
            let shared = ReactorShared {
                scheduler: Arc::clone(&scheduler),
                signal: Arc::clone(&signal),
                work: Arc::clone(&work),
                inbox: Arc::clone(&inbox),
                wake: Arc::clone(&wake),
                counters: Arc::clone(&counters),
            };
            std::thread::spawn(move || reactor::run(listener, &shared))
        };

        let handler_threads = (0..HANDLER_THREADS)
            .map(|_| {
                let ctx = HandlerCtx {
                    scheduler: Arc::clone(&scheduler),
                    signal: Arc::clone(&signal),
                    wake: Arc::clone(&wake),
                    counters: Arc::clone(&counters),
                };
                let work = Arc::clone(&work);
                let inbox = Arc::clone(&inbox);
                std::thread::spawn(move || {
                    while let Some(item) = work.pop() {
                        let outcome = handle_line(&item.line, &ctx);
                        inbox.push_result(item.token, item.gen, item.seq, outcome);
                        ctx.wake.notify();
                    }
                })
            })
            .collect();

        Ok(Server {
            addr,
            scheduler,
            signal,
            wake,
            work,
            counters,
            reactor_thread: Some(reactor_thread),
            handler_threads,
        })
    }

    /// The bound address (with the actual port when `:0` was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for in-process inspection (tests, the daemon's exit
    /// report).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// A snapshot of the event loop's counters (also served to clients
    /// inside the `stats` response).
    #[must_use]
    pub fn reactor_stats(&self) -> ReactorStats {
        self.counters.snapshot()
    }

    /// Whether a shutdown has been requested (by a client or locally).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.signal.is_triggered()
    }

    /// Blocks until a shutdown is requested.
    pub fn wait_for_shutdown(&self) {
        self.signal.wait();
    }

    /// Requests a graceful shutdown from inside the process — the same
    /// path a client `shutdown` request takes: the scheduler's intake
    /// closes first, then [`wait_for_shutdown`](Self::wait_for_shutdown)
    /// unblocks.  Non-blocking; the daemon's operator-signal (SIGTERM /
    /// Ctrl-C) handling routes through here so a killed daemon drains
    /// instead of dying mid-job.
    pub fn request_shutdown(&self) {
        self.scheduler.begin_shutdown();
        self.signal.trigger();
        self.wake.notify();
    }

    /// Stops accepting, drains write queues, finishes in-flight jobs and
    /// joins everything.  Also runs on drop; calling it explicitly makes
    /// the completion point visible.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.signal.trigger();
        // Close the scheduler's intake before draining connections, so a
        // submission racing a locally-initiated shutdown is refused rather
        // than acknowledged and then dropped.
        self.scheduler.begin_shutdown();
        // Wake the reactor; it stops accepting, resolves watches, flushes
        // response queues and exits.
        self.wake.notify();
        if let Some(thread) = self.reactor_thread.take() {
            let _ = thread.join();
        }
        // Handlers drain whatever the reactor dispatched, then stop.
        self.work.stop();
        for thread in self.handler_threads.drain(..) {
            let _ = thread.join();
        }
        self.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Executes one request line, timing it into the metrics registry: every
/// line becomes exactly one `micrograd_requests_total{op=...}` count and
/// one `micrograd_request_duration_us` histogram sample (undecodable
/// lines under `op="invalid"`).
fn handle_line(line: &str, ctx: &HandlerCtx) -> HandlerOutcome {
    let started_ns = now_ns();
    let (op, outcome) = dispatch_line(line, ctx);
    ctx.scheduler
        .metrics()
        .record_request(op, now_ns().saturating_sub(started_ns) / 1_000);
    outcome
}

/// Decodes and dispatches one request line.  Runs on a handler thread;
/// returns the op label (for metrics) and either an encoded response line
/// or a deferred-watch registration for the reactor.
fn dispatch_line(line: &str, ctx: &HandlerCtx) -> (&'static str, HandlerOutcome) {
    let request = match decode_request(line) {
        Ok(request) => request,
        Err(e @ (WireError::Malformed(_) | WireError::Version { .. } | WireError::Encode(_))) => {
            let outcome = encode_outcome(&Response::new(ResponseBody::Error {
                message: e.to_string(),
                retry_after_ms: None,
            }));
            return ("invalid", outcome);
        }
    };
    let scheduler = &ctx.scheduler;
    let (op, body) = match request.body {
        RequestBody::Submit {
            config,
            priority,
            deadline_ms,
        } => (
            "submit",
            match scheduler.submit_with_deadline(config, priority, deadline_ms) {
                Ok(outcome) => {
                    scheduler
                        .metrics()
                        .sink()
                        .record(outcome.job, Stage::Responded, 0);
                    ResponseBody::Submitted {
                        job: outcome.job,
                        deduped: outcome.deduped,
                        cached: outcome.cached,
                    }
                }
                Err(e) => {
                    // Both rejections are transient, so both carry a
                    // machine-readable retry hint.
                    let retry_after_ms = match &e {
                        SubmitError::QueueFull { .. } => Some(QUEUE_FULL_RETRY_MS),
                        SubmitError::ShuttingDown => Some(SHUTDOWN_RETRY_MS),
                    };
                    if let Some(hint) = retry_after_ms {
                        scheduler.metrics().retry_after_ms.set(hint);
                    }
                    ResponseBody::Error {
                        message: e.to_string(),
                        retry_after_ms,
                    }
                }
            },
        ),
        RequestBody::Status { job } => (
            "status",
            match scheduler.status(job) {
                Some(state) => ResponseBody::Status { job, state },
                None => ResponseBody::Error {
                    message: format!("unknown job {job}"),
                    retry_after_ms: None,
                },
            },
        ),
        RequestBody::Watch { job, timeout_ms } => {
            // The reactor owns watch resolution; the deadline is fixed
            // here so queueing delays count against the client's budget.
            return (
                "watch",
                HandlerOutcome::Watch {
                    job,
                    deadline: timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
                },
            );
        }
        RequestBody::Fetch { job } => (
            "fetch",
            match scheduler.fetch(job) {
                FetchResult::Ready(output) => ResponseBody::Report { job, output },
                FetchResult::NotReady(state) => ResponseBody::Error {
                    message: format!("job {job} is not finished (state: {state})"),
                    retry_after_ms: None,
                },
                FetchResult::NotFound => ResponseBody::Error {
                    message: format!("unknown job {job}"),
                    retry_after_ms: None,
                },
            },
        ),
        RequestBody::List => (
            "list",
            ResponseBody::Jobs {
                jobs: scheduler.list(),
            },
        ),
        RequestBody::Stats => {
            let mut stats = scheduler.stats();
            stats.reactor = ctx.counters.snapshot();
            ("stats", ResponseBody::Stats { stats })
        }
        RequestBody::Metrics => {
            // Mirror the reactor's live counters into the registry so one
            // scrape sees every layer, then render the whole registry.
            scheduler.metrics().sync_reactor(&ctx.counters.snapshot());
            (
                "metrics",
                ResponseBody::Metrics {
                    text: scheduler.metrics_text(),
                },
            )
        }
        RequestBody::Trace { job } => (
            "trace",
            match scheduler.timeline(job) {
                Some(timeline) => ResponseBody::Timeline { timeline },
                None => ResponseBody::Error {
                    message: format!("no timeline recorded for job {job}"),
                    retry_after_ms: None,
                },
            },
        ),
        RequestBody::Shutdown => {
            // Close the scheduler's intake first: submissions racing the
            // shutdown get a `ShuttingDown` error instead of a success
            // receipt for work that would be lost on exit.  The wake
            // poke sends the reactor into its drain, which still flushes
            // this acknowledgement.
            scheduler.begin_shutdown();
            ctx.signal.trigger();
            ctx.wake.notify();
            ("shutdown", ResponseBody::ShuttingDown)
        }
    };
    (op, encode_outcome(&Response::new(body)))
}

/// Encodes a response for the wire; a response that cannot be serialized
/// is itself answered with an error response, never a corrupt line.
fn encode_outcome(response: &Response) -> HandlerOutcome {
    let line = encode_line(response).unwrap_or_else(|e| {
        let fallback = Response::new(ResponseBody::Error {
            message: e.to_string(),
            retry_after_ms: None,
        });
        encode_line(&fallback).unwrap_or_else(|_| {
            concat!(
                r#"{"proto":1,"body":{"result":"error","#,
                r#""message":"response serialization failed"}}"#,
                "\n"
            )
            .to_owned()
        })
    });
    HandlerOutcome::Line(line)
}
