//! End-to-end tests of the service subsystem over real TCP connections.
//!
//! These drive a full in-process daemon (`Server::start` on an ephemeral
//! loopback port) through the public [`Client`], covering the acceptance
//! path of the job-server subsystem: submit → poll → fetch for both the
//! clone and stress use cases, N-client concurrent submission collapsing
//! onto one execution with bit-identical reports, and a daemon restart
//! answering a repeat submission from the durable store — again
//! bit-identically.

use micrograd_core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, Metrics, MicroGrad, StressGoal,
    TunerKind, UseCaseConfig,
};
use micrograd_service::{Client, JobState, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Generous bound for one tiny tuning job; polling returns far earlier.
const JOB_TIMEOUT: Duration = Duration::from_secs(300);
const POLL: Duration = Duration::from_millis(20);

/// A unique, self-cleaning scratch directory (no `tempfile` in the
/// offline build; integration tests cannot see the crate's private
/// test helpers).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        ScratchDir(std::env::temp_dir().join(format!(
            "micrograd-e2e-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn stress_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 2,
        dynamic_len: 3_000,
        reference_len: 3_000,
        seed,
        ..FrameworkConfig::default()
    }
}

fn clone_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::Full,
        use_case: UseCaseConfig::CloneMetrics {
            name: "e2e-target".to_owned(),
            target: Metrics::new()
                .with(MetricKind::IntegerFraction, 0.4)
                .with(MetricKind::LoadFraction, 0.25)
                .with(MetricKind::Ipc, 1.1),
            accuracy_target: 0.9,
        },
        max_epochs: 2,
        dynamic_len: 3_000,
        reference_len: 3_000,
        seed,
        ..FrameworkConfig::default()
    }
}

fn start_server(store_dir: Option<PathBuf>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(), // ephemeral port
        workers: 2,
        queue_capacity: 32,
        store_dir,
        ..ServerConfig::default()
    })
    .expect("server binds an ephemeral loopback port")
}

/// The full submit → poll → fetch round-trip over TCP for one config;
/// returns the report's canonical JSON bytes (the bit-identity witness).
fn submit_poll_fetch(client: &mut Client, config: &FrameworkConfig) -> (u64, String) {
    let receipt = client.submit(config, 0).expect("submit accepted");
    assert!(!receipt.cached, "first submission must execute");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done, "job completes");
    let output = client.fetch(receipt.job).expect("report fetchable");
    let bytes = serde_json::to_string(&output).expect("report serializes");
    (receipt.job, bytes)
}

#[test]
fn daemon_serves_submit_poll_fetch_for_clone_and_stress() {
    let server = start_server(None);
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let (stress_job, stress_bytes) = submit_poll_fetch(&mut client, &stress_config(1));
    assert!(stress_bytes.contains("\"stress\""), "got: {stress_bytes}");

    let (clone_job, clone_bytes) = submit_poll_fetch(&mut client, &clone_config(2));
    assert_ne!(clone_job, stress_job);
    assert!(clone_bytes.contains("\"clone\""), "got: {clone_bytes}");

    // The same session also serves list and stats.
    let jobs = client.list().expect("list succeeds");
    assert_eq!(jobs.len(), 2);
    assert!(jobs.iter().any(|j| j.use_case == "stress"));
    assert!(jobs.iter().any(|j| j.use_case == "clone-metrics"));
    assert!(jobs.iter().all(|j| j.state == JobState::Done));

    let stats = client.stats().expect("stats succeed");
    assert_eq!(stats.jobs_submitted, 2);
    assert_eq!(stats.executions, 2);
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.workers, 2);
    assert!(
        stats.cache.lookups() > 0,
        "executed jobs surface memo-cache counters: {:?}",
        stats.cache
    );

    // Server-side report equals an in-process run of the same config —
    // the service is a transport, not a different computation.
    let local = MicroGrad::new(stress_config(1)).run().expect("local run");
    assert_eq!(
        serde_json::to_string(&local).unwrap(),
        stress_bytes,
        "service and library runs are bit-identical"
    );

    server.shutdown();
}

#[test]
fn concurrent_identical_submissions_run_once_and_match_bitwise() {
    const CLIENTS: usize = 6;
    let server = start_server(None);
    let addr = server.local_addr();
    let config = stress_config(7);

    let results: Vec<(u64, bool, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let config = &config;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let receipt = client.submit(config, 0).expect("submit accepted");
                    let state = client
                        .wait(receipt.job, POLL, JOB_TIMEOUT)
                        .expect("polling succeeds");
                    assert_eq!(state, JobState::Done);
                    let output = client.fetch(receipt.job).expect("report fetchable");
                    let bytes = serde_json::to_string(&output).unwrap();
                    (receipt.job, receipt.deduped, bytes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread completes"))
            .collect()
    });

    // All clients observe the same job, exactly one submission was fresh,
    // and every fetched report is byte-for-byte identical.
    let job = results[0].0;
    assert!(results.iter().all(|(id, _, _)| *id == job));
    assert_eq!(
        results.iter().filter(|(_, deduped, _)| !deduped).count(),
        1,
        "exactly one submission creates the job"
    );
    let reference = &results[0].2;
    assert!(results.iter().all(|(_, _, bytes)| bytes == reference));

    let mut client = Client::connect(addr).expect("client connects");
    let stats = client.stats().expect("stats succeed");
    assert_eq!(stats.jobs_submitted, CLIENTS as u64);
    assert_eq!(stats.jobs_deduped, CLIENTS as u64 - 1);
    assert_eq!(stats.executions, 1, "one execution for {CLIENTS} clients");

    server.shutdown();
}

#[test]
fn restarted_daemon_answers_repeat_jobs_from_the_durable_store() {
    let scratch = ScratchDir::new("restart");
    let store_dir = scratch.path().to_path_buf();

    // First daemon lifetime: run one clone and one stress job.
    let (first_clone, first_stress) = {
        let server = start_server(Some(store_dir.clone()));
        let mut client = Client::connect(server.local_addr()).expect("client connects");
        let (_, clone_bytes) = submit_poll_fetch(&mut client, &clone_config(3));
        let (_, stress_bytes) = submit_poll_fetch(&mut client, &stress_config(4));
        // A client-requested shutdown, the daemon's normal exit path.
        client.shutdown().expect("shutdown acknowledged");
        server.wait_for_shutdown();
        server.shutdown();
        (clone_bytes, stress_bytes)
    };

    // Restarted daemon over the same store directory: identical
    // submissions are answered from disk without executing, and the
    // reports are bit-identical to the first lifetime's.
    let server = start_server(Some(store_dir));
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    for (config, first_bytes) in [
        (clone_config(3), &first_clone),
        (stress_config(4), &first_stress),
    ] {
        let receipt = client.submit(&config, 0).expect("submit accepted");
        assert!(receipt.cached, "answered from the durable store");
        assert!(!receipt.deduped);
        let output = client.fetch(receipt.job).expect("report fetchable");
        assert_eq!(
            &serde_json::to_string(&output).unwrap(),
            first_bytes,
            "stored report is bit-identical to the original run"
        );
    }
    let stats = client.stats().expect("stats succeed");
    assert_eq!(stats.executions, 0, "nothing re-executed after restart");
    assert_eq!(stats.store_hits, 2);
    assert_eq!(stats.stored_reports, 2);
    server.shutdown();
}

#[test]
fn metrics_scrape_and_job_timelines_cover_the_whole_pipeline() {
    let scratch = ScratchDir::new("obs");
    let server = start_server(Some(scratch.path().to_path_buf()));
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let (job, _) = submit_poll_fetch(&mut client, &stress_config(11));

    // The Prometheus scrape reports every layer: scheduler counters,
    // request series, latency histograms with buckets, reactor gauges.
    let text = client.metrics().expect("metrics scrape succeeds");
    for family in [
        "# TYPE micrograd_jobs_submitted_total counter",
        "micrograd_jobs_submitted_total 1",
        "micrograd_jobs_completed_total 1",
        "micrograd_executions_total 1",
        "micrograd_requests_total{op=\"submit\"} 1",
        "micrograd_request_duration_us_bucket",
        "micrograd_job_queue_wait_us_count 1",
        "micrograd_job_execution_us_count 1",
        "micrograd_job_total_us_count 1",
        "micrograd_epochs_total",
        "micrograd_reactor_connections_open 1",
        "micrograd_stored_reports 1",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }

    // The job's timeline walks the full pipeline in order, with at least
    // one per-epoch execution mark, and survives in the durable store.
    let timeline = client.trace(job).expect("timeline recorded");
    assert_eq!(timeline.job, job);
    let stages: Vec<&str> = timeline.marks.iter().map(|m| m.stage.as_str()).collect();
    for stage in [
        "received",
        "queued",
        "dequeued",
        "executing",
        "persisted",
        "completed",
    ] {
        assert!(stages.contains(&stage), "missing `{stage}` in {stages:?}");
    }
    let epochs = stages.iter().filter(|s| **s == "epoch").count();
    assert_eq!(epochs, 2, "one mark per tuner epoch: {stages:?}");
    let rendered = timeline.render();
    assert!(rendered.contains("persisted"), "render: {rendered}");

    // Offsets are monotonic: the sink sorts by time, and every stage
    // happened after admission.
    assert!(timeline
        .marks
        .windows(2)
        .all(|w| w[0].offset_ns <= w[1].offset_ns));

    // An unknown job is a server error, not a protocol failure.
    assert!(client.trace(9_999).is_err());
    server.shutdown();
}

#[test]
fn malformed_and_mismatched_lines_get_error_responses_not_disconnects() {
    let server = start_server(None);
    let stream = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Garbage line: an error response, and the session stays open.
    writer.write_all(b"{this is not json\n").unwrap();
    writer.flush().unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"error\""), "got: {line}");
    assert!(line.contains("malformed"), "got: {line}");

    // Wrong protocol version: an error naming both versions.
    line.clear();
    writer
        .write_all(b"{\"proto\":99,\"body\":{\"op\":\"list\"}}\n")
        .unwrap();
    writer.flush().unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("version"), "got: {line}");
    assert!(line.contains("99"), "got: {line}");

    // The same connection still serves well-formed requests afterwards.
    line.clear();
    writer
        .write_all(b"{\"proto\":1,\"body\":{\"op\":\"stats\"}}\n")
        .unwrap();
    writer.flush().unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"stats\""), "got: {line}");

    server.shutdown();
}
