//! Chaos tests: the service path under every injected fault class.
//!
//! Each test drives a real daemon (`Server::start` on an ephemeral
//! loopback port) with a deterministic [`FaultPlan`] and asserts the two
//! resilience invariants the fault-injection framework exists to protect:
//!
//! 1. **Clean terminal states** — no fault leaves a job `Running` forever,
//!    poisons the dedup table, or kills the daemon.
//! 2. **Bit-identical recovery** — after the fault clears (retry, restart,
//!    quarantine), resubmitting the same configuration produces a report
//!    byte-for-byte equal to a fault-free in-process run.
//!
//! Fault plans are seeded so every run is replayable; set
//! `MICROGRAD_CHAOS_SEED` to sweep different plans (CI runs two seeds).

use micrograd_core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, MicroGrad, StressGoal, TunerKind,
    UseCaseConfig,
};
use micrograd_service::{
    Client, FaultPlan, FaultSite, JobState, RetryPolicy, Server, ServerConfig,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Generous bound for one tiny tuning job; polling returns far earlier.
const JOB_TIMEOUT: Duration = Duration::from_secs(300);
const POLL: Duration = Duration::from_millis(20);

/// The fault-plan seed: fixed by default so failures replay, overridable
/// so CI can demonstrate the invariants hold across different plans.
fn chaos_seed() -> u64 {
    std::env::var("MICROGRAD_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE)
}

/// A unique, self-cleaning scratch directory (no `tempfile` in the
/// offline build; integration tests cannot see the crate's private
/// test helpers).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        ScratchDir(std::env::temp_dir().join(format!(
            "micrograd-chaos-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn stress_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 2,
        dynamic_len: 3_000,
        reference_len: 3_000,
        seed,
        ..FrameworkConfig::default()
    }
}

/// The fault-free ground truth: an in-process run of the same config,
/// canonically serialized.  Every recovery path must converge to these
/// exact bytes.
fn baseline_bytes(config: &FrameworkConfig) -> String {
    let output = MicroGrad::new(config.clone())
        .run()
        .expect("fault-free local run succeeds");
    serde_json::to_string(&output).expect("report serializes")
}

fn start_server(store_dir: Option<PathBuf>, fault: FaultPlan) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(), // ephemeral port
        workers: 2,
        queue_capacity: 32,
        store_dir,
        fault,
    })
    .expect("server binds an ephemeral loopback port")
}

/// Submit → wait → fetch, asserting the job completes; returns the
/// report's canonical JSON bytes.
fn run_to_done(client: &mut Client, config: &FrameworkConfig) -> String {
    let receipt = client.submit(config, 0).expect("submit accepted");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done, "job completes");
    let output = client.fetch(receipt.job).expect("report fetchable");
    serde_json::to_string(&output).expect("report serializes")
}

#[test]
fn expired_deadline_times_out_cleanly_and_resubmission_recovers() {
    let config = stress_config(chaos_seed());
    let baseline = baseline_bytes(&config);

    let server = start_server(None, FaultPlan::none());
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    // A zero deadline is already expired at admission: the job must reach
    // `TimedOut` without wedging a worker.
    let receipt = client
        .submit_with_deadline(&config, 0, Some(0))
        .expect("submit accepted");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::TimedOut, "expired deadline surfaces");

    // Fetching a timed-out job is a server error naming the state, not a
    // hang or a disconnect.
    let fetch = client.fetch(receipt.job);
    assert!(fetch.is_err(), "timed-out jobs have no report");

    // The timeout must not poison the dedup table: the same configuration,
    // resubmitted without a deadline, runs fresh and matches the baseline.
    let retry = client.submit(&config, 0).expect("resubmit accepted");
    assert!(!retry.deduped, "terminal TimedOut is not a dedup target");
    assert_ne!(retry.job, receipt.job);
    let state = client
        .wait(retry.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done);
    let output = client.fetch(retry.job).expect("report fetchable");
    assert_eq!(
        serde_json::to_string(&output).unwrap(),
        baseline,
        "recovered report is bit-identical to the fault-free run"
    );

    let stats = client.stats().expect("stats succeed");
    assert_eq!(stats.jobs_timed_out, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_failed, 0);
    server.shutdown();
}

#[test]
fn injected_worker_panic_fails_one_job_and_the_retry_matches_baseline() {
    let config = stress_config(chaos_seed().wrapping_add(1));
    let baseline = baseline_bytes(&config);

    // Exactly one injected panic: the first execution dies, the retry is
    // fault-free.
    let plan = FaultPlan::new(chaos_seed()).with_fault(FaultSite::WorkerPanic, 1.0, 1);
    let server = start_server(None, plan);
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    let receipt = client.submit(&config, 0).expect("submit accepted");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    match state {
        JobState::Failed { error } => {
            assert!(error.contains("injected fault"), "got: {error}");
        }
        other => panic!("expected the injected panic to fail the job, got {other:?}"),
    }

    // The worker survived the panic (catch_unwind) and the failed job is
    // not a dedup target: the resubmission executes and matches.
    let bytes = run_to_done(&mut client, &config);
    assert_eq!(bytes, baseline, "retry is bit-identical to fault-free run");

    let stats = client.stats().expect("stats succeed");
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 1);
    server.shutdown();
}

#[test]
fn store_write_faults_degrade_to_memory_and_a_restart_recomputes() {
    let scratch = ScratchDir::new("write-fault");
    let config = stress_config(chaos_seed().wrapping_add(2));
    let baseline = baseline_bytes(&config);

    // Every store write fails: the daemon must degrade to serving from
    // memory, not fail the job.
    {
        let plan = FaultPlan::new(chaos_seed()).with_fault(FaultSite::StoreWrite, 1.0, 64);
        let server = start_server(Some(scratch.path().to_path_buf()), plan);
        let mut client = Client::connect(server.local_addr()).expect("client connects");
        let bytes = run_to_done(&mut client, &config);
        assert_eq!(bytes, baseline, "in-memory report still bit-identical");
        server.shutdown();
    }

    // Nothing reached disk, so a restarted daemon re-executes — and lands
    // on the same bytes.
    let report_files = std::fs::read_dir(scratch.path())
        .map(|dir| {
            dir.filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().starts_with("report-"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(report_files, 0, "write faults kept reports off disk");

    let server = start_server(Some(scratch.path().to_path_buf()), FaultPlan::none());
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let receipt = client.submit(&config, 0).expect("submit accepted");
    assert!(!receipt.cached, "no durable report survived the faults");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done);
    let output = client.fetch(receipt.job).expect("report fetchable");
    assert_eq!(
        serde_json::to_string(&output).unwrap(),
        baseline,
        "recomputed report is bit-identical"
    );
    server.shutdown();
}

#[test]
fn truncated_store_files_are_quarantined_on_restart_and_recomputed() {
    let scratch = ScratchDir::new("truncate");
    let config = stress_config(chaos_seed().wrapping_add(3));
    let baseline = baseline_bytes(&config);

    // Truncation commits a damaged half-file (modeling a crash between
    // write and fsync) and reports the failure to the writer.
    {
        let plan = FaultPlan::new(chaos_seed()).with_fault(FaultSite::StoreTruncate, 1.0, 64);
        let server = start_server(Some(scratch.path().to_path_buf()), plan);
        let mut client = Client::connect(server.local_addr()).expect("client connects");
        let bytes = run_to_done(&mut client, &config);
        assert_eq!(bytes, baseline, "job unaffected by the store damage");
        server.shutdown();
    }

    // The restarted daemon's recovery scan must quarantine the damaged
    // files instead of crashing or serving garbage.
    let server = start_server(Some(scratch.path().to_path_buf()), FaultPlan::none());
    let store = server.scheduler().store();
    assert!(
        store.quarantined_count() >= 1,
        "recovery scan quarantines damaged files (got {})",
        store.quarantined_count()
    );
    let quarantine = store.quarantine_dir().expect("durable store has a dir");
    let quarantined_files = std::fs::read_dir(&quarantine)
        .expect("quarantine directory exists")
        .filter_map(Result::ok)
        .count();
    assert!(quarantined_files >= 1, "damaged files moved, not deleted");

    // With the damage quarantined, the same submission recomputes and
    // persists a good copy this time.
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let receipt = client.submit(&config, 0).expect("submit accepted");
    assert!(!receipt.cached, "damaged report is not served");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done);
    let output = client.fetch(receipt.job).expect("report fetchable");
    assert_eq!(serde_json::to_string(&output).unwrap(), baseline);
    server.shutdown();

    // Third lifetime: the recomputed report survived intact, so now the
    // store answers without executing.
    let server = start_server(Some(scratch.path().to_path_buf()), FaultPlan::none());
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let receipt = client.submit(&config, 0).expect("submit accepted");
    assert!(receipt.cached, "healed store serves from disk");
    let output = client.fetch(receipt.job).expect("report fetchable");
    assert_eq!(serde_json::to_string(&output).unwrap(), baseline);
    server.shutdown();
}

#[test]
fn mid_line_connection_drop_is_survived_by_retrying_clients() {
    let config = stress_config(chaos_seed().wrapping_add(4));
    let baseline = baseline_bytes(&config);

    // The first response write is cut mid-line; the session is gone.
    let plan = FaultPlan::new(chaos_seed()).with_fault(FaultSite::ConnectionDrop, 1.0, 1);
    let server = start_server(None, plan);

    // A plain client observes the drop as a hard (but classified) error…
    let mut naive = Client::connect(server.local_addr()).expect("client connects");
    let err = naive
        .submit(&config, 0)
        .expect_err("dropped connection surfaces");
    assert!(
        err.to_string().contains("closed the connection"),
        "drop is classified as a connection loss, got: {err}"
    );

    // …and the retrying path reconnects and resubmits.  The server
    // processed the first submit before the write died, so the replay
    // dedups onto the job that is already running — idempotent by
    // fingerprint.
    let policy = RetryPolicy {
        retries: 5,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        jitter_seed: chaos_seed(),
    };
    let receipt = naive
        .submit_with_retry(&config, 0, None, &policy)
        .expect("retry path survives the drop");
    let state = naive
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done);
    let output = naive.fetch(receipt.job).expect("report fetchable");
    assert_eq!(
        serde_json::to_string(&output).unwrap(),
        baseline,
        "report after reconnect is bit-identical"
    );

    // Exactly one execution: the replayed submit did not double-run.
    let stats = naive.stats().expect("stats succeed");
    assert_eq!(stats.executions, 1, "resubmission deduped, not re-run");
    server.shutdown();
}

#[test]
fn queue_full_rejections_carry_retry_hints_and_clear() {
    let config = stress_config(chaos_seed().wrapping_add(5));

    // A one-slot queue with slow-ish jobs: concurrent distinct submissions
    // must see machine-readable back-pressure, never a dropped session.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_capacity: 1,
        store_dir: None,
        ..ServerConfig::default()
    })
    .expect("server binds");
    let mut client = Client::connect(server.local_addr()).expect("client connects");

    // Fill the queue far faster than one worker drains it; collect at
    // least one Busy rejection.
    let mut busy_seen = false;
    let mut accepted = Vec::new();
    for i in 0..16 {
        match client.submit(&stress_config(1_000 + i), 0) {
            Ok(receipt) => accepted.push(receipt.job),
            Err(micrograd_service::ClientError::Busy {
                retry_after,
                message,
            }) => {
                assert!(retry_after > Duration::ZERO, "hint present: {message}");
                busy_seen = true;
            }
            Err(other) => panic!("queue pressure must be Busy, got {other}"),
        }
    }
    assert!(busy_seen, "a 1-slot queue under burst load rejects");
    assert!(!accepted.is_empty(), "some submissions land");

    // Back-pressure clears: every accepted job reaches a terminal state,
    // and a patient retrying submit eventually gets through.
    for job in accepted {
        let state = client.wait(job, POLL, JOB_TIMEOUT).expect("polling");
        assert_eq!(state, JobState::Done);
    }
    let receipt = client
        .submit_with_retry(&config, 0, None, &RetryPolicy::default())
        .expect("retry absorbs transient queue-full");
    let state = client
        .wait(receipt.job, POLL, JOB_TIMEOUT)
        .expect("polling succeeds");
    assert_eq!(state, JobState::Done);
    server.shutdown();
}
