//! Integration tests of the readiness event loop: incremental request
//! decoding under pathological fragmentation, push-based `watch`
//! resolution, and graceful drain with idle sessions attached.
//!
//! (Connection-count scaling lives in `conn_scaling.rs`, alone in its
//! binary so thread-count assertions are not polluted by sibling tests.)

use micrograd_core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, StressGoal, TunerKind, UseCaseConfig,
};
use micrograd_service::{decode_response, Client, ClientError, ResponseBody, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Generous bound for one tiny tuning job; the wait returns far earlier.
const JOB_TIMEOUT: Duration = Duration::from_secs(300);
const POLL: Duration = Duration::from_millis(20);

fn stress_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 2,
        dynamic_len: 3_000,
        reference_len: 3_000,
        seed,
        ..FrameworkConfig::default()
    }
}

fn start_server(workers: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

#[test]
fn one_byte_at_a_time_requests_reassemble_and_pipelines_stay_ordered() {
    let server = start_server(1);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Drip a status request one byte per write: the reactor sees up to
    // one byte per readiness event and must reassemble the line.
    let request = "{\"proto\":1,\"body\":{\"op\":\"status\",\"job\":424242}}\n";
    for byte in request.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).expect("write");
        stream.flush().expect("flush");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("response");
    let response = decode_response(&line).expect("decodes");
    match response.body {
        ResponseBody::Error { message, .. } => {
            assert!(message.contains("unknown job 424242"), "got: {message}")
        }
        other => panic!("expected error for unknown job, got {other:?}"),
    }

    // Two pipelined requests in a single write must produce exactly two
    // responses, in request order.
    stream
        .write_all(
            b"{\"proto\":1,\"body\":{\"op\":\"list\"}}\n{\"proto\":1,\"body\":{\"op\":\"stats\"}}\n",
        )
        .expect("pipeline");
    stream.flush().expect("flush");
    let mut first = String::new();
    reader.read_line(&mut first).expect("first response");
    assert!(matches!(
        decode_response(&first).expect("decodes").body,
        ResponseBody::Jobs { .. }
    ));
    let mut second = String::new();
    reader.read_line(&mut second).expect("second response");
    match decode_response(&second).expect("decodes").body {
        ResponseBody::Stats { stats } => {
            assert!(stats.reactor.connections_open >= 1);
            assert!(stats.reactor.connections_accepted >= 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn watch_pushes_completions_and_honors_its_budget() {
    let server = start_server(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Watching an unknown job is a server error, not a hang.
    match client.watch(424242, Some(1_000)) {
        Err(ClientError::Server(message)) => {
            assert!(message.contains("unknown job"), "got: {message}")
        }
        other => panic!("expected server error, got {other:?}"),
    }

    // With one worker, the second submission sits queued behind the
    // first; a tiny watch budget must return its *live* state instead
    // of blocking until completion.
    let first = client.submit(&stress_config(71), 0).expect("submit");
    let second = client.submit(&stress_config(72), 0).expect("submit");
    let live = client.watch(second.job, Some(60)).expect("watch answers");
    assert!(
        !live.is_terminal(),
        "a 60ms watch budget on a queued job must expire live, got {live:?}"
    );

    // An unbounded watch blocks until the push and returns terminal.
    let done = client.watch(first.job, None).expect("watch resolves");
    assert!(done.is_terminal(), "got {done:?}");
    assert!(client.fetch(first.job).is_ok(), "report is fetchable");

    // The deadline-aware wait path (watch under the hood) still works.
    let state = client.wait(second.job, POLL, JOB_TIMEOUT).expect("wait");
    assert!(state.is_terminal());
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_then_closes_every_session() {
    let server = start_server(2);
    // A pile of idle sessions that never send a byte.
    let idle: Vec<TcpStream> = (0..32)
        .map(|_| TcpStream::connect(server.local_addr()).expect("connect"))
        .collect();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.shutdown().expect("shutdown acknowledged");
    server.shutdown();
    // The drain closed every idle session: reads see EOF, not a hang.
    for stream in idle {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 8];
        let mut reader = stream;
        assert_eq!(reader.read(&mut buf).expect("EOF read"), 0);
    }
}
