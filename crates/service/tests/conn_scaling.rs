//! Connection-count scaling: one daemon, 1000+ idle clients, a thread
//! count that does not move, and zero timer-driven wakeups while idle.
//!
//! This is the only test in its binary on purpose: the assertions count
//! the *process's* threads via `/proc/self/task`, which sibling tests
//! running concurrently would pollute.

use micrograd_core::{
    CoreKind, FrameworkConfig, KnobSpaceKind, MetricKind, StressGoal, TunerKind, UseCaseConfig,
};
use micrograd_service::{Client, Server, ServerConfig};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const JOB_TIMEOUT: Duration = Duration::from_secs(300);

fn stress_config(seed: u64) -> FrameworkConfig {
    FrameworkConfig {
        core: CoreKind::Small,
        tuner: TunerKind::GradientDescent,
        knob_space: KnobSpaceKind::InstructionFractions,
        use_case: UseCaseConfig::Stress {
            metric: MetricKind::Ipc,
            goal: StressGoal::Minimize,
        },
        max_epochs: 2,
        dynamic_len: 3_000,
        reference_len: 3_000,
        seed,
        ..FrameworkConfig::default()
    }
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, Iterator::count)
}

#[cfg(not(target_os = "linux"))]
fn thread_count() -> usize {
    0 // No cheap portable thread census; the assertion is skipped.
}

/// Loopback connects can transiently trip over the accept backlog while
/// a batch is being opened; retry briefly instead of flaking.
fn connect_idle(addr: SocketAddr) -> TcpStream {
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("could not open an idle connection to {addr}");
}

#[test]
fn a_thousand_idle_connections_cost_no_threads_and_no_wakeups() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // Warm every lazily-spawned pool (reactor, handlers, workers) before
    // taking the thread baseline.
    client
        .submit_and_wait(&stress_config(81), 0, JOB_TIMEOUT)
        .expect("first job completes");
    let baseline = thread_count();

    // 512 idle connections…
    let mut idle: Vec<TcpStream> = (0..512).map(|_| connect_idle(addr)).collect();
    let at_512 = thread_count();
    // …then 1024: the acceptance bar is ≥1000 concurrently open.
    idle.extend((0..512).map(|_| connect_idle(addr)));
    let at_1024 = thread_count();
    if baseline > 0 {
        assert_eq!(
            (at_512, at_1024),
            (baseline, baseline),
            "thread count must not scale with connection count"
        );
    }

    // connect() returning only means the kernel queued the session; the
    // reactor drains the accept backlog asynchronously. Wait until it
    // owns every connection before asserting quiescence.
    let accept_deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.reactor_stats();
        if stats.connections_open >= 1_025 {
            break;
        }
        assert!(
            std::time::Instant::now() < accept_deadline,
            "accept backlog never drained: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Idle means *idle*: with 1024 open connections and no traffic, the
    // reactor must stay parked in poll(2) — its wakeup counter frozen.
    // (The in-process snapshot touches atomics only, not the loop.)
    let before = server.reactor_stats();
    std::thread::sleep(Duration::from_millis(400));
    let after = server.reactor_stats();
    assert_eq!(
        after.loop_wakeups, before.loop_wakeups,
        "an idle reactor must perform zero timer-driven wakeups"
    );
    assert!(after.connections_open >= 1_025, "stats: {after:?}");
    assert!(after.connections_accepted >= 1_025);

    // The daemon still serves work promptly with the idle fleet attached.
    client
        .submit_and_wait(&stress_config(82), 0, JOB_TIMEOUT)
        .expect("job completes among 1024 idle connections");
    assert_eq!(thread_count(), baseline, "serving work spawned no threads");

    drop(idle);
    drop(client);
    server.shutdown();
}
