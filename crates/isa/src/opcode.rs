//! Opcodes and instruction classes for the RISC-V subset.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Coarse instruction classes.
///
/// These are the categories the MicroGrad paper reports instruction
/// distributions over (Integer, Float, Branch, Load, Store) and the
/// categories the out-of-order core model maps onto functional units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Integer ALU and integer multiply/divide operations.
    Integer,
    /// Floating point operations (add/mul/div/fma).
    Float,
    /// Conditional branches and unconditional jumps.
    Branch,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
}

impl InstrClass {
    /// All classes in a fixed, canonical order.
    ///
    /// The order matches the columns of Table III in the paper
    /// (Integer, Float, Branch, Load, Store).
    pub const ALL: [InstrClass; 5] = [
        InstrClass::Integer,
        InstrClass::Float,
        InstrClass::Branch,
        InstrClass::Load,
        InstrClass::Store,
    ];

    /// Returns `true` for classes that access data memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }

    /// A short lowercase name (`"integer"`, `"float"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InstrClass::Integer => "integer",
            InstrClass::Float => "float",
            InstrClass::Branch => "branch",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Instruction-class histogram over a class stream, normalized to 1.0.
///
/// This is the one shared implementation behind every "class distribution"
/// accessor in the workspace (static building blocks, dynamic traces):
/// callers supply whatever iterator of [`InstrClass`] values describes their
/// instruction population.  An empty stream yields an empty map.
#[must_use]
pub fn class_distribution<I>(classes: I) -> std::collections::BTreeMap<InstrClass, f64>
where
    I: IntoIterator<Item = InstrClass>,
{
    let mut counts: std::collections::BTreeMap<InstrClass, f64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for class in classes {
        *counts.entry(class).or_insert(0.0) += 1.0;
        total += 1;
    }
    if total > 0 {
        for v in counts.values_mut() {
            *v /= total as f64;
        }
    }
    counts
}

/// Opcodes of the RISC-V subset used by the synthetic test cases.
///
/// The set covers every instruction knob listed in Listing 1 of the paper
/// plus enough variety (shifts, logic ops, FP divide / FMA, byte/halfword
/// memory ops, compares) for the SPEC-like application models to have
/// realistic instruction mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // each variant is a standard RISC-V mnemonic
pub enum Opcode {
    // ---- integer ALU ----
    Add,
    Addi,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Lui,
    // ---- integer multiply / divide ----
    Mul,
    Mulh,
    Div,
    Rem,
    // ---- floating point (double precision) ----
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FmaddD,
    FsqrtD,
    FcvtDW,
    // ---- control flow ----
    Beq,
    Bne,
    Blt,
    Bge,
    Jal,
    Jalr,
    // ---- loads ----
    Ld,
    Lw,
    Lh,
    Lb,
    Fld,
    // ---- stores ----
    Sd,
    Sw,
    Sh,
    Sb,
    Fsd,
    // ---- misc ----
    Nop,
}

impl Opcode {
    /// Every opcode, in a fixed canonical order.
    pub const ALL: [Opcode; 39] = [
        Opcode::Add,
        Opcode::Addi,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Lui,
        Opcode::Mul,
        Opcode::Mulh,
        Opcode::Div,
        Opcode::Rem,
        Opcode::FaddD,
        Opcode::FsubD,
        Opcode::FmulD,
        Opcode::FdivD,
        Opcode::FmaddD,
        Opcode::FsqrtD,
        Opcode::FcvtDW,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Jal,
        Opcode::Jalr,
        Opcode::Ld,
        Opcode::Lw,
        Opcode::Lh,
        Opcode::Lb,
        Opcode::Fld,
        Opcode::Sd,
        Opcode::Sw,
        Opcode::Sh,
        Opcode::Sb,
        Opcode::Fsd,
        Opcode::Nop,
    ];

    /// The coarse class of this opcode.
    #[must_use]
    pub fn class(self) -> InstrClass {
        use Opcode::*;
        match self {
            Add | Addi | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Lui | Mul | Mulh | Div
            | Rem | FcvtDW | Nop => InstrClass::Integer,
            FaddD | FsubD | FmulD | FdivD | FmaddD | FsqrtD => InstrClass::Float,
            Beq | Bne | Blt | Bge | Jal | Jalr => InstrClass::Branch,
            Ld | Lw | Lh | Lb | Fld => InstrClass::Load,
            Sd | Sw | Sh | Sb | Fsd => InstrClass::Store,
        }
    }

    /// Returns `true` if this opcode reads or writes data memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        self.class().is_memory()
    }

    /// Returns `true` if this opcode is a conditional branch
    /// (i.e. its direction depends on its operands).
    #[must_use]
    pub fn is_conditional_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Returns `true` if the destination register (if any) is a floating
    /// point register.
    #[must_use]
    pub fn writes_fp_reg(self) -> bool {
        use Opcode::*;
        matches!(self, FaddD | FsubD | FmulD | FdivD | FmaddD | FsqrtD | Fld)
    }

    /// Returns `true` if the source registers are floating point registers.
    #[must_use]
    pub fn reads_fp_regs(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            FaddD | FsubD | FmulD | FdivD | FmaddD | FsqrtD | FcvtDW | Fsd
        )
    }

    /// Number of source register operands this opcode consumes.
    #[must_use]
    pub fn num_sources(self) -> usize {
        use Opcode::*;
        match self {
            Nop | Lui | Jal => 0,
            Addi | Sll | Srl | Sra | FsqrtD | FcvtDW | Ld | Lw | Lh | Lb | Fld | Jalr => 1,
            FmaddD => 3,
            // stores read the data register and the address register
            Sd | Sw | Sh | Sb | Fsd => 2,
            _ => 2,
        }
    }

    /// Returns `true` if this opcode produces a register result.
    #[must_use]
    pub fn has_dest(self) -> bool {
        use Opcode::*;
        !matches!(self, Beq | Bne | Blt | Bge | Sd | Sw | Sh | Sb | Fsd | Nop)
    }

    /// Number of bytes accessed by a memory opcode (0 for non-memory ops).
    #[must_use]
    pub fn access_bytes(self) -> u64 {
        use Opcode::*;
        match self {
            Ld | Sd | Fld | Fsd => 8,
            Lw | Sw => 4,
            Lh | Sh => 2,
            Lb | Sb => 1,
            _ => 0,
        }
    }

    /// The standard RISC-V mnemonic, lowercase with `.` separators
    /// (e.g. `"fadd.d"`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Addi => "addi",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Lui => "lui",
            Mul => "mul",
            Mulh => "mulh",
            Div => "div",
            Rem => "rem",
            FaddD => "fadd.d",
            FsubD => "fsub.d",
            FmulD => "fmul.d",
            FdivD => "fdiv.d",
            FmaddD => "fmadd.d",
            FsqrtD => "fsqrt.d",
            FcvtDW => "fcvt.d.w",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Jal => "jal",
            Jalr => "jalr",
            Ld => "ld",
            Lw => "lw",
            Lh => "lh",
            Lb => "lb",
            Fld => "fld",
            Sd => "sd",
            Sw => "sw",
            Sh => "sh",
            Sb => "sb",
            Fsd => "fsd",
            Nop => "nop",
        }
    }

    /// Representative opcodes for a class, used when expanding a class-level
    /// instruction profile into concrete opcodes.
    #[must_use]
    pub fn representatives(class: InstrClass) -> &'static [Opcode] {
        use Opcode::*;
        match class {
            InstrClass::Integer => &[Add, Addi, Sub, And, Or, Xor, Sll, Mul],
            InstrClass::Float => &[FaddD, FmulD, FsubD, FmaddD],
            InstrClass::Branch => &[Beq, Bne, Blt, Bge],
            InstrClass::Load => &[Ld, Lw],
            InstrClass::Store => &[Sd, Sw],
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an [`Opcode`] from a mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpcodeError {
    text: String,
}

impl fmt::Display for ParseOpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown opcode mnemonic `{}`", self.text)
    }
}

impl std::error::Error for ParseOpcodeError {}

impl FromStr for Opcode {
    type Err = ParseOpcodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        Opcode::ALL
            .iter()
            .copied()
            .find(|op| op.mnemonic() == lower)
            .ok_or(ParseOpcodeError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_opcode_once() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op), "duplicate opcode {op:?} in ALL");
        }
        assert_eq!(seen.len(), Opcode::ALL.len());
    }

    #[test]
    fn class_partitions_are_consistent() {
        for op in Opcode::ALL {
            match op.class() {
                InstrClass::Load => assert!(op.is_memory() && op.access_bytes() > 0),
                InstrClass::Store => assert!(op.is_memory() && op.access_bytes() > 0),
                _ => assert!(!op.is_memory()),
            }
        }
    }

    #[test]
    fn stores_and_branches_have_no_dest() {
        assert!(!Opcode::Sd.has_dest());
        assert!(!Opcode::Beq.has_dest());
        assert!(Opcode::Add.has_dest());
        assert!(Opcode::Ld.has_dest());
    }

    #[test]
    fn mnemonics_round_trip() {
        for op in Opcode::ALL {
            let parsed: Opcode = op.mnemonic().parse().expect("round trip");
            assert_eq!(parsed, op);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(" FADD.D ".parse::<Opcode>().unwrap(), Opcode::FaddD);
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "frobnicate".parse::<Opcode>().unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn representatives_match_their_class() {
        for class in InstrClass::ALL {
            for op in Opcode::representatives(class) {
                assert_eq!(op.class(), class, "{op:?} listed under {class:?}");
            }
        }
    }

    #[test]
    fn conditional_branches_are_branch_class() {
        for op in Opcode::ALL {
            if op.is_conditional_branch() {
                assert_eq!(op.class(), InstrClass::Branch);
            }
        }
    }

    #[test]
    fn fp_register_usage_is_consistent() {
        assert!(Opcode::FaddD.writes_fp_reg());
        assert!(Opcode::Fld.writes_fp_reg());
        assert!(!Opcode::Fld.reads_fp_regs());
        assert!(Opcode::Fsd.reads_fp_regs());
        assert!(!Opcode::Add.writes_fp_reg());
    }

    #[test]
    fn instr_class_display_names() {
        assert_eq!(InstrClass::Integer.to_string(), "integer");
        assert_eq!(InstrClass::Float.to_string(), "float");
        assert_eq!(InstrClass::ALL.len(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&Opcode::FmulD).unwrap();
        let back: Opcode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Opcode::FmulD);
    }
}
