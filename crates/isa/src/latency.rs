//! Execution latencies and functional-unit mapping.

use crate::{InstrClass, Opcode};
use serde::{Deserialize, Serialize};

/// Functional unit types of the out-of-order core model.
///
/// Table II of the paper sizes three pools per core (`ALU/SIMD/FP`); we map
/// integer ALU ops and branches to the ALU pool, integer multiply/divide to
/// the SIMD/complex pool, floating point to the FP pool, and memory ops to
/// the load/store pipeline (bounded by the LSQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuncUnit {
    /// Simple integer ALU (also executes branch comparisons).
    Alu,
    /// Complex integer unit (multiply / divide), the "SIMD" pool of Table II.
    Complex,
    /// Floating point unit.
    Fp,
    /// Load/store pipeline (address generation + cache port).
    Mem,
}

impl FuncUnit {
    /// All functional unit kinds.
    pub const ALL: [FuncUnit; 4] = [
        FuncUnit::Alu,
        FuncUnit::Complex,
        FuncUnit::Fp,
        FuncUnit::Mem,
    ];
}

/// Per-opcode execution latencies (in cycles) used by the core model.
///
/// Latencies are *execution* latencies only: memory instructions add the
/// cache-hierarchy latency on top of [`LatencyModel::latency`], and branch
/// mispredictions add the front-end redirect penalty, both of which are
/// properties of the core configuration rather than the ISA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    int_alu: u32,
    int_mul: u32,
    int_div: u32,
    fp_add: u32,
    fp_mul: u32,
    fp_div: u32,
    fp_sqrt: u32,
    branch: u32,
    agen: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Typical mid-range out-of-order core latencies.
        LatencyModel {
            int_alu: 1,
            int_mul: 3,
            int_div: 12,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 16,
            branch: 1,
            agen: 1,
        }
    }
}

impl LatencyModel {
    /// Creates the default latency model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Execution latency (cycles) of `opcode`, excluding memory hierarchy
    /// latency for loads/stores.
    #[must_use]
    pub fn latency(&self, opcode: Opcode) -> u32 {
        use Opcode::*;
        match opcode {
            Mul | Mulh => self.int_mul,
            Div | Rem => self.int_div,
            FaddD | FsubD | FcvtDW => self.fp_add,
            FmulD | FmaddD => self.fp_mul,
            FdivD => self.fp_div,
            FsqrtD => self.fp_sqrt,
            Beq | Bne | Blt | Bge | Jal | Jalr => self.branch,
            Ld | Lw | Lh | Lb | Fld | Sd | Sw | Sh | Sb | Fsd => self.agen,
            _ => self.int_alu,
        }
    }

    /// The functional unit `opcode` executes on.
    #[must_use]
    pub fn unit(&self, opcode: Opcode) -> FuncUnit {
        use Opcode::*;
        match opcode.class() {
            InstrClass::Load | InstrClass::Store => FuncUnit::Mem,
            InstrClass::Float => FuncUnit::Fp,
            InstrClass::Branch => FuncUnit::Alu,
            InstrClass::Integer => match opcode {
                Mul | Mulh | Div | Rem => FuncUnit::Complex,
                _ => FuncUnit::Alu,
            },
        }
    }

    /// Relative dynamic energy weight of `opcode`, used by the power model
    /// to scale per-instruction execution energy (integer ALU = 1.0).
    #[must_use]
    pub fn energy_weight(&self, opcode: Opcode) -> f64 {
        use Opcode::*;
        match opcode {
            Mul | Mulh => 2.5,
            Div | Rem => 5.0,
            FaddD | FsubD | FcvtDW => 3.0,
            FmulD => 4.0,
            FmaddD => 5.5,
            FdivD => 8.0,
            FsqrtD => 9.0,
            Ld | Lw | Lh | Lb | Fld => 2.0,
            Sd | Sw | Sh | Sb | Fsd => 2.2,
            Beq | Bne | Blt | Bge | Jal | Jalr => 1.2,
            Nop => 0.2,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_sane() {
        let m = LatencyModel::new();
        for op in Opcode::ALL {
            let l = m.latency(op);
            assert!(l >= 1, "{op:?} latency must be at least 1");
            assert!(l <= 32, "{op:?} latency {l} unreasonably large");
        }
    }

    #[test]
    fn fp_slower_than_int_alu() {
        let m = LatencyModel::default();
        assert!(m.latency(Opcode::FmulD) > m.latency(Opcode::Add));
        assert!(m.latency(Opcode::FdivD) > m.latency(Opcode::FmulD));
        assert!(m.latency(Opcode::Div) > m.latency(Opcode::Mul));
    }

    #[test]
    fn unit_assignment_matches_class() {
        let m = LatencyModel::default();
        assert_eq!(m.unit(Opcode::Add), FuncUnit::Alu);
        assert_eq!(m.unit(Opcode::Mul), FuncUnit::Complex);
        assert_eq!(m.unit(Opcode::FaddD), FuncUnit::Fp);
        assert_eq!(m.unit(Opcode::Ld), FuncUnit::Mem);
        assert_eq!(m.unit(Opcode::Sd), FuncUnit::Mem);
        assert_eq!(m.unit(Opcode::Beq), FuncUnit::Alu);
    }

    #[test]
    fn every_opcode_maps_to_a_unit() {
        let m = LatencyModel::default();
        for op in Opcode::ALL {
            // must not panic and must be one of the known kinds
            assert!(FuncUnit::ALL.contains(&m.unit(op)));
        }
    }

    #[test]
    fn energy_weights_reflect_complexity() {
        let m = LatencyModel::default();
        assert!(m.energy_weight(Opcode::FmulD) > m.energy_weight(Opcode::Add));
        assert!(m.energy_weight(Opcode::Sd) > m.energy_weight(Opcode::Add));
        assert!(m.energy_weight(Opcode::Nop) < m.energy_weight(Opcode::Add));
        for op in Opcode::ALL {
            assert!(m.energy_weight(op) > 0.0);
        }
    }

    #[test]
    fn serde_round_trip() {
        let m = LatencyModel::default();
        let json = serde_json::to_string(&m).unwrap();
        let back: LatencyModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
