//! Architectural registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers (`x0`–`x31`).
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating point architectural registers (`f0`–`f31`).
pub const NUM_FP_REGS: u8 = 32;

/// The register file a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register file (`x` registers).
    Int,
    /// Floating point register file (`f` registers).
    Fp,
}

/// An architectural register of the RISC-V subset.
///
/// `x0` is hard-wired to zero, as in real RISC-V: writes to it are dropped
/// and reads always return zero; the simulator treats it as having no
/// producer so it never creates dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg {
    class: RegClass,
    index: u8,
}

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg {
        class: RegClass::Int,
        index: 0,
    };

    /// Creates an integer register `x{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn x(index: u8) -> Reg {
        assert!(
            index < NUM_INT_REGS,
            "integer register index {index} out of range"
        );
        Reg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating point register `f{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn f(index: u8) -> Reg {
        assert!(
            index < NUM_FP_REGS,
            "fp register index {index} out of range"
        );
        Reg {
            class: RegClass::Fp,
            index,
        }
    }

    /// The register file this register belongs to.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within its register file.
    #[must_use]
    pub fn index(self) -> u8 {
        self.index
    }

    /// Returns `true` if this is the hard-wired zero register `x0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }

    /// A flat identifier unique across both register files
    /// (`x` registers occupy 0–31, `f` registers 32–63).
    ///
    /// Useful for indexing dependence-tracking tables in the simulator.
    #[must_use]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_REGS as usize + self.index as usize,
        }
    }

    /// Total number of distinct flat indices ([`Reg::flat_index`]).
    pub const FLAT_COUNT: usize = NUM_INT_REGS as usize + NUM_FP_REGS as usize;
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "x{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Reg::x(5).to_string(), "x5");
        assert_eq!(Reg::f(12).to_string(), "f12");
    }

    #[test]
    fn zero_register() {
        assert!(Reg::x(0).is_zero());
        assert!(!Reg::x(1).is_zero());
        assert!(!Reg::f(0).is_zero());
        assert_eq!(Reg::ZERO, Reg::x(0));
    }

    #[test]
    fn flat_index_is_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_INT_REGS {
            assert!(seen.insert(Reg::x(i).flat_index()));
        }
        for i in 0..NUM_FP_REGS {
            assert!(seen.insert(Reg::f(i).flat_index()));
        }
        assert_eq!(seen.len(), Reg::FLAT_COUNT);
        assert!(seen.iter().all(|&i| i < Reg::FLAT_COUNT));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = Reg::x(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_index_out_of_range_panics() {
        let _ = Reg::f(32);
    }

    #[test]
    fn ordering_groups_by_class() {
        assert!(Reg::x(31) < Reg::f(0));
        assert!(Reg::x(3) < Reg::x(4));
    }
}
