//! # micrograd-isa
//!
//! A RISC-V subset instruction-set model used throughout the MicroGrad
//! reproduction.  The paper targets the RISC-V ISA on a Gem5 model; this
//! crate provides the pieces every other crate needs:
//!
//! * [`Opcode`] — the opcodes the synthetic test cases may contain
//!   (integer ALU, integer multiply/divide, floating point, branches,
//!   loads and stores), mirroring the instruction knobs of Listing 1 in
//!   the paper (`ADD`, `MUL`, `FADDD`, `FMULD`, `BEQ`, `BNE`, `LD`, `LW`,
//!   `SD`, `SW`, …).
//! * [`InstrClass`] — the coarse classes the simulator schedules on and the
//!   metrics report over (Integer / Float / Branch / Load / Store).
//! * [`Reg`] — architectural registers (`x0..x31`, `f0..f31`).
//! * [`Instruction`] — a fully-operand-assigned static instruction, the unit
//!   the code generator emits and the simulator consumes.
//! * [`LatencyModel`] — per-opcode execution latencies and functional-unit
//!   mapping used by the out-of-order core model.
//!
//! # Example
//!
//! ```
//! use micrograd_isa::{Instruction, Opcode, Reg};
//!
//! let add = Instruction::rrr(Opcode::Add, Reg::x(5), Reg::x(6), Reg::x(7));
//! assert_eq!(add.opcode().class(), micrograd_isa::InstrClass::Integer);
//! assert_eq!(add.to_asm(), "add x5, x6, x7");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod instruction;
mod latency;
mod opcode;
mod register;

pub use instruction::{Instruction, MemAccess, Operand};
pub use latency::{FuncUnit, LatencyModel};
pub use opcode::{class_distribution, InstrClass, Opcode};
pub use register::{Reg, RegClass, NUM_FP_REGS, NUM_INT_REGS};
