//! Static instructions: opcode plus operands.

use crate::{InstrClass, Opcode, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate value.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is a register.
    #[must_use]
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate value, if this operand is an immediate.
    #[must_use]
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(*v),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Static description of the memory behaviour of a load or store.
///
/// The code generator attaches one of these to every memory instruction so
/// the trace expansion step can produce the dynamic address stream
/// (base + iteration * stride, wrapping at the footprint) without having to
/// interpret register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Identifier of the memory stream this access belongs to.
    pub stream: u32,
    /// Base address of the stream (bytes).
    pub base: u64,
    /// Per-iteration stride (bytes).
    pub stride: u64,
    /// Footprint of the stream (bytes); the stream wraps modulo this size.
    pub footprint: u64,
    /// Offset of this particular access within the stream's current window.
    pub offset: u64,
}

impl MemAccess {
    /// The address this access touches on loop iteration `iteration`.
    ///
    /// Addresses advance by `stride` per iteration and wrap at the stream
    /// footprint, which is how the generator realizes the `MEM_SIZE` /
    /// `MEM_STRIDE` knobs of the paper.
    #[must_use]
    pub fn address_at(&self, iteration: u64) -> u64 {
        let footprint = self.footprint.max(1);
        let pos = (iteration.wrapping_mul(self.stride) + self.offset) % footprint;
        self.base + pos
    }
}

/// A fully operand-assigned static instruction.
///
/// This is the unit the Microprobe-like code generator emits
/// and the cycle-approximate simulator consumes (after expansion to a
/// dynamic trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    opcode: Opcode,
    dest: Option<Reg>,
    sources: Vec<Reg>,
    imm: Option<i64>,
    mem: Option<MemAccess>,
    /// Probability that a conditional branch is taken (0.0–1.0).
    branch_taken_prob: f64,
    /// Address of this instruction in the (synthetic) text section.
    address: u64,
}

impl Instruction {
    /// Creates an instruction with no operands (e.g. `nop`).
    #[must_use]
    pub fn new(opcode: Opcode) -> Instruction {
        Instruction {
            opcode,
            dest: None,
            sources: Vec::new(),
            imm: None,
            mem: None,
            branch_taken_prob: 0.0,
            address: 0,
        }
    }

    /// Creates a three-register instruction `op dest, src1, src2`.
    #[must_use]
    pub fn rrr(opcode: Opcode, dest: Reg, src1: Reg, src2: Reg) -> Instruction {
        let mut i = Instruction::new(opcode);
        i.dest = Some(dest);
        i.sources = vec![src1, src2];
        i
    }

    /// Creates a register-immediate instruction `op dest, src, imm`.
    #[must_use]
    pub fn rri(opcode: Opcode, dest: Reg, src: Reg, imm: i64) -> Instruction {
        let mut i = Instruction::new(opcode);
        i.dest = Some(dest);
        i.sources = vec![src];
        i.imm = Some(imm);
        i
    }

    /// Creates a conditional branch `op src1, src2, offset`.
    #[must_use]
    pub fn branch(opcode: Opcode, src1: Reg, src2: Reg, offset: i64) -> Instruction {
        debug_assert!(opcode.class() == InstrClass::Branch);
        let mut i = Instruction::new(opcode);
        i.sources = vec![src1, src2];
        i.imm = Some(offset);
        i
    }

    /// Creates a load `op dest, offset(base)` carrying its memory stream
    /// description.
    #[must_use]
    pub fn load(opcode: Opcode, dest: Reg, base: Reg, mem: MemAccess) -> Instruction {
        debug_assert!(opcode.class() == InstrClass::Load);
        let mut i = Instruction::new(opcode);
        i.dest = Some(dest);
        i.sources = vec![base];
        i.imm = Some(0);
        i.mem = Some(mem);
        i
    }

    /// Creates a store `op data, offset(base)` carrying its memory stream
    /// description.
    #[must_use]
    pub fn store(opcode: Opcode, data: Reg, base: Reg, mem: MemAccess) -> Instruction {
        debug_assert!(opcode.class() == InstrClass::Store);
        let mut i = Instruction::new(opcode);
        i.sources = vec![data, base];
        i.imm = Some(0);
        i.mem = Some(mem);
        i
    }

    /// The opcode.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The destination register, if any.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        self.dest
    }

    /// The source registers.
    #[must_use]
    pub fn sources(&self) -> &[Reg] {
        &self.sources
    }

    /// The immediate operand, if any.
    #[must_use]
    pub fn imm(&self) -> Option<i64> {
        self.imm
    }

    /// The memory access description, if this is a load or store.
    #[must_use]
    pub fn mem(&self) -> Option<&MemAccess> {
        self.mem.as_ref()
    }

    /// Probability that this (conditional branch) instruction is taken.
    #[must_use]
    pub fn branch_taken_prob(&self) -> f64 {
        self.branch_taken_prob
    }

    /// The instruction's address in the synthetic text section.
    #[must_use]
    pub fn address(&self) -> u64 {
        self.address
    }

    /// The coarse instruction class.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        self.opcode.class()
    }

    /// Replaces the destination register.
    pub fn set_dest(&mut self, dest: Option<Reg>) {
        self.dest = dest;
    }

    /// Replaces the source registers.
    pub fn set_sources(&mut self, sources: Vec<Reg>) {
        self.sources = sources;
    }

    /// Replaces the memory access description.
    pub fn set_mem(&mut self, mem: Option<MemAccess>) {
        self.mem = mem;
    }

    /// Sets the probability that this conditional branch is taken.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not within `0.0..=1.0`.
    pub fn set_branch_taken_prob(&mut self, prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "branch taken probability {prob} outside [0, 1]"
        );
        self.branch_taken_prob = prob;
    }

    /// Sets the instruction's address.
    pub fn set_address(&mut self, address: u64) {
        self.address = address;
    }

    /// Formats this instruction as RISC-V assembly text.
    #[must_use]
    pub fn to_asm(&self) -> String {
        use InstrClass::*;
        match self.class() {
            Load => {
                let dest = self.dest.map(|r| r.to_string()).unwrap_or_default();
                let base = self
                    .sources
                    .first()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "x0".to_owned());
                format!("{} {dest}, {}({base})", self.opcode, self.imm.unwrap_or(0))
            }
            Store => {
                let data = self
                    .sources
                    .first()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "x0".to_owned());
                let base = self
                    .sources
                    .get(1)
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "x0".to_owned());
                format!("{} {data}, {}({base})", self.opcode, self.imm.unwrap_or(0))
            }
            Branch => {
                let s1 = self
                    .sources
                    .first()
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "x0".to_owned());
                let s2 = self
                    .sources
                    .get(1)
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "x0".to_owned());
                format!("{} {s1}, {s2}, {}", self.opcode, self.imm.unwrap_or(0))
            }
            _ => {
                let mut parts = Vec::new();
                if let Some(d) = self.dest {
                    parts.push(d.to_string());
                }
                for s in &self.sources {
                    parts.push(s.to_string());
                }
                if let Some(imm) = self.imm {
                    parts.push(imm.to_string());
                }
                if parts.is_empty() {
                    self.opcode.to_string()
                } else {
                    format!("{} {}", self.opcode, parts.join(", "))
                }
            }
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_asm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(stride: u64, footprint: u64) -> MemAccess {
        MemAccess {
            stream: 0,
            base: 0x1000,
            stride,
            footprint,
            offset: 0,
        }
    }

    #[test]
    fn rrr_asm_format() {
        let i = Instruction::rrr(Opcode::Add, Reg::x(1), Reg::x(2), Reg::x(3));
        assert_eq!(i.to_asm(), "add x1, x2, x3");
        assert_eq!(i.to_string(), "add x1, x2, x3");
    }

    #[test]
    fn load_store_asm_format() {
        let ld = Instruction::load(Opcode::Ld, Reg::x(5), Reg::x(10), mem(8, 64));
        assert_eq!(ld.to_asm(), "ld x5, 0(x10)");
        let sd = Instruction::store(Opcode::Sd, Reg::x(5), Reg::x(10), mem(8, 64));
        assert_eq!(sd.to_asm(), "sd x5, 0(x10)");
    }

    #[test]
    fn branch_asm_format() {
        let b = Instruction::branch(Opcode::Bne, Reg::x(5), Reg::x(0), -16);
        assert_eq!(b.to_asm(), "bne x5, x0, -16");
    }

    #[test]
    fn mem_access_addresses_wrap_at_footprint() {
        let m = mem(16, 64);
        assert_eq!(m.address_at(0), 0x1000);
        assert_eq!(m.address_at(1), 0x1010);
        assert_eq!(m.address_at(4), 0x1000); // 4*16 = 64 wraps to 0
        assert_eq!(m.address_at(5), 0x1010);
    }

    #[test]
    fn mem_access_zero_footprint_does_not_divide_by_zero() {
        let m = MemAccess {
            stream: 0,
            base: 0,
            stride: 8,
            footprint: 0,
            offset: 0,
        };
        assert_eq!(m.address_at(10), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn branch_prob_validation() {
        let mut b = Instruction::branch(Opcode::Beq, Reg::x(1), Reg::x(2), 8);
        b.set_branch_taken_prob(1.5);
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Reg(Reg::x(3)).as_reg(), Some(Reg::x(3)));
        assert_eq!(Operand::Reg(Reg::x(3)).as_imm(), None);
        assert_eq!(Operand::Imm(7).as_imm(), Some(7));
        assert_eq!(Operand::Imm(7).as_reg(), None);
        assert_eq!(Operand::Imm(-3).to_string(), "-3");
        assert_eq!(Operand::Reg(Reg::f(2)).to_string(), "f2");
    }

    #[test]
    fn class_delegates_to_opcode() {
        let i = Instruction::rrr(Opcode::FmulD, Reg::f(1), Reg::f(2), Reg::f(3));
        assert_eq!(i.class(), InstrClass::Float);
    }

    #[test]
    fn setters_update_fields() {
        let mut i = Instruction::rrr(Opcode::Add, Reg::x(1), Reg::x(2), Reg::x(3));
        i.set_dest(Some(Reg::x(9)));
        i.set_sources(vec![Reg::x(4)]);
        i.set_address(0x400);
        assert_eq!(i.dest(), Some(Reg::x(9)));
        assert_eq!(i.sources(), &[Reg::x(4)]);
        assert_eq!(i.address(), 0x400);
    }

    #[test]
    fn serde_round_trip() {
        let i = Instruction::load(Opcode::Lw, Reg::x(7), Reg::x(20), mem(4, 1024));
        let json = serde_json::to_string(&i).unwrap();
        let back: Instruction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }
}
