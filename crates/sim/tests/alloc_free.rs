//! Proves the per-instruction simulation path performs zero heap
//! allocations: the total allocation count of a warmed-up run must be
//! independent of the dynamic trace length.
//!
//! The binary installs a counting global allocator and compares an
//! N-instruction run against a 2N-instruction run of the same compressed
//! workload.  Any per-instruction allocation — a `Vec` per prefetch
//! observation, a clone per static lookup, a `HashMap` rehash per access —
//! would make the 2N count strictly larger.  The file holds exactly one
//! test so no concurrent test can pollute the counter.

use micrograd_codegen::{Generator, GeneratorInput, TraceExpander};
use micrograd_sim::{CoreConfig, Simulator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the `System` allocator after
// bumping a relaxed counter, so `GlobalAlloc`'s layout/aliasing contract
// holds exactly as it does for `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller's `Layout` and pointer obligations are forwarded
    // unchanged to `System`, which imposes the same contract this trait
    // declares (likewise for the other three methods below).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for, passed through.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: `ptr` was returned by `alloc`/`realloc` above, which is
    // `System` memory with the same layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: pointer and layout forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: `ptr`/`layout` obligations forwarded unchanged to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: pointer, layout and size forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn run_allocation_count_is_independent_of_trace_length() {
    let input = GeneratorInput {
        loop_size: 200,
        seed: 17,
        mem_footprint_kb: 1024,
        branch_randomness: 0.3,
        ..GeneratorInput::default()
    };
    let compressed = Generator::new().generate(&input).unwrap();
    let short = TraceExpander::new(100_000, 17).expand(&compressed);
    let long = TraceExpander::new(200_000, 17).expand(&compressed);

    for config in [CoreConfig::small(), CoreConfig::large()] {
        let mut sim = Simulator::new(config);
        // Warm up: grow the decoded-instruction table, the prefetch scratch
        // and every ring to their steady-state capacities.
        let warm_short = sim.run(&short);
        let warm_long = sim.run(&long);

        let mut stats_short = None;
        let short_allocs = allocations_during(|| {
            stats_short = Some(sim.run(&short));
        });
        let mut stats_long = None;
        let long_allocs = allocations_during(|| {
            stats_long = Some(sim.run(&long));
        });

        // Reuse must not change results...
        assert_eq!(stats_short.unwrap(), warm_short);
        assert_eq!(stats_long.unwrap(), warm_long);
        // ...and doubling the instruction count must not change the
        // allocation count: every remaining allocation is per-run constant
        // (the class-count map and the trace source), not per-instruction.
        assert_eq!(
            short_allocs, long_allocs,
            "per-instruction path allocated: {short_allocs} allocs for 100k \
             instructions vs {long_allocs} for 200k"
        );
        assert!(
            short_allocs < 64,
            "per-run constant allocation count unexpectedly high: {short_allocs}"
        );
    }
}
