//! The memory hierarchy: L1I + L1D + unified L2 + DRAM, with prefetching.

use crate::cache::{Cache, CacheStats};
use crate::config::CoreConfig;
use crate::prefetch::{PrefetchStats, StridePrefetcher};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of the memory hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2 cache.
    pub l2: CacheStats,
    /// Prefetcher.
    pub prefetch: PrefetchStats,
    /// Demand accesses that reached DRAM.
    pub dram_accesses: u64,
}

/// The data/instruction memory hierarchy model.
///
/// Latency composition:
/// * L1 hit → L1 hit latency;
/// * L1 miss, L2 hit → L1 + L2 latency;
/// * L2 miss → L1 + L2 + DRAM latency.
///
/// The Large core of Table II adds a stride prefetcher that trains on L1D
/// demand misses and fills both the L1D and the L2.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    prefetcher: StridePrefetcher,
    memory_latency: u32,
    line_bytes: u64,
    dram_accesses: u64,
    /// Reusable scratch for prefetch targets: the demand-miss path writes
    /// into this buffer instead of allocating a fresh `Vec` per miss.
    prefetch_buf: Vec<u64>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by a core configuration.
    #[must_use]
    pub fn new(config: &CoreConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            prefetcher: StridePrefetcher::new(config.prefetch),
            memory_latency: config.memory_latency,
            line_bytes: config.l1d.line_bytes,
            dram_accesses: 0,
            prefetch_buf: Vec::with_capacity(config.prefetch.degree as usize),
        }
    }

    /// Resets all caches, the prefetcher and the DRAM counter.
    ///
    /// A reset hierarchy is indistinguishable from a freshly constructed
    /// one, which is what lets a reused [`Simulator`](crate::Simulator)
    /// produce bit-identical results without reallocating the (large) dense
    /// tag arrays per run.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
        self.prefetcher.reset();
        self.dram_accesses = 0;
    }

    /// Fetches the instruction at `pc`; returns the access latency.
    pub fn access_instruction(&mut self, pc: u64) -> u32 {
        let mut latency = self.l1i.hit_latency();
        if !self.l1i.access(pc) {
            latency += self.l2.hit_latency();
            if !self.l2.access(pc) {
                latency += self.memory_latency;
                self.dram_accesses += 1;
            }
        }
        latency
    }

    /// Performs a demand data access from static instruction `pc` to
    /// `address`; returns the access latency.
    pub fn access_data(&mut self, pc: u64, address: u64) -> u32 {
        let mut latency = self.l1d.hit_latency();
        if !self.l1d.access(address) {
            latency += self.l2.hit_latency();
            let l2_hit = self.l2.access(address);
            if !l2_hit {
                latency += self.memory_latency;
                self.dram_accesses += 1;
            }
            // Train the prefetcher on the demand miss and install the
            // predicted lines (into the reused scratch buffer — no per-miss
            // allocation).
            let line_addr = address & !(self.line_bytes - 1);
            let mut buf = std::mem::take(&mut self.prefetch_buf);
            self.prefetcher
                .observe_into(pc, line_addr, self.line_bytes, &mut buf);
            for &target in &buf {
                self.l2.fill(target);
                self.l1d.fill(target);
            }
            self.prefetch_buf = buf;
        }
        latency
    }

    /// Latency of an L1D hit (the common case for stores draining from the
    /// store buffer).
    #[must_use]
    pub fn l1d_hit_latency(&self) -> u32 {
        self.l1d.hit_latency()
    }

    /// Collected statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            prefetch: self.prefetcher.stats(),
            dram_accesses: self.dram_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_fetch_latencies_compose() {
        let mut h = MemoryHierarchy::new(&CoreConfig::small());
        let cold = h.access_instruction(0x40_0000);
        let warm = h.access_instruction(0x40_0000);
        assert!(cold > warm);
        assert_eq!(warm, CoreConfig::small().l1i.hit_latency);
        assert_eq!(
            cold,
            CoreConfig::small().l1i.hit_latency
                + CoreConfig::small().l2.hit_latency
                + CoreConfig::small().memory_latency
        );
        assert_eq!(h.stats().dram_accesses, 1);
    }

    #[test]
    fn data_access_hits_after_warmup() {
        let mut h = MemoryHierarchy::new(&CoreConfig::small());
        let cold = h.access_data(0x400, 0x1000_0000);
        let warm = h.access_data(0x400, 0x1000_0000);
        assert!(cold > warm);
        assert_eq!(h.stats().l1d.accesses, 2);
        assert_eq!(h.stats().l1d.hits, 1);
    }

    #[test]
    fn small_core_streaming_misses_more_than_large_core() {
        // Stream 512 KiB repeatedly: fits in the Large L2 (1 MiB) but not in
        // the Small L2 (256 KiB).
        let run = |config: &CoreConfig| {
            let mut h = MemoryHierarchy::new(config);
            for round in 0..4u64 {
                for i in 0..(512 * 1024 / 64) {
                    let _ = h.access_data(0x400, i * 64);
                }
                let _ = round;
            }
            h.stats()
        };
        let small = run(&CoreConfig::small());
        let large = run(&CoreConfig::large());
        assert!(
            large.l2.hit_rate() > small.l2.hit_rate(),
            "large L2 {} vs small L2 {}",
            large.l2.hit_rate(),
            small.l2.hit_rate()
        );
        assert!(large.dram_accesses < small.dram_accesses);
    }

    #[test]
    fn prefetcher_improves_sequential_stream_on_large_core() {
        let stream = |prefetch_enabled: bool| {
            let mut config = CoreConfig::large();
            config.prefetch.enabled = prefetch_enabled;
            let mut h = MemoryHierarchy::new(&config);
            // sequential stream, 8 MiB, one pass: no reuse at all
            for i in 0..(8 * 1024 * 1024 / 64u64) {
                let _ = h.access_data(0x800, i * 64);
            }
            h.stats()
        };
        let without = stream(false);
        let with = stream(true);
        assert!(
            with.l1d.hit_rate() > without.l1d.hit_rate() + 0.2,
            "prefetching should raise the L1D hit rate: {} vs {}",
            with.l1d.hit_rate(),
            without.l1d.hit_rate()
        );
        assert!(with.prefetch.issued > 0);
    }

    #[test]
    fn reset_hierarchy_replays_identically_to_a_fresh_one() {
        let config = CoreConfig::large();
        let drive = |h: &mut MemoryHierarchy| {
            for i in 0..5_000u64 {
                let _ = h.access_instruction(0x40_0000 + (i % 256) * 4);
                let _ = h.access_data(0x40_0000 + (i % 7) * 4, 0x1000_0000 + i * 48);
            }
            h.stats()
        };
        let mut fresh = MemoryHierarchy::new(&config);
        let first = drive(&mut fresh);
        fresh.reset();
        assert_eq!(drive(&mut fresh), first);
        assert_eq!(drive(&mut MemoryHierarchy::new(&config)), first);
    }

    #[test]
    fn store_hit_latency_matches_l1d() {
        let h = MemoryHierarchy::new(&CoreConfig::large());
        assert_eq!(h.l1d_hit_latency(), CoreConfig::large().l1d.hit_latency);
    }
}
