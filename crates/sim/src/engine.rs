//! The cycle-approximate out-of-order core model.

use crate::config::CoreConfig;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::{ActivityCounts, SimStats};
use crate::GsharePredictor;
use micrograd_codegen::{Trace, TraceSource};
use micrograd_isa::{FuncUnit, InstrClass, LatencyModel, Opcode, Reg};
use std::collections::VecDeque;

/// A fixed-capacity ring recording one `u64` per in-flight instruction of a
/// window (ROB, reservation stations).
///
/// The simulator only ever consults the entry exactly `capacity`
/// instructions back — "the cycle the instruction leaving the window frees
/// its slot" — so a flat `capacity`-sized buffer with a wrapping write
/// pointer is sufficient: right before instruction `i` overwrites the slot
/// under the pointer, that slot still holds instruction `i - capacity`.
/// Exactly one [`record`](WindowRing::record) per instruction keeps the
/// pointer in lock-step with the instruction stream (no division on the hot
/// path).
#[derive(Debug)]
struct WindowRing {
    slots: Vec<u64>,
    pos: usize,
    filled: bool,
}

impl WindowRing {
    fn new(capacity: usize) -> Self {
        WindowRing {
            slots: vec![0; capacity],
            pos: 0,
            filled: false,
        }
    }

    /// The recorded value of the instruction `capacity` back, once the
    /// window has filled.
    fn evicted(&self) -> Option<u64> {
        if self.filled {
            Some(self.slots[self.pos])
        } else {
            None
        }
    }

    fn record(&mut self, value: u64) {
        if self.slots.is_empty() {
            return;
        }
        self.slots[self.pos] = value;
        self.pos += 1;
        if self.pos == self.slots.len() {
            self.pos = 0;
            self.filled = true;
        }
    }
}

/// A scoreboard-style out-of-order core simulator.
///
/// The model processes the dynamic trace in program order and computes, for
/// every instruction, the cycle at which it fetches, dispatches, issues and
/// completes, subject to the structural and data constraints of the
/// configured core:
///
/// * **front-end width** — at most `frontend_width` instructions enter the
///   pipeline per cycle, and instruction-cache misses stall the fetch
///   stream;
/// * **branch prediction** — mispredicted conditional branches redirect the
///   front end after the branch resolves plus the redirect penalty;
/// * **windows** — dispatch is limited by ROB, reservation-station and (for
///   memory operations) LSQ occupancy;
/// * **data dependences** — an instruction issues only after all of its
///   source registers' producers have completed, which is how the register
///   dependency distance knob shapes ILP;
/// * **functional units** — each instruction occupies one unit of its class
///   (unpipelined for divides), bounding per-class throughput;
/// * **memory hierarchy** — loads pay the L1D/L2/DRAM latency of their
///   address; stores retire through a store buffer.
///
/// The result is not a cycle-accurate Gem5 replacement, but it reproduces
/// the first-order sensitivities the MicroGrad tuning loop depends on, at a
/// cost of well under a microsecond per simulated instruction.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: CoreConfig,
    latency: LatencyModel,
}

impl Simulator {
    /// Creates a simulator for a core configuration.
    #[must_use]
    pub fn new(config: CoreConfig) -> Self {
        Simulator {
            config,
            latency: LatencyModel::default(),
        }
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Runs a materialized dynamic trace to completion and returns the
    /// statistics.
    ///
    /// Thin adapter over [`run_source`](Simulator::run_source) via
    /// [`Trace::source`]; the two paths are bit-identical.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> SimStats {
        self.run_source(&mut trace.source())
    }

    /// Runs a streaming [`TraceSource`] to exhaustion and returns the
    /// statistics.
    ///
    /// This is the fused single-pass path: the source produces each dynamic
    /// instruction on demand and the simulator retires it immediately, so
    /// nothing is ever materialized.  The per-instruction bookkeeping that
    /// used to live in O(`dynamic_len`) vectors (completion cycles, issue
    /// cycles, memory-op indices) is held in ring buffers bounded by the
    /// ROB, reservation-station and LSQ depths of the configured core —
    /// peak memory is O(window sizes), independent of trace length, which
    /// makes 100 M-instruction evaluations affordable.
    #[must_use]
    pub fn run_source<S: TraceSource + ?Sized>(&self, source: &mut S) -> SimStats {
        let mut stats = SimStats {
            frequency_hz: self.config.frequency_hz,
            ..SimStats::default()
        };

        let cfg = &self.config;
        let mut hierarchy = MemoryHierarchy::new(cfg);
        let mut predictor = GsharePredictor::new(cfg.branch_predictor);
        let mut activity = ActivityCounts::default();

        // Completion / issue cycles of the in-flight window only: dispatch
        // of instruction `i` is gated by the instruction leaving the ROB
        // (`i - rob_entries`) and the reservation stations
        // (`i - rs_entries`), so a window-sized ring suffices.
        let mut completion_ring = WindowRing::new(cfg.rob_entries as usize);
        let mut issue_ring = WindowRing::new(cfg.rs_entries as usize);
        // Completion cycles of the last `lsq_entries` memory operations:
        // a new memory op waits for the one vacating the LSQ, which may be
        // arbitrarily far back in the instruction stream.
        let lsq = cfg.lsq_entries as usize;
        let mut lsq_completions: VecDeque<u64> = VecDeque::with_capacity(lsq.min(4096));
        // Cycle at which each architectural register's value is available.
        let mut reg_ready: Vec<u64> = vec![0; Reg::FLAT_COUNT];
        // Next-free cycle per functional unit instance.
        let mut unit_free: [Vec<u64>; 4] = [
            vec![0; cfg.units_for(FuncUnit::Alu).max(1) as usize],
            vec![0; cfg.units_for(FuncUnit::Complex).max(1) as usize],
            vec![0; cfg.units_for(FuncUnit::Fp).max(1) as usize],
            vec![0; cfg.units_for(FuncUnit::Mem).max(1) as usize],
        ];
        let unit_slot = |u: FuncUnit| -> usize {
            match u {
                FuncUnit::Alu => 0,
                FuncUnit::Complex => 1,
                FuncUnit::Fp => 2,
                FuncUnit::Mem => 3,
            }
        };

        let mut fetch_cycle: u64 = 0;
        let mut fetched_this_cycle: u32 = 0;
        let mut fetch_stall_until: u64 = 0;
        let mut last_fetch_line: u64 = u64::MAX;
        let line_bytes = cfg.l1i.line_bytes.max(1);
        let mut max_completion: u64 = 0;
        let mut n: usize = 0;

        // The static table is stable for the source's lifetime (trait
        // contract), so copy it out once: `measure_source` hands us a trait
        // object, and a per-instruction virtual `statics()` call would sit
        // on the hottest loop in the framework.
        let statics = source.statics().to_vec();

        while let Some(dynamic) = source.next_dynamic() {
            n += 1;
            let instr = &statics[dynamic.static_index as usize];
            let opcode = instr.opcode();
            let class = opcode.class();

            // ---------------- fetch ----------------
            if fetched_this_cycle >= cfg.frontend_width {
                fetch_cycle += 1;
                fetched_this_cycle = 0;
            }
            if fetch_cycle < fetch_stall_until {
                fetch_cycle = fetch_stall_until;
                fetched_this_cycle = 0;
            }
            // Instruction cache: one access per line transition.
            let line = dynamic.pc / line_bytes;
            if line != last_fetch_line {
                let lat = hierarchy.access_instruction(dynamic.pc);
                let extra = lat.saturating_sub(cfg.l1i.hit_latency);
                if extra > 0 {
                    fetch_cycle += u64::from(extra);
                    fetched_this_cycle = 0;
                }
                last_fetch_line = line;
            }
            let this_fetch = fetch_cycle;
            fetched_this_cycle += 1;
            activity.fetched += 1;

            // ---------------- dispatch (window constraints) ----------------
            let mut dispatch = this_fetch + u64::from(cfg.frontend_depth);
            if let Some(rob_free) = completion_ring.evicted() {
                dispatch = dispatch.max(rob_free);
            }
            if let Some(rs_free) = issue_ring.evicted() {
                dispatch = dispatch.max(rs_free);
            }
            let is_mem = class.is_memory();
            if is_mem && lsq > 0 && lsq_completions.len() >= lsq {
                // The oldest tracked memory op is the one whose retirement
                // frees the LSQ slot this op needs.
                dispatch = dispatch.max(lsq_completions[lsq_completions.len() - lsq]);
            }
            activity.rob_writes += 1;
            if is_mem {
                activity.lsq_ops += 1;
            }

            // ---------------- issue (data deps + functional units) --------
            let mut ready = dispatch;
            for src in instr.sources() {
                if src.is_zero() {
                    continue;
                }
                ready = ready.max(reg_ready[src.flat_index()]);
                activity.regfile_reads += 1;
            }
            let unit = self.latency.unit(opcode);
            let slot = unit_slot(unit);
            let (unit_idx, unit_avail) = unit_free[slot]
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|(_, c)| *c)
                .expect("at least one functional unit per class");
            let issue = ready.max(unit_avail);
            issue_ring.record(issue);
            // Divides and square roots occupy their unit unpipelined.
            let occupancy = match opcode {
                Opcode::Div | Opcode::Rem | Opcode::FdivD | Opcode::FsqrtD => {
                    u64::from(self.latency.latency(opcode))
                }
                _ => 1,
            };
            unit_free[slot][unit_idx] = issue + occupancy;

            // ---------------- execute / memory ----------------
            let exec_latency = u64::from(self.latency.latency(opcode));
            let mut complete = issue + exec_latency;
            match class {
                InstrClass::Load => {
                    // An addressless load (no stream descriptor behind the
                    // static instruction) must not touch the hierarchy: a
                    // fabricated address 0 would alias line 0 / set 0 and
                    // pollute the L1D statistics of unrelated accesses.
                    if let Some(addr) = dynamic.mem_addr {
                        let lat = hierarchy.access_data(dynamic.pc, addr);
                        complete += u64::from(lat);
                    }
                    activity.loads += 1;
                }
                InstrClass::Store => {
                    // Stores retire through the store buffer: the cache
                    // access happens off the critical path but is counted.
                    // Addressless stores skip the hierarchy like loads.
                    if let Some(addr) = dynamic.mem_addr {
                        let _ = hierarchy.access_data(dynamic.pc, addr);
                    }
                    activity.stores += 1;
                }
                InstrClass::Branch => {
                    activity.branches += 1;
                    if opcode.is_conditional_branch() {
                        let taken = dynamic.taken.unwrap_or(false);
                        let correct = predictor.predict_and_update(dynamic.pc, taken);
                        if !correct {
                            let redirect =
                                complete + u64::from(cfg.branch_predictor.mispredict_penalty);
                            fetch_stall_until = fetch_stall_until.max(redirect);
                        }
                    }
                }
                InstrClass::Integer => {
                    match unit {
                        FuncUnit::Complex => activity.int_complex_ops += 1,
                        _ => activity.int_alu_ops += 1,
                    };
                }
                InstrClass::Float => {
                    activity.fp_ops += 1;
                }
            }
            activity.weighted_exec_energy += self.latency.energy_weight(opcode);

            // ---------------- writeback ----------------
            if let Some(dest) = instr.dest() {
                if !dest.is_zero() {
                    reg_ready[dest.flat_index()] = complete;
                    activity.regfile_writes += 1;
                }
            }
            completion_ring.record(complete);
            if is_mem && lsq > 0 {
                if lsq_completions.len() >= lsq {
                    lsq_completions.pop_front();
                }
                lsq_completions.push_back(complete);
            }
            max_completion = max_completion.max(complete);
            *stats.class_counts.entry(class).or_insert(0) += 1;
        }

        if n == 0 {
            return stats;
        }
        stats.instructions = n as u64;
        stats.cycles = max_completion.max(fetch_cycle + 1);
        stats.hierarchy = hierarchy.stats();
        stats.branch = predictor.stats();
        stats.activity = activity;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micrograd_codegen::{Generator, GeneratorInput, TraceExpander};
    use micrograd_isa::Opcode;

    const TRACE_LEN: usize = 40_000;

    fn trace_for(mutate: impl FnOnce(&mut GeneratorInput)) -> Trace {
        let mut input = GeneratorInput {
            loop_size: 200,
            seed: 17,
            ..GeneratorInput::default()
        };
        mutate(&mut input);
        let tc = Generator::new().generate(&input).unwrap();
        TraceExpander::new(TRACE_LEN, 17).expand(&tc)
    }

    #[test]
    fn empty_trace_produces_zero_stats() {
        let sim = Simulator::new(CoreConfig::small());
        let stats = sim.run(&Trace::new(Vec::new(), Vec::new()));
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.ipc(), 0.0);
    }

    #[test]
    fn streaming_source_matches_materialized_run() {
        // The fused single-pass path over a StreamingExpander must produce
        // bit-identical statistics to the two-pass materialized run, on
        // both cores — the windows (ROB/RS/LSQ) differ between them, which
        // exercises all three ring buffers at different depths.
        let input = GeneratorInput {
            loop_size: 200,
            seed: 17,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).unwrap();
        let expander = TraceExpander::new(TRACE_LEN, 17);
        let trace = expander.expand(&tc);
        for config in [CoreConfig::small(), CoreConfig::large()] {
            let sim = Simulator::new(config);
            let materialized = sim.run(&trace);
            let streamed = sim.run_source(&mut expander.stream(&tc));
            assert_eq!(materialized, streamed);
        }
    }

    #[test]
    fn addressless_memory_ops_do_not_touch_the_hierarchy() {
        // A memory op whose dynamic instance carries no effective address
        // must be counted (it occupies the LSQ and a memory unit) without
        // performing a hierarchy access — a fabricated address 0 would
        // alias line 0 / set 0 and pollute the L1D statistics.
        use micrograd_codegen::DynamicInstr;
        use micrograd_isa::{MemAccess, Reg};

        let mem = MemAccess {
            stream: 0,
            base: 0x2000_0000,
            stride: 64,
            footprint: 4096,
            offset: 0,
        };
        let mut load = micrograd_isa::Instruction::load(Opcode::Ld, Reg::x(6), Reg::x(10), mem);
        load.set_address(0x40_0000);
        let mut store = micrograd_isa::Instruction::store(Opcode::Sd, Reg::x(6), Reg::x(10), mem);
        store.set_address(0x40_0004);
        let statics = vec![load, store];
        let dynamic = |static_index: u32, mem_addr: Option<u64>| DynamicInstr {
            static_index,
            pc: 0x40_0000 + u64::from(static_index) * 4,
            mem_addr,
            taken: None,
        };

        // One addressed load + one addressed store, then a run of
        // addressless ones.
        let dynamics = vec![
            dynamic(0, Some(0x2000_0000)),
            dynamic(1, Some(0x2000_0040)),
            dynamic(0, None),
            dynamic(1, None),
            dynamic(0, None),
        ];
        let stats = Simulator::new(CoreConfig::small()).run(&Trace::new(statics, dynamics));

        assert_eq!(stats.instructions, 5);
        assert_eq!(stats.activity.loads, 3);
        assert_eq!(stats.activity.stores, 2);
        assert_eq!(stats.activity.lsq_ops, 5);
        // Only the two addressed ops reached the L1D; the addressless ones
        // must not appear as (fake) address-0 accesses.
        assert_eq!(stats.hierarchy.l1d.accesses, 2);
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        let trace = trace_for(|_| {});
        for config in [CoreConfig::small(), CoreConfig::large()] {
            let width = config.frontend_width as f64;
            let stats = Simulator::new(config).run(&trace);
            assert_eq!(stats.instructions, TRACE_LEN as u64);
            assert!(stats.ipc() > 0.05, "ipc {}", stats.ipc());
            assert!(
                stats.ipc() <= width,
                "ipc {} exceeds width {width}",
                stats.ipc()
            );
        }
    }

    #[test]
    fn large_core_is_at_least_as_fast_as_small_core() {
        let trace = trace_for(|_| {});
        let small = Simulator::new(CoreConfig::small()).run(&trace);
        let large = Simulator::new(CoreConfig::large()).run(&trace);
        assert!(
            large.ipc() >= small.ipc() * 0.95,
            "large {} vs small {}",
            large.ipc(),
            small.ipc()
        );
    }

    #[test]
    fn dependency_distance_increases_ipc() {
        let serial = trace_for(|input| {
            input.reg_dependency_distance = 1;
        });
        let parallel = trace_for(|input| {
            input.reg_dependency_distance = 10;
        });
        let sim = Simulator::new(CoreConfig::large());
        let ipc_serial = sim.run(&serial).ipc();
        let ipc_parallel = sim.run(&parallel).ipc();
        assert!(
            ipc_parallel > ipc_serial * 1.2,
            "expected ILP to raise IPC: serial {ipc_serial}, parallel {ipc_parallel}"
        );
    }

    #[test]
    fn larger_footprint_lowers_data_hit_rate_and_ipc() {
        let small_fp = trace_for(|input| {
            input.mem_footprint_kb = 8;
        });
        let huge_fp = trace_for(|input| {
            input.mem_footprint_kb = 8 * 1024; // 8 MiB, far beyond the L2
            input.mem_stride = 64;
        });
        let sim = Simulator::new(CoreConfig::small());
        let near = sim.run(&small_fp);
        let far = sim.run(&huge_fp);
        assert!(
            far.l1d_hit_rate() < near.l1d_hit_rate() - 0.1,
            "hit rates: near {} far {}",
            near.l1d_hit_rate(),
            far.l1d_hit_rate()
        );
        assert!(far.ipc() < near.ipc());
    }

    #[test]
    fn branch_randomness_raises_mispredict_rate_and_lowers_ipc() {
        let predictable = trace_for(|input| {
            input.branch_randomness = 0.0;
        });
        let random = trace_for(|input| {
            input.branch_randomness = 1.0;
        });
        let sim = Simulator::new(CoreConfig::large());
        let p = sim.run(&predictable);
        let r = sim.run(&random);
        assert!(
            p.branch_mispredict_rate() < 0.05,
            "{}",
            p.branch_mispredict_rate()
        );
        assert!(
            r.branch_mispredict_rate() > 0.2,
            "{}",
            r.branch_mispredict_rate()
        );
        assert!(r.ipc() < p.ipc());
    }

    #[test]
    fn class_fractions_match_the_trace() {
        let trace = trace_for(|_| {});
        let stats = Simulator::new(CoreConfig::small()).run(&trace);
        let expected = trace.class_distribution();
        for (class, frac) in expected {
            assert!(
                (stats.class_fraction(class) - frac).abs() < 1e-9,
                "{class:?} fraction mismatch"
            );
        }
    }

    #[test]
    fn float_heavy_workload_stresses_fp_units() {
        let fp_heavy = trace_for(|input| {
            for w in input.instr_weights.values_mut() {
                *w = 0.0;
            }
            input.set_weight(Opcode::FmulD, 8.0);
            input.set_weight(Opcode::Add, 2.0);
        });
        let int_heavy = trace_for(|input| {
            for w in input.instr_weights.values_mut() {
                *w = 0.0;
            }
            input.set_weight(Opcode::Add, 10.0);
        });
        let sim = Simulator::new(CoreConfig::small());
        let fp = sim.run(&fp_heavy);
        let int = sim.run(&int_heavy);
        assert!(fp.activity.fp_ops > int.activity.fp_ops);
        assert!(
            fp.ipc() < int.ipc(),
            "fp-heavy {} should be slower than int-heavy {} on 2 FP units",
            fp.ipc(),
            int.ipc()
        );
        assert!(fp.activity.weighted_exec_energy > int.activity.weighted_exec_energy);
    }

    #[test]
    fn activity_counts_are_consistent_with_instruction_counts() {
        let trace = trace_for(|_| {});
        let stats = Simulator::new(CoreConfig::large()).run(&trace);
        let a = &stats.activity;
        assert_eq!(a.fetched, stats.instructions);
        assert_eq!(a.rob_writes, stats.instructions);
        assert_eq!(
            a.loads + a.stores,
            stats
                .class_counts
                .get(&InstrClass::Load)
                .copied()
                .unwrap_or(0)
                + stats
                    .class_counts
                    .get(&InstrClass::Store)
                    .copied()
                    .unwrap_or(0)
        );
        assert_eq!(a.lsq_ops, a.loads + a.stores);
        assert!(a.regfile_reads > 0);
        assert!(a.regfile_writes > 0);
        assert!(a.weighted_exec_energy > 0.0);
    }

    #[test]
    fn narrow_frontend_caps_throughput() {
        // A fully parallel integer workload should be limited by the
        // front-end width on the small core (3) vs the large core (8).
        let trace = trace_for(|input| {
            for w in input.instr_weights.values_mut() {
                *w = 0.0;
            }
            input.set_weight(Opcode::Add, 1.0);
            input.reg_dependency_distance = 10;
            input.mem_footprint_kb = 4;
        });
        let small = Simulator::new(CoreConfig::small()).run(&trace);
        let large = Simulator::new(CoreConfig::large()).run(&trace);
        assert!(small.ipc() <= 3.0 + 1e-9);
        assert!(large.ipc() > small.ipc());
    }
}
