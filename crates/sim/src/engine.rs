//! The cycle-approximate out-of-order core model.

use crate::cancel::{CancelToken, Cancelled};
use crate::config::CoreConfig;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::{ActivityCounts, SimStats};
use crate::GsharePredictor;
use micrograd_codegen::{Trace, TraceSource};
use micrograd_isa::{FuncUnit, InstrClass, Instruction, LatencyModel, Opcode, Reg};
use micrograd_obs::{ProfileRecorder, ProfileSample};
use std::collections::VecDeque;

/// A fixed-capacity ring recording one `u64` per in-flight instruction of a
/// window (ROB, reservation stations).
///
/// The simulator only ever consults the entry exactly `capacity`
/// instructions back — "the cycle the instruction leaving the window frees
/// its slot" — so a flat `capacity`-sized buffer with a wrapping write
/// pointer is sufficient: right before instruction `i` overwrites the slot
/// under the pointer, that slot still holds instruction `i - capacity`.
/// Exactly one [`record`](WindowRing::record) per instruction keeps the
/// pointer in lock-step with the instruction stream (no division on the hot
/// path).
#[derive(Debug, Clone)]
struct WindowRing {
    slots: Vec<u64>,
    pos: usize,
    filled: bool,
}

impl WindowRing {
    fn new(capacity: usize) -> Self {
        WindowRing {
            slots: vec![0; capacity],
            pos: 0,
            filled: false,
        }
    }

    /// The recorded value of the instruction `capacity` back, once the
    /// window has filled.
    fn evicted(&self) -> Option<u64> {
        if self.filled {
            Some(self.slots[self.pos])
        } else {
            None
        }
    }

    fn record(&mut self, value: u64) {
        if self.slots.is_empty() {
            return;
        }
        self.slots[self.pos] = value;
        self.pos += 1;
        if self.pos == self.slots.len() {
            self.pos = 0;
            self.filled = true;
        }
    }

    /// Rewinds the ring to its freshly constructed state without touching
    /// the allocation.  Stale slot contents are never observable: `evicted`
    /// only reads once `filled` is set again, by which point every slot has
    /// been re-recorded in the current run.
    fn reset(&mut self) {
        self.pos = 0;
        self.filled = false;
    }

    /// Window entries still in flight at `cycle`: recorded completion
    /// cycles strictly in the future.  Allocation-free scan of the (at
    /// most window-sized) valid slots; used only by the sampled profiler.
    #[allow(clippy::cast_possible_truncation)]
    fn occupancy(&self, cycle: u64) -> u32 {
        let valid = if self.filled {
            self.slots.len()
        } else {
            self.pos
        };
        self.slots[..valid].iter().filter(|&&c| c > cycle).count() as u32
    }
}

/// One static instruction, decoded once per run into a flat, `Copy`
/// scheduling record.
///
/// The per-instruction loop used to chase `&Instruction` (with its heap
/// `Vec<Reg>` source list) and re-derive opcode class, functional unit,
/// latency and energy weight for every *dynamic* instance.  Decoding each
/// static instruction once hoists all of that out of the hot loop: the
/// dynamic path reads one cache-line-friendly record with pre-filtered
/// (non-zero) flat register indices and precomputed latencies.
#[derive(Debug, Clone, Copy)]
struct DecodedInstr {
    class: InstrClass,
    /// Index into the per-class `unit_free` table.
    unit_slot: u8,
    is_conditional_branch: bool,
    /// Execution latency in cycles.
    latency: u64,
    /// Cycles the functional unit stays busy (latency for unpipelined ops).
    occupancy: u64,
    /// Per-execution energy weight.
    energy: f64,
    /// Flat destination register index + 1; 0 when there is no (non-zero)
    /// destination.
    dest_plus_one: u16,
    /// Number of valid entries in `sources`.
    num_sources: u8,
    /// Flat indices of the non-zero source registers.
    sources: [u16; MAX_SOURCES],
}

const MAX_SOURCES: usize = 4;

fn unit_slot(u: FuncUnit) -> usize {
    match u {
        FuncUnit::Alu => 0,
        FuncUnit::Complex => 1,
        FuncUnit::Fp => 2,
        FuncUnit::Mem => 3,
    }
}

fn class_slot(class: InstrClass) -> usize {
    match class {
        InstrClass::Integer => 0,
        InstrClass::Float => 1,
        InstrClass::Branch => 2,
        InstrClass::Load => 3,
        InstrClass::Store => 4,
    }
}

const CLASS_ORDER: [InstrClass; 5] = [
    InstrClass::Integer,
    InstrClass::Float,
    InstrClass::Branch,
    InstrClass::Load,
    InstrClass::Store,
];

fn decode(instr: &Instruction, latency: &LatencyModel) -> DecodedInstr {
    let opcode = instr.opcode();
    let exec_latency = u64::from(latency.latency(opcode));
    // Divides and square roots occupy their unit unpipelined.
    let occupancy = match opcode {
        Opcode::Div | Opcode::Rem | Opcode::FdivD | Opcode::FsqrtD => exec_latency,
        _ => 1,
    };
    let mut sources = [0u16; MAX_SOURCES];
    let mut num_sources = 0u8;
    for src in instr.sources() {
        if src.is_zero() {
            continue;
        }
        debug_assert!((num_sources as usize) < MAX_SOURCES, "source list overflow");
        sources[num_sources as usize] = src.flat_index() as u16;
        num_sources += 1;
    }
    let dest_plus_one = instr
        .dest()
        .filter(|d| !d.is_zero())
        .map_or(0, |d| d.flat_index() as u16 + 1);
    DecodedInstr {
        class: opcode.class(),
        unit_slot: unit_slot(latency.unit(opcode)) as u8,
        is_conditional_branch: opcode.is_conditional_branch(),
        latency: exec_latency,
        occupancy,
        energy: latency.energy_weight(opcode),
        dest_plus_one,
        num_sources,
        sources,
    }
}

/// A scoreboard-style out-of-order core simulator.
///
/// The model processes the dynamic trace in program order and computes, for
/// every instruction, the cycle at which it fetches, dispatches, issues and
/// completes, subject to the structural and data constraints of the
/// configured core:
///
/// * **front-end width** — at most `frontend_width` instructions enter the
///   pipeline per cycle, and instruction-cache misses stall the fetch
///   stream;
/// * **branch prediction** — mispredicted conditional branches redirect the
///   front end after the branch resolves plus the redirect penalty;
/// * **windows** — dispatch is limited by ROB, reservation-station and (for
///   memory operations) LSQ occupancy;
/// * **data dependences** — an instruction issues only after all of its
///   source registers' producers have completed, which is how the register
///   dependency distance knob shapes ILP;
/// * **functional units** — each instruction occupies one unit of its class
///   (unpipelined for divides), bounding per-class throughput;
/// * **memory hierarchy** — loads pay the L1D/L2/DRAM latency of their
///   address; stores retire through a store buffer.
///
/// The result is not a cycle-accurate Gem5 replacement, but it reproduces
/// the first-order sensitivities the MicroGrad tuning loop depends on, at a
/// cost of well under a microsecond per simulated instruction.
///
/// # Reuse and allocation discipline
///
/// The simulator owns every piece of mutable run state — memory hierarchy,
/// branch predictor, window rings, register scoreboard, decoded-instruction
/// table — and [`run_source`](Simulator::run_source) *resets* rather than
/// reallocates it, so `run`/`run_source` take `&mut self` and back-to-back
/// runs are bit-identical to runs on freshly constructed simulators (tested)
/// while touching the allocator only to (re)grow buffers.  The
/// per-instruction path performs **zero heap allocations**: the total
/// allocation count of a run is independent of the trace length (see
/// `docs/performance.md` and the `alloc_discipline` test).  Batch workers in
/// `micrograd-core` exploit this by reusing one simulator per worker thread
/// across all evaluations of a batch.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: CoreConfig,
    latency: LatencyModel,
    hierarchy: MemoryHierarchy,
    predictor: GsharePredictor,
    // Reusable run state (reset per run, reallocating nothing).
    completion_ring: WindowRing,
    issue_ring: WindowRing,
    lsq_completions: VecDeque<u64>,
    reg_ready: Vec<u64>,
    unit_free: [Vec<u64>; 4],
    decoded: Vec<DecodedInstr>,
    profiler: ProfileRecorder,
}

impl Simulator {
    /// Creates a simulator for a core configuration.
    #[must_use]
    pub fn new(config: CoreConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(&config);
        let predictor = GsharePredictor::new(config.branch_predictor);
        let lsq = config.lsq_entries as usize;
        Simulator {
            completion_ring: WindowRing::new(config.rob_entries as usize),
            issue_ring: WindowRing::new(config.rs_entries as usize),
            lsq_completions: VecDeque::with_capacity(lsq.min(4096)),
            reg_ready: vec![0; Reg::FLAT_COUNT],
            unit_free: [
                vec![0; config.units_for(FuncUnit::Alu).max(1) as usize],
                vec![0; config.units_for(FuncUnit::Complex).max(1) as usize],
                vec![0; config.units_for(FuncUnit::Fp).max(1) as usize],
                vec![0; config.units_for(FuncUnit::Mem).max(1) as usize],
            ],
            decoded: Vec::new(),
            profiler: ProfileRecorder::off(),
            hierarchy,
            predictor,
            latency: LatencyModel::default(),
            config,
        }
    }

    /// Enables sampled profiling: every `interval` retired instructions the
    /// run snapshots its cumulative counters (cycles, L1D accesses/hits,
    /// branches/mispredicts, ROB and RS occupancy) into
    /// [`SimStats::profile`].  `interval == 0` disables profiling (the
    /// default), which costs nothing — the recorder is polled from the
    /// existing cancellation-check block, so a disabled recorder adds one
    /// predictable branch every [`CANCEL_CHECK_INTERVAL`] instructions.
    ///
    /// Samples land at poll boundaries, so the effective resolution is
    /// `interval` rounded up to the next multiple of
    /// [`CANCEL_CHECK_INTERVAL`].  Samples are keyed by retired-instruction
    /// count — never by time — so profiled runs stay bit-reproducible.
    ///
    /// [`CANCEL_CHECK_INTERVAL`]: Simulator::CANCEL_CHECK_INTERVAL
    pub fn set_profiling(&mut self, interval: u64) {
        self.profiler = if interval == 0 {
            ProfileRecorder::off()
        } else {
            ProfileRecorder::every(interval)
        };
    }

    /// Retired-instruction cadence of cancellation polls in
    /// [`run_source_cancellable`](Simulator::run_source_cancellable).
    ///
    /// Must be a power of two: the hot loop tests `n & (INTERVAL - 1) == 0`
    /// instead of a division.  4096 instructions bound the cancellation
    /// latency to microseconds while keeping the poll cost (one relaxed
    /// atomic load) far below measurement noise.
    pub const CANCEL_CHECK_INTERVAL: usize = 4096;

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Rewinds all run state to the freshly constructed equivalent without
    /// releasing any allocation.
    fn reset_run_state(&mut self) {
        self.hierarchy.reset();
        self.predictor.reset();
        self.completion_ring.reset();
        self.issue_ring.reset();
        self.lsq_completions.clear();
        self.reg_ready.fill(0);
        for units in &mut self.unit_free {
            units.fill(0);
        }
        self.profiler.reset();
    }

    /// Runs a materialized dynamic trace to completion and returns the
    /// statistics.
    ///
    /// Thin adapter over [`run_source`](Simulator::run_source) via
    /// [`Trace::source`]; the two paths are bit-identical.
    #[must_use]
    pub fn run(&mut self, trace: &Trace) -> SimStats {
        self.run_source(&mut trace.source())
    }

    /// Runs a streaming [`TraceSource`] to exhaustion and returns the
    /// statistics.
    ///
    /// This is the fused single-pass path: the source produces each dynamic
    /// instruction on demand and the simulator retires it immediately, so
    /// nothing is ever materialized.  Per-instruction bookkeeping is held in
    /// ring buffers bounded by the ROB, reservation-station and LSQ depths
    /// of the configured core — peak memory is O(window sizes), independent
    /// of trace length — and the loop performs no heap allocation (the
    /// static table is decoded once per run into a reused flat record
    /// table).
    #[must_use]
    pub fn run_source<S: TraceSource + ?Sized>(&mut self, source: &mut S) -> SimStats {
        match self.run_source_cancellable(source, &CancelToken::never()) {
            Ok(stats) => stats,
            Err(Cancelled) => unreachable!("a never-cancelled token cannot cancel a run"),
        }
    }

    /// [`run_source`](Simulator::run_source) with cooperative cancellation.
    ///
    /// The token is polled every [`CANCEL_CHECK_INTERVAL`] retired
    /// instructions (one relaxed atomic load per poll, so the overhead on
    /// the hot loop is unmeasurable — see `docs/performance.md`).  On
    /// cancellation the partial run is abandoned and [`Cancelled`] is
    /// returned; the simulator remains valid and reusable — the next run
    /// resets all state as usual.
    ///
    /// [`CANCEL_CHECK_INTERVAL`]: Simulator::CANCEL_CHECK_INTERVAL
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when `cancel` is observed cancelled (explicitly or by
    /// deadline) at a poll boundary.
    pub fn run_source_cancellable<S: TraceSource + ?Sized>(
        &mut self,
        source: &mut S,
        cancel: &CancelToken,
    ) -> Result<SimStats, Cancelled> {
        cancel.check()?;
        let mut stats = SimStats {
            frequency_hz: self.config.frequency_hz,
            ..SimStats::default()
        };

        self.reset_run_state();
        let mut activity = ActivityCounts::default();
        let mut class_counts = [0u64; CLASS_ORDER.len()];

        // The static table is stable for the source's lifetime (trait
        // contract), so decode it once into a flat `Copy` record table: a
        // per-instruction virtual `statics()` call — let alone a pointer
        // chase through `Vec<Reg>` source lists — would sit on the hottest
        // loop in the framework.
        self.decoded.clear();
        for instr in source.statics() {
            let record = decode(instr, &self.latency);
            self.decoded.push(record);
        }

        let cfg = &self.config;
        let lsq = cfg.lsq_entries as usize;
        let frontend_width = cfg.frontend_width;
        let frontend_depth = u64::from(cfg.frontend_depth);
        let l1i_hit_latency = cfg.l1i.hit_latency;
        let mispredict_penalty = u64::from(cfg.branch_predictor.mispredict_penalty);
        let line_bytes = cfg.l1i.line_bytes.max(1);

        let mut fetch_cycle: u64 = 0;
        let mut fetched_this_cycle: u32 = 0;
        let mut fetch_stall_until: u64 = 0;
        let mut last_fetch_line: u64 = u64::MAX;
        let mut max_completion: u64 = 0;
        let mut n: usize = 0;

        // lint:hot-loop-start
        while let Some(dynamic) = source.next_dynamic() {
            n += 1;
            if n & (Self::CANCEL_CHECK_INTERVAL - 1) == 0 {
                cancel.check()?;
                if self.profiler.due(n as u64) {
                    let hier = self.hierarchy.stats();
                    let branch = self.predictor.stats();
                    self.profiler.push(ProfileSample {
                        retired: n as u64,
                        cycles: max_completion.max(fetch_cycle),
                        l1d_accesses: hier.l1d.accesses,
                        l1d_hits: hier.l1d.hits,
                        branches: branch.lookups,
                        branch_mispredicts: branch.mispredictions,
                        rob_occupancy: self.completion_ring.occupancy(fetch_cycle),
                        rs_occupancy: self.issue_ring.occupancy(fetch_cycle),
                    });
                }
            }
            let instr = self.decoded[dynamic.static_index as usize];

            // ---------------- fetch ----------------
            if fetched_this_cycle >= frontend_width {
                fetch_cycle += 1;
                fetched_this_cycle = 0;
            }
            if fetch_cycle < fetch_stall_until {
                fetch_cycle = fetch_stall_until;
                fetched_this_cycle = 0;
            }
            // Instruction cache: one access per line transition.
            let line = dynamic.pc / line_bytes;
            if line != last_fetch_line {
                let lat = self.hierarchy.access_instruction(dynamic.pc);
                let extra = lat.saturating_sub(l1i_hit_latency);
                if extra > 0 {
                    fetch_cycle += u64::from(extra);
                    fetched_this_cycle = 0;
                }
                last_fetch_line = line;
            }
            let this_fetch = fetch_cycle;
            fetched_this_cycle += 1;
            activity.fetched += 1;

            // ---------------- dispatch (window constraints) ----------------
            let mut dispatch = this_fetch + frontend_depth;
            if let Some(rob_free) = self.completion_ring.evicted() {
                dispatch = dispatch.max(rob_free);
            }
            if let Some(rs_free) = self.issue_ring.evicted() {
                dispatch = dispatch.max(rs_free);
            }
            let is_mem = instr.class.is_memory();
            if is_mem && lsq > 0 && self.lsq_completions.len() >= lsq {
                // The oldest tracked memory op is the one whose retirement
                // frees the LSQ slot this op needs.
                dispatch = dispatch.max(self.lsq_completions[self.lsq_completions.len() - lsq]);
            }
            activity.rob_writes += 1;
            if is_mem {
                activity.lsq_ops += 1;
            }

            // ---------------- issue (data deps + functional units) --------
            let mut ready = dispatch;
            for &src in &instr.sources[..instr.num_sources as usize] {
                ready = ready.max(self.reg_ready[src as usize]);
            }
            activity.regfile_reads += u64::from(instr.num_sources);
            let units = &mut self.unit_free[instr.unit_slot as usize];
            let mut unit_idx = 0;
            let mut unit_avail = units[0];
            for (idx, &avail) in units.iter().enumerate().skip(1) {
                if avail < unit_avail {
                    unit_avail = avail;
                    unit_idx = idx;
                }
            }
            let issue = ready.max(unit_avail);
            self.issue_ring.record(issue);
            units[unit_idx] = issue + instr.occupancy;

            // ---------------- execute / memory ----------------
            let mut complete = issue + instr.latency;
            match instr.class {
                InstrClass::Load => {
                    // An addressless load (no stream descriptor behind the
                    // static instruction) must not touch the hierarchy: a
                    // fabricated address 0 would alias line 0 / set 0 and
                    // pollute the L1D statistics of unrelated accesses.
                    if let Some(addr) = dynamic.mem_addr {
                        let lat = self.hierarchy.access_data(dynamic.pc, addr);
                        complete += u64::from(lat);
                    }
                    activity.loads += 1;
                }
                InstrClass::Store => {
                    // Stores retire through the store buffer: the cache
                    // access happens off the critical path but is counted.
                    // Addressless stores skip the hierarchy like loads.
                    if let Some(addr) = dynamic.mem_addr {
                        let _ = self.hierarchy.access_data(dynamic.pc, addr);
                    }
                    activity.stores += 1;
                }
                InstrClass::Branch => {
                    activity.branches += 1;
                    if instr.is_conditional_branch {
                        let taken = dynamic.taken.unwrap_or(false);
                        let correct = self.predictor.predict_and_update(dynamic.pc, taken);
                        if !correct {
                            let redirect = complete + mispredict_penalty;
                            fetch_stall_until = fetch_stall_until.max(redirect);
                        }
                    }
                }
                InstrClass::Integer => {
                    if instr.unit_slot as usize == unit_slot(FuncUnit::Complex) {
                        activity.int_complex_ops += 1;
                    } else {
                        activity.int_alu_ops += 1;
                    }
                }
                InstrClass::Float => {
                    activity.fp_ops += 1;
                }
            }
            activity.weighted_exec_energy += instr.energy;

            // ---------------- writeback ----------------
            if instr.dest_plus_one != 0 {
                self.reg_ready[instr.dest_plus_one as usize - 1] = complete;
                activity.regfile_writes += 1;
            }
            self.completion_ring.record(complete);
            if is_mem && lsq > 0 {
                if self.lsq_completions.len() >= lsq {
                    self.lsq_completions.pop_front();
                }
                self.lsq_completions.push_back(complete);
            }
            max_completion = max_completion.max(complete);
            class_counts[class_slot(instr.class)] += 1;
        }
        // lint:hot-loop-end

        if n == 0 {
            return Ok(stats);
        }
        stats.instructions = n as u64;
        stats.cycles = max_completion.max(fetch_cycle + 1);
        stats.hierarchy = self.hierarchy.stats();
        stats.branch = self.predictor.stats();
        stats.activity = activity;
        stats.profile = self.profiler.finish();
        for (class, &count) in CLASS_ORDER.iter().zip(class_counts.iter()) {
            if count > 0 {
                stats.class_counts.insert(*class, count);
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micrograd_codegen::{Generator, GeneratorInput, TraceExpander};
    use micrograd_isa::Opcode;

    const TRACE_LEN: usize = 40_000;

    fn trace_for(mutate: impl FnOnce(&mut GeneratorInput)) -> Trace {
        let mut input = GeneratorInput {
            loop_size: 200,
            seed: 17,
            ..GeneratorInput::default()
        };
        mutate(&mut input);
        let tc = Generator::new().generate(&input).unwrap();
        TraceExpander::new(TRACE_LEN, 17).expand(&tc)
    }

    #[test]
    fn empty_trace_produces_zero_stats() {
        let mut sim = Simulator::new(CoreConfig::small());
        let stats = sim.run(&Trace::new(Vec::new(), Vec::new()));
        assert_eq!(stats.instructions, 0);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.ipc(), 0.0);
    }

    #[test]
    fn streaming_source_matches_materialized_run() {
        // The fused single-pass path over a StreamingExpander must produce
        // bit-identical statistics to the two-pass materialized run, on
        // both cores — the windows (ROB/RS/LSQ) differ between them, which
        // exercises all three ring buffers at different depths.
        let input = GeneratorInput {
            loop_size: 200,
            seed: 17,
            ..GeneratorInput::default()
        };
        let tc = Generator::new().generate(&input).unwrap();
        let expander = TraceExpander::new(TRACE_LEN, 17);
        let trace = expander.expand(&tc);
        for config in [CoreConfig::small(), CoreConfig::large()] {
            let mut sim = Simulator::new(config);
            let materialized = sim.run(&trace);
            let streamed = sim.run_source(&mut expander.stream(&tc));
            assert_eq!(materialized, streamed);
        }
    }

    #[test]
    fn cancellable_run_with_never_token_matches_plain_run() {
        let trace = trace_for(|_| {});
        let mut sim = Simulator::new(CoreConfig::small());
        let plain = sim.run(&trace);
        let cancellable = sim
            .run_source_cancellable(&mut trace.source(), &CancelToken::never())
            .unwrap();
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn pre_cancelled_token_aborts_before_the_loop() {
        let trace = trace_for(|_| {});
        let token = CancelToken::never();
        token.cancel();
        let mut sim = Simulator::new(CoreConfig::small());
        assert_eq!(
            sim.run_source_cancellable(&mut trace.source(), &token),
            Err(Cancelled)
        );
    }

    #[test]
    fn mid_run_cancellation_aborts_and_leaves_the_simulator_reusable() {
        /// Cancels the shared token after yielding `after` instructions, so
        /// the in-loop poll (every `CANCEL_CHECK_INTERVAL` instructions) is
        /// what aborts the run — not the entry check.
        struct CancelAfter<'a, S> {
            inner: S,
            token: &'a CancelToken,
            after: usize,
            seen: usize,
        }
        impl<S: TraceSource> TraceSource for CancelAfter<'_, S> {
            fn statics(&self) -> &[Instruction] {
                self.inner.statics()
            }
            fn next_dynamic(&mut self) -> Option<micrograd_codegen::DynamicInstr> {
                self.seen += 1;
                if self.seen == self.after {
                    self.token.cancel();
                }
                self.inner.next_dynamic()
            }
            fn remaining(&self) -> Option<usize> {
                self.inner.remaining()
            }
        }

        let trace = trace_for(|_| {});
        assert!(trace.dynamics().len() > Simulator::CANCEL_CHECK_INTERVAL);
        let token = CancelToken::never();
        let mut sim = Simulator::new(CoreConfig::small());
        let expected = sim.run(&trace);
        let result = sim.run_source_cancellable(
            &mut CancelAfter {
                inner: trace.source(),
                token: &token,
                after: 10,
                seen: 0,
            },
            &token,
        );
        assert_eq!(result, Err(Cancelled));
        // The abandoned run must not poison the next one.
        assert_eq!(sim.run(&trace), expected);
    }

    #[test]
    fn profiled_run_matches_unprofiled_stats_and_is_deterministic() {
        let trace = trace_for(|_| {});
        let mut plain_sim = Simulator::new(CoreConfig::small());
        let plain = plain_sim.run(&trace);
        assert_eq!(plain.profile, None, "profiling must be off by default");

        let mut sim = Simulator::new(CoreConfig::small());
        sim.set_profiling(8_192);
        let first = sim.run(&trace);
        let second = sim.run(&trace);
        assert_eq!(first, second, "profiled runs must be deterministic");

        let profile = first.profile.clone().expect("profile enabled");
        assert!(!profile.samples.is_empty());
        // Samples land at cancellation-poll boundaries, keyed by retired
        // count, strictly increasing and cumulative.
        for pair in profile.samples.windows(2) {
            assert!(pair[0].retired < pair[1].retired);
            assert!(pair[0].cycles <= pair[1].cycles);
            assert!(pair[0].l1d_accesses <= pair[1].l1d_accesses);
            assert!(pair[0].branches <= pair[1].branches);
        }
        let last = profile.samples.last().unwrap();
        assert_eq!(last.retired % Simulator::CANCEL_CHECK_INTERVAL as u64, 0);
        assert!(last.ipc() > 0.0);
        assert!(last.l1d_hit_rate() > 0.0);

        // Everything except the profile matches the unprofiled run.
        let mut scrubbed = first.clone();
        scrubbed.profile = None;
        assert_eq!(scrubbed, plain);

        // Turning profiling back off restores byte-identical output.
        sim.set_profiling(0);
        assert_eq!(sim.run(&trace), plain);
    }

    #[test]
    fn reused_simulator_matches_a_fresh_one() {
        // Run state is reset, not reallocated, between runs: a simulator
        // that has already executed an unrelated workload must produce
        // bit-identical statistics to a freshly constructed one.
        let polluter = trace_for(|input| {
            input.mem_footprint_kb = 4096;
            input.branch_randomness = 1.0;
        });
        let trace = trace_for(|_| {});
        for config in [CoreConfig::small(), CoreConfig::large()] {
            let mut fresh = Simulator::new(config.clone());
            let expected = fresh.run(&trace);
            let mut reused = Simulator::new(config);
            let _ = reused.run(&polluter);
            assert_eq!(reused.run(&trace), expected);
            assert_eq!(reused.run(&trace), expected, "second reuse diverged");
        }
    }

    #[test]
    fn addressless_memory_ops_do_not_touch_the_hierarchy() {
        // A memory op whose dynamic instance carries no effective address
        // must be counted (it occupies the LSQ and a memory unit) without
        // performing a hierarchy access — a fabricated address 0 would
        // alias line 0 / set 0 and pollute the L1D statistics.
        use micrograd_codegen::DynamicInstr;
        use micrograd_isa::{MemAccess, Reg};

        let mem = MemAccess {
            stream: 0,
            base: 0x2000_0000,
            stride: 64,
            footprint: 4096,
            offset: 0,
        };
        let mut load = micrograd_isa::Instruction::load(Opcode::Ld, Reg::x(6), Reg::x(10), mem);
        load.set_address(0x40_0000);
        let mut store = micrograd_isa::Instruction::store(Opcode::Sd, Reg::x(6), Reg::x(10), mem);
        store.set_address(0x40_0004);
        let statics = vec![load, store];
        let dynamic = |static_index: u32, mem_addr: Option<u64>| DynamicInstr {
            static_index,
            pc: 0x40_0000 + u64::from(static_index) * 4,
            mem_addr,
            taken: None,
        };

        // One addressed load + one addressed store, then a run of
        // addressless ones.
        let dynamics = vec![
            dynamic(0, Some(0x2000_0000)),
            dynamic(1, Some(0x2000_0040)),
            dynamic(0, None),
            dynamic(1, None),
            dynamic(0, None),
        ];
        let stats = Simulator::new(CoreConfig::small()).run(&Trace::new(statics, dynamics));

        assert_eq!(stats.instructions, 5);
        assert_eq!(stats.activity.loads, 3);
        assert_eq!(stats.activity.stores, 2);
        assert_eq!(stats.activity.lsq_ops, 5);
        // Only the two addressed ops reached the L1D; the addressless ones
        // must not appear as (fake) address-0 accesses.
        assert_eq!(stats.hierarchy.l1d.accesses, 2);
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        let trace = trace_for(|_| {});
        for config in [CoreConfig::small(), CoreConfig::large()] {
            let width = config.frontend_width as f64;
            let stats = Simulator::new(config).run(&trace);
            assert_eq!(stats.instructions, TRACE_LEN as u64);
            assert!(stats.ipc() > 0.05, "ipc {}", stats.ipc());
            assert!(
                stats.ipc() <= width,
                "ipc {} exceeds width {width}",
                stats.ipc()
            );
        }
    }

    #[test]
    fn large_core_is_at_least_as_fast_as_small_core() {
        let trace = trace_for(|_| {});
        let small = Simulator::new(CoreConfig::small()).run(&trace);
        let large = Simulator::new(CoreConfig::large()).run(&trace);
        assert!(
            large.ipc() >= small.ipc() * 0.95,
            "large {} vs small {}",
            large.ipc(),
            small.ipc()
        );
    }

    #[test]
    fn dependency_distance_increases_ipc() {
        let serial = trace_for(|input| {
            input.reg_dependency_distance = 1;
        });
        let parallel = trace_for(|input| {
            input.reg_dependency_distance = 10;
        });
        let mut sim = Simulator::new(CoreConfig::large());
        let ipc_serial = sim.run(&serial).ipc();
        let ipc_parallel = sim.run(&parallel).ipc();
        assert!(
            ipc_parallel > ipc_serial * 1.2,
            "expected ILP to raise IPC: serial {ipc_serial}, parallel {ipc_parallel}"
        );
    }

    #[test]
    fn larger_footprint_lowers_data_hit_rate_and_ipc() {
        let small_fp = trace_for(|input| {
            input.mem_footprint_kb = 8;
        });
        let huge_fp = trace_for(|input| {
            input.mem_footprint_kb = 8 * 1024; // 8 MiB, far beyond the L2
            input.mem_stride = 64;
        });
        let mut sim = Simulator::new(CoreConfig::small());
        let near = sim.run(&small_fp);
        let far = sim.run(&huge_fp);
        assert!(
            far.l1d_hit_rate() < near.l1d_hit_rate() - 0.1,
            "hit rates: near {} far {}",
            near.l1d_hit_rate(),
            far.l1d_hit_rate()
        );
        assert!(far.ipc() < near.ipc());
    }

    #[test]
    fn branch_randomness_raises_mispredict_rate_and_lowers_ipc() {
        let predictable = trace_for(|input| {
            input.branch_randomness = 0.0;
        });
        let random = trace_for(|input| {
            input.branch_randomness = 1.0;
        });
        let mut sim = Simulator::new(CoreConfig::large());
        let p = sim.run(&predictable);
        let r = sim.run(&random);
        assert!(
            p.branch_mispredict_rate() < 0.05,
            "{}",
            p.branch_mispredict_rate()
        );
        assert!(
            r.branch_mispredict_rate() > 0.2,
            "{}",
            r.branch_mispredict_rate()
        );
        assert!(r.ipc() < p.ipc());
    }

    #[test]
    fn class_fractions_match_the_trace() {
        let trace = trace_for(|_| {});
        let stats = Simulator::new(CoreConfig::small()).run(&trace);
        let expected = trace.class_distribution();
        for (class, frac) in expected {
            assert!(
                (stats.class_fraction(class) - frac).abs() < 1e-9,
                "{class:?} fraction mismatch"
            );
        }
    }

    #[test]
    fn float_heavy_workload_stresses_fp_units() {
        let fp_heavy = trace_for(|input| {
            for w in input.instr_weights.values_mut() {
                *w = 0.0;
            }
            input.set_weight(Opcode::FmulD, 8.0);
            input.set_weight(Opcode::Add, 2.0);
        });
        let int_heavy = trace_for(|input| {
            for w in input.instr_weights.values_mut() {
                *w = 0.0;
            }
            input.set_weight(Opcode::Add, 10.0);
        });
        let mut sim = Simulator::new(CoreConfig::small());
        let fp = sim.run(&fp_heavy);
        let int = sim.run(&int_heavy);
        assert!(fp.activity.fp_ops > int.activity.fp_ops);
        assert!(
            fp.ipc() < int.ipc(),
            "fp-heavy {} should be slower than int-heavy {} on 2 FP units",
            fp.ipc(),
            int.ipc()
        );
        assert!(fp.activity.weighted_exec_energy > int.activity.weighted_exec_energy);
    }

    #[test]
    fn activity_counts_are_consistent_with_instruction_counts() {
        let trace = trace_for(|_| {});
        let stats = Simulator::new(CoreConfig::large()).run(&trace);
        let a = &stats.activity;
        assert_eq!(a.fetched, stats.instructions);
        assert_eq!(a.rob_writes, stats.instructions);
        assert_eq!(
            a.loads + a.stores,
            stats
                .class_counts
                .get(&InstrClass::Load)
                .copied()
                .unwrap_or(0)
                + stats
                    .class_counts
                    .get(&InstrClass::Store)
                    .copied()
                    .unwrap_or(0)
        );
        assert_eq!(a.lsq_ops, a.loads + a.stores);
        assert!(a.regfile_reads > 0);
        assert!(a.regfile_writes > 0);
        assert!(a.weighted_exec_energy > 0.0);
    }

    #[test]
    fn narrow_frontend_caps_throughput() {
        // A fully parallel integer workload should be limited by the
        // front-end width on the small core (3) vs the large core (8).
        let trace = trace_for(|input| {
            for w in input.instr_weights.values_mut() {
                *w = 0.0;
            }
            input.set_weight(Opcode::Add, 1.0);
            input.reg_dependency_distance = 10;
            input.mem_footprint_kb = 4;
        });
        let small = Simulator::new(CoreConfig::small()).run(&trace);
        let large = Simulator::new(CoreConfig::large()).run(&trace);
        assert!(small.ipc() <= 3.0 + 1e-9);
        assert!(large.ipc() > small.ipc());
    }
}
