//! Branch prediction: gshare direction predictor.

use crate::config::BranchPredictorConfig;
use serde::{Deserialize, Serialize};

/// Branch predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches predicted.
    pub lookups: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction rate in `[0, 1]` (0.0 when no branches executed).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.lookups as f64
        }
    }

    /// Prediction accuracy in `[0, 1]` (1.0 when no branches executed).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        1.0 - self.mispredict_rate()
    }
}

/// A gshare branch direction predictor.
///
/// The pattern history table holds 2-bit saturating counters indexed by the
/// XOR of the branch PC and the global history register — the structure used
/// by most mid-2010s cores and a reasonable stand-in for Gem5's tournament
/// predictor at the fidelity this reproduction needs: perfectly regular
/// branch patterns are learned quickly, random patterns converge to a ~50 %
/// misprediction rate, which is exactly the lever the `B_PATTERN` knob pulls.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    config: BranchPredictorConfig,
    table: Vec<u8>,
    history: u64,
    history_mask: u64,
    stats: BranchStats,
}

impl GsharePredictor {
    /// Creates a predictor with all counters weakly taken.
    #[must_use]
    pub fn new(config: BranchPredictorConfig) -> Self {
        let entries = config.table_entries.next_power_of_two().max(16);
        GsharePredictor {
            config,
            table: vec![2; entries],
            history: 0,
            history_mask: (1u64 << config.history_bits.min(63)) - 1,
            stats: BranchStats::default(),
        }
    }

    /// Misprediction redirect penalty in cycles.
    #[must_use]
    pub fn penalty(&self) -> u32 {
        self.config.mispredict_penalty
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    fn index(&self, pc: u64) -> usize {
        let folded = (pc >> 2) ^ self.history;
        (folded as usize) & (self.table.len() - 1)
    }

    /// Predicts and updates for one conditional branch; returns `true` if
    /// the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;

        self.stats.lookups += 1;
        if !correct {
            self.stats.mispredictions += 1;
        }
        // update 2-bit counter
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        // update global history
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        correct
    }

    /// Resets predictor state and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.table {
            *c = 2;
        }
        self.history = 0;
        self.stats = BranchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn predictor() -> GsharePredictor {
        GsharePredictor::new(BranchPredictorConfig {
            table_entries: 4096,
            history_bits: 8,
            mispredict_penalty: 10,
        })
    }

    #[test]
    fn always_taken_branch_is_learned() {
        let mut p = predictor();
        for _ in 0..1000 {
            p.predict_and_update(0x400, true);
        }
        assert!(p.stats().accuracy() > 0.99);
    }

    #[test]
    fn alternating_pattern_is_learned_via_history() {
        let mut p = predictor();
        for i in 0..2000u64 {
            p.predict_and_update(0x400, i % 2 == 0);
        }
        // After warm-up the alternating pattern is captured by history bits.
        assert!(
            p.stats().accuracy() > 0.9,
            "accuracy {}",
            p.stats().accuracy()
        );
    }

    #[test]
    fn random_branches_mispredict_about_half_the_time() {
        let mut p = predictor();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20_000 {
            p.predict_and_update(0x400, rng.gen());
        }
        let rate = p.stats().mispredict_rate();
        assert!((0.4..=0.6).contains(&rate), "mispredict rate {rate}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias_much() {
        let mut p = predictor();
        for i in 0..10_000u64 {
            p.predict_and_update(0x400 + (i % 16) * 4, true);
        }
        assert!(p.stats().accuracy() > 0.98);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut p = predictor();
        p.predict_and_update(0x100, false);
        p.reset();
        assert_eq!(p.stats(), BranchStats::default());
    }

    #[test]
    fn stats_rates_have_sane_defaults() {
        let s = BranchStats::default();
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.accuracy(), 1.0);
    }

    #[test]
    fn penalty_comes_from_config() {
        assert_eq!(predictor().penalty(), 10);
    }
}
