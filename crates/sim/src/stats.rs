//! Simulation statistics: the metric source for cloning and stress testing.

use crate::branch::BranchStats;
use crate::hierarchy::HierarchyStats;
use micrograd_isa::InstrClass;
use micrograd_obs::SimProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Activity counts consumed by the power model (McPAT-like interface).
///
/// These mirror the statistics Gem5 dumps and McPAT ingests: per-unit event
/// counts that, multiplied by per-event energies, yield dynamic energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Instructions fetched (front-end activity).
    pub fetched: u64,
    /// Simple integer ALU operations executed.
    pub int_alu_ops: u64,
    /// Integer multiply/divide operations executed.
    pub int_complex_ops: u64,
    /// Floating point operations executed.
    pub fp_ops: u64,
    /// Load operations executed.
    pub loads: u64,
    /// Store operations executed.
    pub stores: u64,
    /// Conditional branch operations executed.
    pub branches: u64,
    /// Architectural register file reads.
    pub regfile_reads: u64,
    /// Architectural register file writes.
    pub regfile_writes: u64,
    /// Reorder-buffer allocations.
    pub rob_writes: u64,
    /// Load/store queue allocations.
    pub lsq_ops: u64,
    /// Sum of per-instruction execution energy weights
    /// ([`micrograd_isa::LatencyModel::energy_weight`]).
    pub weighted_exec_energy: f64,
}

/// Full statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Dynamic instructions committed.
    pub instructions: u64,
    /// Total execution cycles.
    pub cycles: u64,
    /// Core clock frequency the run was configured with (Hz).
    pub frequency_hz: u64,
    /// Dynamic instruction counts per class.
    pub class_counts: BTreeMap<InstrClass, u64>,
    /// Memory hierarchy statistics.
    pub hierarchy: HierarchyStats,
    /// Branch predictor statistics.
    pub branch: BranchStats,
    /// Power-model activity counts.
    pub activity: ActivityCounts,
    /// Sampled time-resolved profile, present only when the run was made
    /// with profiling enabled ([`crate::Simulator::set_profiling`]).
    /// Samples are keyed by retired-instruction count, so a profiled run is
    /// exactly as deterministic as an unprofiled one.
    #[serde(default)]
    pub profile: Option<SimProfile>,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Wall-clock execution time in seconds at the configured frequency.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        if self.frequency_hz == 0 {
            0.0
        } else {
            self.cycles as f64 / self.frequency_hz as f64
        }
    }

    /// Fraction of dynamic instructions in `class` (0.0 if nothing ran).
    #[must_use]
    pub fn class_fraction(&self, class: InstrClass) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        let count = self.class_counts.get(&class).copied().unwrap_or(0);
        count as f64 / self.instructions as f64
    }

    /// All class fractions in canonical order.
    #[must_use]
    pub fn class_fractions(&self) -> BTreeMap<InstrClass, f64> {
        InstrClass::ALL
            .iter()
            .map(|c| (*c, self.class_fraction(*c)))
            .collect()
    }

    /// L1 instruction cache hit rate.
    #[must_use]
    pub fn l1i_hit_rate(&self) -> f64 {
        self.hierarchy.l1i.hit_rate()
    }

    /// L1 data cache hit rate.
    #[must_use]
    pub fn l1d_hit_rate(&self) -> f64 {
        self.hierarchy.l1d.hit_rate()
    }

    /// Unified L2 cache hit rate.
    #[must_use]
    pub fn l2_hit_rate(&self) -> f64 {
        self.hierarchy.l2.hit_rate()
    }

    /// Branch misprediction rate.
    #[must_use]
    pub fn branch_mispredict_rate(&self) -> f64 {
        self.branch.mispredict_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_seconds() {
        let stats = SimStats {
            instructions: 1000,
            cycles: 500,
            frequency_hz: 2_000_000_000,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
        assert!((stats.seconds() - 2.5e-7).abs() < 1e-18);
    }

    #[test]
    fn zero_cycles_is_not_a_division_error() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.seconds(), 0.0);
        assert_eq!(stats.class_fraction(InstrClass::Load), 0.0);
    }

    #[test]
    fn class_fractions_normalize() {
        let mut stats = SimStats {
            instructions: 10,
            ..SimStats::default()
        };
        stats.class_counts.insert(InstrClass::Integer, 6);
        stats.class_counts.insert(InstrClass::Load, 4);
        let fr = stats.class_fractions();
        assert!((fr[&InstrClass::Integer] - 0.6).abs() < 1e-12);
        assert!((fr[&InstrClass::Load] - 0.4).abs() < 1e-12);
        assert_eq!(fr.len(), InstrClass::ALL.len());
        let total: f64 = fr.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_accessors_default_to_one() {
        let stats = SimStats::default();
        assert_eq!(stats.l1i_hit_rate(), 1.0);
        assert_eq!(stats.l1d_hit_rate(), 1.0);
        assert_eq!(stats.l2_hit_rate(), 1.0);
        assert_eq!(stats.branch_mispredict_rate(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let stats = SimStats {
            instructions: 42,
            cycles: 21,
            ..SimStats::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
